// Column identity. Every job owns a ColumnUniverse mapping small integer
// ColumnIds to column metadata. Base columns are deduplicated per
// (stream set, column index), so two scans of different streams of the same
// set produce identical ColumnIds — which is what makes UNION ALL branches
// over daily streams schema-compatible, as in SCOPE cooking jobs.
#ifndef QSTEER_PLAN_COLUMN_H_
#define QSTEER_PLAN_COLUMN_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace qsteer {

using ColumnId = int32_t;
constexpr ColumnId kInvalidColumn = -1;

struct ColumnInfo {
  std::string name;
  /// Stream set that defines this column; -1 for derived columns.
  int stream_set_id = -1;
  /// Index within the stream set schema; -1 for derived columns.
  int column_index = -1;
  bool derived = false;
  /// NDV hint for derived columns (aggregates, computed expressions).
  double derived_ndv = 1000.0;
  double avg_width = 8.0;
};

/// Registry of columns.
///
/// Two flavours share this type:
///
///  * A *root* universe, owned by a workload/job (default constructor). The
///    workload generator populates it; after generation it is treated as
///    immutable and read concurrently.
///
///  * A *compilation overlay* (the shared_ptr constructor): a copy-on-write
///    extension of a root universe created per Optimizer::Compile call.
///    Reads of ids below the base size delegate to the base; columns minted
///    during that compilation (rewrite rules introduce partial-aggregate
///    intermediates) land in the overlay with ids starting at base->size().
///    Because the base never changes during a compilation, every compile of
///    a given (job, config) allocates the *same* overlay ids regardless of
///    what other compilations run concurrently — the property that makes
///    parallel candidate recompilation bit-identical to the serial path.
///
/// Thread-safety: a root universe is safe for concurrent reads once
/// generation finished. An overlay is confined to its compilation (single
/// thread) and must not be mutated after the resulting CompiledPlan is
/// shared. Mutating a root universe concurrently with compilations is a
/// data race — the optimizer never does this.
class ColumnUniverse {
 public:
  ColumnUniverse() = default;

  /// Creates a compilation overlay extending `base` (see class comment).
  explicit ColumnUniverse(std::shared_ptr<const ColumnUniverse> base);

  /// Returns the id for a base column, creating it on first use.
  ColumnId GetOrAddBaseColumn(int stream_set_id, int column_index, const std::string& name);

  /// Registers a new derived column (always a fresh id).
  ColumnId AddDerivedColumn(const std::string& name, double ndv_hint, double avg_width = 8.0);

  /// Metadata of a column. Bounds-safe: an id minted by a *different*
  /// compilation's overlay resolves to a default derived-column descriptor
  /// (every optimizer-minted column carries exactly these default hints, so
  /// estimates and simulation are unaffected — see rules.cc mint sites).
  const ColumnInfo& info(ColumnId id) const;

  /// Total ids addressable through this universe (base + overlay).
  int size() const { return base_size_ + static_cast<int>(columns_.size()); }

 private:
  /// Base universe when this is an overlay; null for root universes.
  std::shared_ptr<const ColumnUniverse> base_;
  int base_size_ = 0;
  /// Columns owned by this universe; entry k has id base_size_ + k.
  std::vector<ColumnInfo> columns_;
  std::map<std::pair<int, int>, ColumnId> base_index_;
};

}  // namespace qsteer

#endif  // QSTEER_PLAN_COLUMN_H_
