#include "plan/job.h"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "common/hash.h"

namespace qsteer {

PlanNodePtr PlanNode::Make(Operator op, std::vector<PlanNodePtr> children) {
  auto node = std::make_shared<PlanNode>();
  node->op = std::move(op);
  node->children = std::move(children);
  return node;
}

namespace {

uint64_t PlanHashImpl(const PlanNode* node, bool for_template,
                      std::unordered_map<const PlanNode*, uint64_t>* memo) {
  auto it = memo->find(node);
  if (it != memo->end()) return it->second;
  uint64_t h = node->op.Hash(for_template);
  for (const PlanNodePtr& child : node->children) {
    h = HashCombine(h, PlanHashImpl(child.get(), for_template, memo));
  }
  (*memo)[node] = h;
  return h;
}

}  // namespace

uint64_t PlanHash(const PlanNodePtr& root, bool for_template) {
  if (root == nullptr) return 0;
  std::unordered_map<const PlanNode*, uint64_t> memo;
  return PlanHashImpl(root.get(), for_template, &memo);
}

void VisitPlan(const PlanNodePtr& root, const std::function<void(const PlanNode&)>& fn) {
  std::unordered_set<const PlanNode*> seen;
  std::function<void(const PlanNodePtr&)> recurse = [&](const PlanNodePtr& node) {
    if (node == nullptr || !seen.insert(node.get()).second) return;
    for (const PlanNodePtr& child : node->children) recurse(child);
    fn(*node);
  };
  recurse(root);
}

std::string PlanToString(const PlanNodePtr& root) {
  std::string out;
  std::unordered_map<const PlanNode*, int> ids;
  std::function<void(const PlanNodePtr&, int)> recurse = [&](const PlanNodePtr& node,
                                                             int depth) {
    for (int i = 0; i < depth; ++i) out += "  ";
    auto it = ids.find(node.get());
    if (it != ids.end()) {
      out += "@" + std::to_string(it->second) + " (shared)\n";
      return;
    }
    int id = static_cast<int>(ids.size());
    ids[node.get()] = id;
    out += "@" + std::to_string(id) + " " + node->op.ToString() + "\n";
    for (const PlanNodePtr& child : node->children) recurse(child, depth + 1);
  };
  if (root != nullptr) recurse(root, 0);
  return out;
}

uint64_t Job::TemplateHash() const { return PlanHash(root, /*for_template=*/true); }

std::vector<uint64_t> Job::InputHashes() const {
  std::vector<uint64_t> out;
  for (int stream : InputStreams()) {
    out.push_back(Mix64(static_cast<uint64_t>(stream) + 0x51beefULL));
  }
  return out;
}

int Job::NumOperators() const {
  int count = 0;
  VisitPlan(root, [&count](const PlanNode&) { ++count; });
  return count;
}

std::vector<int> Job::InputStreams() const {
  std::vector<int> out;
  VisitPlan(root, [&out](const PlanNode& node) {
    if (node.op.kind == OpKind::kGet) out.push_back(node.op.stream_id);
  });
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace qsteer
