// Scalar (predicate) expressions: immutable shared trees over ColumnIds and
// integer literals, with evaluation for the reference executor and
// structural/template hashing for recurring-job identification.
#ifndef QSTEER_PLAN_EXPR_H_
#define QSTEER_PLAN_EXPR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "plan/column.h"

namespace qsteer {

enum class ExprKind : uint8_t {
  kColumn,
  kLiteral,
  kCompare,
  kAnd,
  kOr,
  kNot,
  kIsNotNull,
  /// Opaque user-defined predicate (C#/Python in SCOPE scripts). The
  /// optimizer only has a selectivity guess for it; the truth is job-level.
  kUdfPredicate,
  /// Always-true predicate (target of the SelectOnTrue cleanup rule).
  kTrue,
};

enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Row value access used by Expr::Eval; implemented by the reference
/// executor which knows where each ColumnId lives in its row layout.
class RowAccessor {
 public:
  virtual ~RowAccessor() = default;
  virtual int64_t Get(ColumnId column) const = 0;
};

class Expr {
 public:
  static ExprPtr Column(ColumnId column);
  static ExprPtr Literal(int64_t value);
  static ExprPtr Compare(CmpOp op, ExprPtr lhs, ExprPtr rhs);
  /// Convenience: column <op> literal.
  static ExprPtr Cmp(ColumnId column, CmpOp op, int64_t value);
  static ExprPtr And(std::vector<ExprPtr> children);
  static ExprPtr Or(std::vector<ExprPtr> children);
  static ExprPtr Not(ExprPtr child);
  static ExprPtr IsNotNull(ColumnId column);
  static ExprPtr UdfPredicate(std::string name, double selectivity_guess, ColumnId input);
  static ExprPtr True();

  ExprKind kind() const { return kind_; }
  ColumnId column() const { return column_; }
  int64_t literal() const { return literal_; }
  CmpOp cmp() const { return cmp_; }
  const std::vector<ExprPtr>& children() const { return children_; }
  const std::string& udf_name() const { return udf_name_; }
  double udf_selectivity_guess() const { return udf_selectivity_guess_; }

  /// Evaluates to a boolean (for predicate roots) or value (leaves).
  /// Null semantics: any comparison touching kNullValue is false.
  bool EvalPredicate(const RowAccessor& row) const;
  int64_t EvalValue(const RowAccessor& row) const;

  /// Appends every referenced ColumnId (with duplicates) to `out`.
  void CollectColumns(std::vector<ColumnId>* out) const;

  /// True when every referenced column is present in the sorted id list.
  bool BoundBy(const std::vector<ColumnId>& sorted_columns) const;

  /// Structural hash. With `ignore_literals`, literal values hash as a fixed
  /// marker — used by template hashing so recurring jobs that differ only in
  /// predicate constants share a template (paper §3.1.1).
  uint64_t Hash(bool ignore_literals) const;

  /// Number of atoms (comparisons / UDF predicates) in the tree.
  int CountAtoms() const;

  std::string ToString() const;

 private:
  Expr() = default;

  ExprKind kind_ = ExprKind::kTrue;
  ColumnId column_ = kInvalidColumn;
  int64_t literal_ = 0;
  CmpOp cmp_ = CmpOp::kEq;
  std::vector<ExprPtr> children_;
  std::string udf_name_;
  double udf_selectivity_guess_ = 0.5;
};

/// Splits an AND tree into its conjuncts (flattening nested ANDs); a
/// non-AND expression yields a single conjunct.
std::vector<ExprPtr> SplitConjuncts(const ExprPtr& expr);

/// Rebuilds a conjunction from conjuncts; empty input yields True().
ExprPtr MakeConjunction(std::vector<ExprPtr> conjuncts);

const char* CmpOpName(CmpOp op);

}  // namespace qsteer

#endif  // QSTEER_PLAN_EXPR_H_
