// User-facing job representation: an immutable logical-plan DAG plus job
// metadata (day, latent UDO truth, template identity).
#ifndef QSTEER_PLAN_JOB_H_
#define QSTEER_PLAN_JOB_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "plan/column.h"
#include "plan/operator.h"

namespace qsteer {

struct PlanNode;
using PlanNodePtr = std::shared_ptr<const PlanNode>;

/// One node of the logical plan DAG. Children may be shared between parents
/// (SCOPE jobs are DAGs, not trees: a cooked stream can feed several
/// consumers).
struct PlanNode {
  Operator op;
  std::vector<PlanNodePtr> children;

  static PlanNodePtr Make(Operator op, std::vector<PlanNodePtr> children = {});
};

/// A SCOPE job: the compiled script as a logical DAG plus everything the
/// steering pipeline needs to know about it.
struct Job {
  std::string name;
  int day = 0;
  /// Identifier of the workload the job belongs to ("A"/"B"/"C").
  std::string workload;
  std::shared_ptr<ColumnUniverse> columns;
  PlanNodePtr root;  // kOutput node

  /// Latent ground truth for the job's user-defined operators: the real
  /// selectivity/cost the optimizer cannot see (it uses the per-operator
  /// guesses embedded in the plan).
  double udo_true_selectivity = 1.0;
  double udo_true_cost_per_row = 2.0;

  /// Index of the template that generated this job (workload generator
  /// bookkeeping; TemplateHash() must agree across jobs of one template).
  int template_index = -1;

  /// Rule hints the submitting customer attached to the script (paper §3.3:
  /// "rule flags are already available and often used by customers"). The
  /// production configuration of the job is the default configuration plus
  /// these enables.
  std::vector<int> customer_hints;

  /// Structural template hash: ignores literals and stream variants, so the
  /// same recurring script over fresh daily inputs maps to one template.
  uint64_t TemplateHash() const;

  /// Hashes of the distinct physical inputs read by this job.
  std::vector<uint64_t> InputHashes() const;

  /// Number of distinct operator nodes in the DAG.
  int NumOperators() const;

  /// Distinct stream ids read by the job.
  std::vector<int> InputStreams() const;
};

/// Structural hash of a plan DAG. Shared subtrees hash once.
uint64_t PlanHash(const PlanNodePtr& root, bool for_template);

/// Multi-line indented rendering of a plan DAG (shared nodes annotated).
std::string PlanToString(const PlanNodePtr& root);

/// Applies `fn` to every distinct node of the DAG exactly once, children
/// before parents.
void VisitPlan(const PlanNodePtr& root, const std::function<void(const PlanNode&)>& fn);

}  // namespace qsteer

#endif  // QSTEER_PLAN_JOB_H_
