#include "plan/serde.h"

#include <cstring>
#include <unordered_map>
#include <vector>

namespace qsteer {

void ByteWriter::PutDouble(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

Status ByteReader::GetU8(uint8_t* v) {
  if (remaining() < 1) return Status::InvalidArgument("serde: truncated input (u8)");
  *v = static_cast<uint8_t>(data_[pos_++]);
  return Status::OK();
}

Status ByteReader::GetU32(uint32_t* v) {
  if (remaining() < 4) return Status::InvalidArgument("serde: truncated input (u32)");
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + static_cast<size_t>(i)]))
           << (8 * i);
  }
  pos_ += 4;
  *v = out;
  return Status::OK();
}

Status ByteReader::GetU64(uint64_t* v) {
  if (remaining() < 8) return Status::InvalidArgument("serde: truncated input (u64)");
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + static_cast<size_t>(i)]))
           << (8 * i);
  }
  pos_ += 8;
  *v = out;
  return Status::OK();
}

Status ByteReader::GetI32(int32_t* v) {
  uint32_t raw = 0;
  Status status = GetU32(&raw);
  if (!status.ok()) return status;
  *v = static_cast<int32_t>(raw);
  return Status::OK();
}

Status ByteReader::GetI64(int64_t* v) {
  uint64_t raw = 0;
  Status status = GetU64(&raw);
  if (!status.ok()) return status;
  *v = static_cast<int64_t>(raw);
  return Status::OK();
}

Status ByteReader::GetDouble(double* v) {
  uint64_t bits = 0;
  Status status = GetU64(&bits);
  if (!status.ok()) return status;
  std::memcpy(v, &bits, sizeof(bits));
  return Status::OK();
}

Status ByteReader::GetString(std::string* v) {
  uint32_t size = 0;
  Status status = GetU32(&size);
  if (!status.ok()) return status;
  if (size > remaining()) return Status::InvalidArgument("serde: truncated input (string)");
  v->assign(data_.data() + pos_, size);
  pos_ += size;
  return Status::OK();
}

namespace {

// ---------------------------------------------------------------------------
// Expression table
// ---------------------------------------------------------------------------

/// Distinct expressions in children-first emission order: lookups by
/// pointer identity (an unordered map — never iterated, see QL003/QL004),
/// emission over the order vector.
struct ExprTable {
  std::unordered_map<const Expr*, uint32_t> index;
  std::vector<const Expr*> order;

  void Add(const ExprPtr& expr) {
    if (expr == nullptr) return;
    if (index.find(expr.get()) != index.end()) return;
    for (const ExprPtr& child : expr->children()) Add(child);
    index.emplace(expr.get(), static_cast<uint32_t>(order.size()));
    order.push_back(expr.get());
  }

  uint32_t IndexOf(const Expr* expr) const { return index.at(expr); }
};

void WriteExprNode(const Expr& expr, const ExprTable& table, ByteWriter* writer) {
  writer->PutU8(static_cast<uint8_t>(expr.kind()));
  writer->PutI32(expr.column());
  writer->PutI64(expr.literal());
  writer->PutU8(static_cast<uint8_t>(expr.cmp()));
  writer->PutString(expr.udf_name());
  writer->PutDouble(expr.udf_selectivity_guess());
  writer->PutU32(static_cast<uint32_t>(expr.children().size()));
  for (const ExprPtr& child : expr.children()) {
    writer->PutU32(table.IndexOf(child.get()));
  }
}

void WriteExprTable(const ExprTable& table, ByteWriter* writer) {
  writer->PutU32(static_cast<uint32_t>(table.order.size()));
  for (const Expr* expr : table.order) WriteExprNode(*expr, table, writer);
}

Result<std::vector<ExprPtr>> ReadExprTable(ByteReader* reader) {
  uint32_t count = 0;
  Status status = reader->GetU32(&count);
  if (!status.ok()) return status;
  // Every node costs at least a header's worth of bytes; a count that
  // cannot fit in the remaining input is a torn length field.
  if (count > reader->remaining()) {
    return Status::InvalidArgument("serde: expression count exceeds input");
  }
  std::vector<ExprPtr> exprs;
  exprs.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t kind_raw = 0;
    int32_t column = 0;
    int64_t literal = 0;
    uint8_t cmp_raw = 0;
    std::string udf_name;
    double udf_selectivity = 0.0;
    uint32_t num_children = 0;
    if (!(status = reader->GetU8(&kind_raw)).ok()) return status;
    if (!(status = reader->GetI32(&column)).ok()) return status;
    if (!(status = reader->GetI64(&literal)).ok()) return status;
    if (!(status = reader->GetU8(&cmp_raw)).ok()) return status;
    if (!(status = reader->GetString(&udf_name)).ok()) return status;
    if (!(status = reader->GetDouble(&udf_selectivity)).ok()) return status;
    if (!(status = reader->GetU32(&num_children)).ok()) return status;
    if (kind_raw > static_cast<uint8_t>(ExprKind::kTrue)) {
      return Status::InvalidArgument("serde: unknown expression kind");
    }
    if (cmp_raw > static_cast<uint8_t>(CmpOp::kGe)) {
      return Status::InvalidArgument("serde: unknown comparison op");
    }
    if (num_children > reader->remaining() / 4 + 1) {
      return Status::InvalidArgument("serde: expression child count exceeds input");
    }
    std::vector<ExprPtr> children;
    children.reserve(num_children);
    for (uint32_t c = 0; c < num_children; ++c) {
      uint32_t child_index = 0;
      if (!(status = reader->GetU32(&child_index)).ok()) return status;
      // Children precede parents in the table; a forward or self reference
      // is corruption (and would otherwise build a cycle).
      if (child_index >= i) {
        return Status::InvalidArgument("serde: expression child index out of range");
      }
      children.push_back(exprs[child_index]);
    }
    ExprKind kind = static_cast<ExprKind>(kind_raw);
    ExprPtr expr;
    switch (kind) {
      case ExprKind::kColumn:
        expr = Expr::Column(column);
        break;
      case ExprKind::kLiteral:
        expr = Expr::Literal(literal);
        break;
      case ExprKind::kCompare:
        if (children.size() != 2) {
          return Status::InvalidArgument("serde: compare needs exactly two children");
        }
        expr = Expr::Compare(static_cast<CmpOp>(cmp_raw), children[0], children[1]);
        break;
      case ExprKind::kAnd:
      case ExprKind::kOr:
        // The factories collapse 0/1-child conjunctions, so a well-formed
        // blob never contains them; reject instead of silently reshaping.
        if (children.size() < 2) {
          return Status::InvalidArgument("serde: and/or needs at least two children");
        }
        expr = kind == ExprKind::kAnd ? Expr::And(std::move(children))
                                      : Expr::Or(std::move(children));
        break;
      case ExprKind::kNot:
        if (children.size() != 1) {
          return Status::InvalidArgument("serde: not needs exactly one child");
        }
        expr = Expr::Not(children[0]);
        break;
      case ExprKind::kIsNotNull:
        expr = Expr::IsNotNull(column);
        break;
      case ExprKind::kUdfPredicate:
        expr = Expr::UdfPredicate(std::move(udf_name), udf_selectivity, column);
        break;
      case ExprKind::kTrue:
        expr = Expr::True();
        break;
    }
    exprs.push_back(std::move(expr));
  }
  return exprs;
}

// ---------------------------------------------------------------------------
// Operator payload
// ---------------------------------------------------------------------------

void WriteColumnVec(const std::vector<ColumnId>& columns, ByteWriter* writer) {
  writer->PutU32(static_cast<uint32_t>(columns.size()));
  for (ColumnId column : columns) writer->PutI32(column);
}

Status ReadColumnVec(ByteReader* reader, std::vector<ColumnId>* out) {
  uint32_t count = 0;
  Status status = reader->GetU32(&count);
  if (!status.ok()) return status;
  if (count > reader->remaining() / 4 + 1) {
    return Status::InvalidArgument("serde: column count exceeds input");
  }
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ColumnId column = 0;
    if (!(status = reader->GetI32(&column)).ok()) return status;
    out->push_back(column);
  }
  return Status::OK();
}

void WriteOperator(const Operator& op, const ExprTable& exprs, ByteWriter* writer) {
  writer->PutU8(static_cast<uint8_t>(op.kind));
  writer->PutI32(op.stream_id);
  writer->PutI32(op.stream_set_id);
  WriteColumnVec(op.scan_columns, writer);
  writer->PutDouble(op.partition_fraction);
  // Predicate: 0 = none, else expression-table index + 1.
  writer->PutU32(op.predicate == nullptr ? 0 : exprs.IndexOf(op.predicate.get()) + 1);
  writer->PutU8(static_cast<uint8_t>(op.join_type));
  WriteColumnVec(op.left_keys, writer);
  WriteColumnVec(op.right_keys, writer);
  writer->PutI32(op.build_side);
  WriteColumnVec(op.group_keys, writer);
  writer->PutU32(static_cast<uint32_t>(op.aggs.size()));
  for (const AggExpr& agg : op.aggs) {
    writer->PutU8(static_cast<uint8_t>(agg.func));
    writer->PutI32(agg.arg);
    writer->PutI32(agg.output);
  }
  writer->PutU8(op.partial_agg ? 1 : 0);
  writer->PutU32(static_cast<uint32_t>(op.projections.size()));
  for (const NamedExpr& projection : op.projections) {
    writer->PutI32(projection.output);
    writer->PutU8(projection.pass_through ? 1 : 0);
    WriteColumnVec(projection.inputs, writer);
    writer->PutU64(projection.fn_seed);
  }
  writer->PutI64(op.limit);
  WriteColumnVec(op.sort_keys, writer);
  writer->PutString(op.udo_name);
  writer->PutDouble(op.udo_selectivity_guess);
  writer->PutDouble(op.udo_cost_per_row_guess);
  WriteColumnVec(op.window_keys, writer);
  writer->PutDouble(op.sample_fraction);
  writer->PutU8(static_cast<uint8_t>(op.exchange));
  WriteColumnVec(op.exchange_keys, writer);
  writer->PutI32(op.dop);
}

Status ReadOperator(ByteReader* reader, const std::vector<ExprPtr>& exprs, Operator* op) {
  uint8_t kind_raw = 0;
  Status status = reader->GetU8(&kind_raw);
  if (!status.ok()) return status;
  if (kind_raw > static_cast<uint8_t>(OpKind::kOutputWriter)) {
    return Status::InvalidArgument("serde: unknown operator kind");
  }
  op->kind = static_cast<OpKind>(kind_raw);
  if (!(status = reader->GetI32(&op->stream_id)).ok()) return status;
  if (!(status = reader->GetI32(&op->stream_set_id)).ok()) return status;
  if (!(status = ReadColumnVec(reader, &op->scan_columns)).ok()) return status;
  if (!(status = reader->GetDouble(&op->partition_fraction)).ok()) return status;
  uint32_t predicate_ref = 0;
  if (!(status = reader->GetU32(&predicate_ref)).ok()) return status;
  if (predicate_ref != 0) {
    if (predicate_ref > exprs.size()) {
      return Status::InvalidArgument("serde: predicate index out of range");
    }
    op->predicate = exprs[predicate_ref - 1];
  }
  uint8_t join_type_raw = 0;
  if (!(status = reader->GetU8(&join_type_raw)).ok()) return status;
  if (join_type_raw > static_cast<uint8_t>(JoinType::kLeftSemi)) {
    return Status::InvalidArgument("serde: unknown join type");
  }
  op->join_type = static_cast<JoinType>(join_type_raw);
  if (!(status = ReadColumnVec(reader, &op->left_keys)).ok()) return status;
  if (!(status = ReadColumnVec(reader, &op->right_keys)).ok()) return status;
  if (!(status = reader->GetI32(&op->build_side)).ok()) return status;
  if (!(status = ReadColumnVec(reader, &op->group_keys)).ok()) return status;
  uint32_t num_aggs = 0;
  if (!(status = reader->GetU32(&num_aggs)).ok()) return status;
  if (num_aggs > reader->remaining() / 9 + 1) {
    return Status::InvalidArgument("serde: aggregate count exceeds input");
  }
  op->aggs.clear();
  op->aggs.reserve(num_aggs);
  for (uint32_t i = 0; i < num_aggs; ++i) {
    uint8_t func_raw = 0;
    AggExpr agg;
    if (!(status = reader->GetU8(&func_raw)).ok()) return status;
    if (func_raw > static_cast<uint8_t>(AggFunc::kMax)) {
      return Status::InvalidArgument("serde: unknown aggregate function");
    }
    agg.func = static_cast<AggFunc>(func_raw);
    if (!(status = reader->GetI32(&agg.arg)).ok()) return status;
    if (!(status = reader->GetI32(&agg.output)).ok()) return status;
    op->aggs.push_back(agg);
  }
  uint8_t partial_agg = 0;
  if (!(status = reader->GetU8(&partial_agg)).ok()) return status;
  op->partial_agg = partial_agg != 0;
  uint32_t num_projections = 0;
  if (!(status = reader->GetU32(&num_projections)).ok()) return status;
  if (num_projections > reader->remaining() / 17 + 1) {
    return Status::InvalidArgument("serde: projection count exceeds input");
  }
  op->projections.clear();
  op->projections.reserve(num_projections);
  for (uint32_t i = 0; i < num_projections; ++i) {
    NamedExpr projection;
    uint8_t pass_through = 0;
    if (!(status = reader->GetI32(&projection.output)).ok()) return status;
    if (!(status = reader->GetU8(&pass_through)).ok()) return status;
    projection.pass_through = pass_through != 0;
    if (!(status = ReadColumnVec(reader, &projection.inputs)).ok()) return status;
    if (!(status = reader->GetU64(&projection.fn_seed)).ok()) return status;
    op->projections.push_back(std::move(projection));
  }
  if (!(status = reader->GetI64(&op->limit)).ok()) return status;
  if (!(status = ReadColumnVec(reader, &op->sort_keys)).ok()) return status;
  if (!(status = reader->GetString(&op->udo_name)).ok()) return status;
  if (!(status = reader->GetDouble(&op->udo_selectivity_guess)).ok()) return status;
  if (!(status = reader->GetDouble(&op->udo_cost_per_row_guess)).ok()) return status;
  if (!(status = ReadColumnVec(reader, &op->window_keys)).ok()) return status;
  if (!(status = reader->GetDouble(&op->sample_fraction)).ok()) return status;
  uint8_t exchange_raw = 0;
  if (!(status = reader->GetU8(&exchange_raw)).ok()) return status;
  if (exchange_raw > static_cast<uint8_t>(ExchangeKind::kBroadcast)) {
    return Status::InvalidArgument("serde: unknown exchange kind");
  }
  op->exchange = static_cast<ExchangeKind>(exchange_raw);
  if (!(status = ReadColumnVec(reader, &op->exchange_keys)).ok()) return status;
  if (!(status = reader->GetI32(&op->dop)).ok()) return status;
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Plan DAG
// ---------------------------------------------------------------------------

void SerializePlan(const PlanNodePtr& root, ByteWriter* writer) {
  if (root == nullptr) {
    writer->PutU8(0);
    return;
  }
  writer->PutU8(1);

  // Distinct plan nodes, children before parents (the VisitPlan order).
  std::unordered_map<const PlanNode*, uint32_t> node_index;
  std::vector<const PlanNode*> nodes;
  VisitPlan(root, [&](const PlanNode& node) {
    node_index.emplace(&node, static_cast<uint32_t>(nodes.size()));
    nodes.push_back(&node);
  });

  // One expression table for the whole plan: rules copy ExprPtrs between
  // operators, so expressions shared across nodes serialize once too.
  ExprTable exprs;
  for (const PlanNode* node : nodes) exprs.Add(node->op.predicate);
  WriteExprTable(exprs, writer);

  writer->PutU32(static_cast<uint32_t>(nodes.size()));
  for (const PlanNode* node : nodes) {
    WriteOperator(node->op, exprs, writer);
    writer->PutU32(static_cast<uint32_t>(node->children.size()));
    for (const PlanNodePtr& child : node->children) {
      writer->PutU32(node_index.at(child.get()));
    }
  }
  writer->PutU32(node_index.at(root.get()));
}

Result<PlanNodePtr> DeserializePlan(ByteReader* reader) {
  uint8_t present = 0;
  Status status = reader->GetU8(&present);
  if (!status.ok()) return status;
  if (present == 0) return PlanNodePtr();
  if (present != 1) return Status::InvalidArgument("serde: bad plan presence marker");

  Result<std::vector<ExprPtr>> exprs = ReadExprTable(reader);
  if (!exprs.ok()) return exprs.status();

  uint32_t num_nodes = 0;
  if (!(status = reader->GetU32(&num_nodes)).ok()) return status;
  if (num_nodes == 0) return Status::InvalidArgument("serde: plan with zero nodes");
  if (num_nodes > reader->remaining()) {
    return Status::InvalidArgument("serde: plan node count exceeds input");
  }
  std::vector<PlanNodePtr> nodes;
  nodes.reserve(num_nodes);
  for (uint32_t i = 0; i < num_nodes; ++i) {
    Operator op;
    if (!(status = ReadOperator(reader, exprs.value(), &op)).ok()) return status;
    uint32_t num_children = 0;
    if (!(status = reader->GetU32(&num_children)).ok()) return status;
    if (num_children > reader->remaining() / 4 + 1) {
      return Status::InvalidArgument("serde: plan child count exceeds input");
    }
    std::vector<PlanNodePtr> children;
    children.reserve(num_children);
    for (uint32_t c = 0; c < num_children; ++c) {
      uint32_t child_index = 0;
      if (!(status = reader->GetU32(&child_index)).ok()) return status;
      if (child_index >= i) {
        return Status::InvalidArgument("serde: plan child index out of range");
      }
      children.push_back(nodes[child_index]);
    }
    nodes.push_back(PlanNode::Make(std::move(op), std::move(children)));
  }
  uint32_t root_index = 0;
  if (!(status = reader->GetU32(&root_index)).ok()) return status;
  if (root_index >= nodes.size()) {
    return Status::InvalidArgument("serde: plan root index out of range");
  }
  return nodes[root_index];
}

void SerializeExpr(const ExprPtr& expr, ByteWriter* writer) {
  if (expr == nullptr) {
    writer->PutU8(0);
    return;
  }
  writer->PutU8(1);
  ExprTable table;
  table.Add(expr);
  WriteExprTable(table, writer);
  writer->PutU32(table.IndexOf(expr.get()));
}

Result<ExprPtr> DeserializeExpr(ByteReader* reader) {
  uint8_t present = 0;
  Status status = reader->GetU8(&present);
  if (!status.ok()) return status;
  if (present == 0) return ExprPtr();
  if (present != 1) return Status::InvalidArgument("serde: bad expression presence marker");
  Result<std::vector<ExprPtr>> exprs = ReadExprTable(reader);
  if (!exprs.ok()) return exprs.status();
  uint32_t root_index = 0;
  if (!(status = reader->GetU32(&root_index)).ok()) return status;
  if (root_index >= exprs.value().size()) {
    return Status::InvalidArgument("serde: expression root index out of range");
  }
  return exprs.value()[root_index];
}

}  // namespace qsteer
