// Serial-vs-parallel equivalence of the steering pipeline: for a fixed
// seed, JobAnalysis must be bit-identical whether candidates are
// recompiled/executed serially (num_threads = 0) or over 1, 2 or 8 pool
// workers. This is the determinism contract documented on SteeringPipeline.
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "workload/generator.h"

namespace qsteer {
namespace {

WorkloadSpec Spec() {
  WorkloadSpec spec;
  spec.name = "PP";
  spec.seed = 4096;
  spec.num_templates = 16;
  spec.num_stream_sets = 12;
  return spec;
}

PipelineOptions Options(int num_threads) {
  PipelineOptions options;
  options.max_candidate_configs = 80;
  options.configs_to_execute = 8;
  options.num_threads = num_threads;
  return options;
}

void ExpectMetricsEqual(const ExecMetrics& a, const ExecMetrics& b) {
  // Bitwise: the parallel path must replay the exact serial computation, not
  // merely an approximation of it.
  EXPECT_EQ(a.runtime, b.runtime);
  EXPECT_EQ(a.cpu_time, b.cpu_time);
  EXPECT_EQ(a.io_time, b.io_time);
  EXPECT_EQ(a.bytes_moved, b.bytes_moved);
  EXPECT_EQ(a.output_rows, b.output_rows);
}

void ExpectAnalysesEqual(const JobAnalysis& serial, const JobAnalysis& parallel) {
  // Counters from the recompilation stage.
  EXPECT_EQ(serial.candidates_generated, parallel.candidates_generated);
  EXPECT_EQ(serial.recompiled_ok, parallel.recompiled_ok);
  EXPECT_EQ(serial.compile_failures, parallel.compile_failures);
  EXPECT_EQ(serial.cheaper_than_default, parallel.cheaper_than_default);

  // Candidate cost vector: same values in the same (candidate) order.
  ASSERT_EQ(serial.candidate_costs.size(), parallel.candidate_costs.size());
  for (size_t i = 0; i < serial.candidate_costs.size(); ++i) {
    EXPECT_EQ(serial.candidate_costs[i], parallel.candidate_costs[i]);
  }

  // Default treatment.
  ASSERT_EQ(serial.default_plan.root == nullptr, parallel.default_plan.root == nullptr);
  if (serial.default_plan.root != nullptr) {
    EXPECT_EQ(PlanHash(serial.default_plan.root, false),
              PlanHash(parallel.default_plan.root, false));
    EXPECT_EQ(serial.default_plan.est_cost, parallel.default_plan.est_cost);
    ExpectMetricsEqual(serial.default_metrics, parallel.default_metrics);
  }

  // Executed alternatives: same configs, same plans, same measurements,
  // same order.
  ASSERT_EQ(serial.executed.size(), parallel.executed.size());
  for (size_t i = 0; i < serial.executed.size(); ++i) {
    const ConfigOutcome& s = serial.executed[i];
    const ConfigOutcome& p = parallel.executed[i];
    EXPECT_TRUE(s.config == p.config);
    EXPECT_EQ(PlanHash(s.plan.root, false), PlanHash(p.plan.root, false));
    EXPECT_EQ(s.plan.est_cost, p.plan.est_cost);
    EXPECT_EQ(s.executed, p.executed);
    ExpectMetricsEqual(s.metrics, p.metrics);
    EXPECT_EQ(s.diff_vs_default.ToString(), p.diff_vs_default.ToString());
  }
  EXPECT_EQ(serial.BestRuntimeChangePct(), parallel.BestRuntimeChangePct());
}

TEST(PipelineParallel, AnalyzeJobMatchesSerialAcrossWorkerCounts) {
  Workload workload(Spec());
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());

  SteeringPipeline serial(&optimizer, &simulator, Options(0));
  ASSERT_EQ(serial.pool(), nullptr);

  for (int workers : {1, 2, 8}) {
    SteeringPipeline parallel(&optimizer, &simulator, Options(workers));
    ASSERT_NE(parallel.pool(), nullptr);
    EXPECT_EQ(parallel.pool()->num_threads(), workers);
    for (int t = 0; t < 4; ++t) {
      Job job = workload.MakeJob(t, /*day=*/1);
      JobAnalysis a = serial.AnalyzeJob(job);
      JobAnalysis b = parallel.AnalyzeJob(job);
      SCOPED_TRACE(testing::Message() << "workers=" << workers << " job=" << job.name);
      ExpectAnalysesEqual(a, b);
    }
  }
}

TEST(PipelineParallel, BatchEntryPointMatchesPerJobCalls) {
  Workload workload(Spec());
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());

  std::vector<Job> jobs;
  for (int t = 0; t < 6; ++t) jobs.push_back(workload.MakeJob(t, /*day=*/2));

  SteeringPipeline serial(&optimizer, &simulator, Options(0));
  SteeringPipeline parallel(&optimizer, &simulator, Options(2));

  std::vector<JobAnalysis> batch = parallel.AnalyzeJobs(jobs);
  ASSERT_EQ(batch.size(), jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "job index " << i);
    ExpectAnalysesEqual(serial.AnalyzeJob(jobs[i]), batch[i]);
  }

  // Pool counters observed real fan-out work.
  ThreadPoolStats stats = parallel.pool_stats();
  EXPECT_EQ(stats.num_threads, 2);
  EXPECT_GT(stats.tasks_submitted, 0);
}

TEST(PipelineParallel, SerialPoolStatsAreZeroed) {
  Workload workload(Spec());
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());
  SteeringPipeline serial(&optimizer, &simulator, Options(0));
  ThreadPoolStats stats = serial.pool_stats();
  EXPECT_EQ(stats.num_threads, 0);
  EXPECT_EQ(stats.tasks_submitted, 0);
}

TEST(PipelineParallel, RecompileJobsMatchesSerial) {
  Workload workload(Spec());
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());

  std::vector<Job> jobs;
  for (int t = 0; t < 5; ++t) jobs.push_back(workload.MakeJob(t, /*day=*/3));

  SteeringPipeline serial(&optimizer, &simulator, Options(0));
  SteeringPipeline parallel(&optimizer, &simulator, Options(8));
  std::vector<JobAnalysis> a = serial.RecompileJobs(jobs);
  std::vector<JobAnalysis> b = parallel.RecompileJobs(jobs);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "job index " << i);
    ExpectAnalysesEqual(a[i], b[i]);
  }
}

}  // namespace
}  // namespace qsteer
