// Serial-vs-parallel equivalence of the steering pipeline: for a fixed
// seed, JobAnalysis must be bit-identical whether candidates are
// recompiled/executed serially (num_threads = 0) or over 1, 2 or 8 pool
// workers. This is the determinism contract documented on SteeringPipeline.
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "workload/generator.h"

namespace qsteer {
namespace {

WorkloadSpec Spec() {
  WorkloadSpec spec;
  spec.name = "PP";
  spec.seed = 4096;
  spec.num_templates = 16;
  spec.num_stream_sets = 12;
  return spec;
}

PipelineOptions Options(int num_threads) {
  PipelineOptions options;
  options.max_candidate_configs = 80;
  options.configs_to_execute = 8;
  options.num_threads = num_threads;
  return options;
}

void ExpectMetricsEqual(const ExecMetrics& a, const ExecMetrics& b) {
  // Bitwise: the parallel path must replay the exact serial computation, not
  // merely an approximation of it.
  EXPECT_EQ(a.runtime, b.runtime);
  EXPECT_EQ(a.cpu_time, b.cpu_time);
  EXPECT_EQ(a.io_time, b.io_time);
  EXPECT_EQ(a.bytes_moved, b.bytes_moved);
  EXPECT_EQ(a.output_rows, b.output_rows);
  // Fault-layer counters obey the same contract.
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.failed_vertices, b.failed_vertices);
  EXPECT_EQ(a.speculative_copies, b.speculative_copies);
  EXPECT_EQ(a.token_revocations, b.token_revocations);
  EXPECT_EQ(a.wasted_cpu_time, b.wasted_cpu_time);
  EXPECT_EQ(a.failed, b.failed);
}

void ExpectAnalysesEqual(const JobAnalysis& serial, const JobAnalysis& parallel) {
  // Counters from the recompilation stage.
  EXPECT_EQ(serial.candidates_generated, parallel.candidates_generated);
  EXPECT_EQ(serial.recompiled_ok, parallel.recompiled_ok);
  EXPECT_EQ(serial.compile_failures, parallel.compile_failures);
  EXPECT_EQ(serial.compile_timeouts, parallel.compile_timeouts);
  EXPECT_EQ(serial.exec_failures, parallel.exec_failures);
  EXPECT_EQ(serial.cheaper_than_default, parallel.cheaper_than_default);

  // Candidate cost vector: same values in the same (candidate) order.
  ASSERT_EQ(serial.candidate_costs.size(), parallel.candidate_costs.size());
  for (size_t i = 0; i < serial.candidate_costs.size(); ++i) {
    EXPECT_EQ(serial.candidate_costs[i], parallel.candidate_costs[i]);
  }

  // Default treatment.
  ASSERT_EQ(serial.default_plan.root == nullptr, parallel.default_plan.root == nullptr);
  if (serial.default_plan.root != nullptr) {
    EXPECT_EQ(PlanHash(serial.default_plan.root, false),
              PlanHash(parallel.default_plan.root, false));
    EXPECT_EQ(serial.default_plan.est_cost, parallel.default_plan.est_cost);
    ExpectMetricsEqual(serial.default_metrics, parallel.default_metrics);
  }

  // Executed alternatives: same configs, same plans, same measurements,
  // same order.
  ASSERT_EQ(serial.executed.size(), parallel.executed.size());
  for (size_t i = 0; i < serial.executed.size(); ++i) {
    const ConfigOutcome& s = serial.executed[i];
    const ConfigOutcome& p = parallel.executed[i];
    EXPECT_TRUE(s.config == p.config);
    EXPECT_EQ(PlanHash(s.plan.root, false), PlanHash(p.plan.root, false));
    EXPECT_EQ(s.plan.est_cost, p.plan.est_cost);
    EXPECT_EQ(s.executed, p.executed);
    ExpectMetricsEqual(s.metrics, p.metrics);
    EXPECT_EQ(s.diff_vs_default.ToString(), p.diff_vs_default.ToString());
  }
  EXPECT_EQ(serial.BestRuntimeChangePct(), parallel.BestRuntimeChangePct());
}

TEST(PipelineParallel, AnalyzeJobMatchesSerialAcrossWorkerCounts) {
  Workload workload(Spec());
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());

  SteeringPipeline serial(&optimizer, &simulator, Options(0));
  ASSERT_EQ(serial.pool(), nullptr);

  for (int workers : {1, 2, 8}) {
    SteeringPipeline parallel(&optimizer, &simulator, Options(workers));
    ASSERT_NE(parallel.pool(), nullptr);
    EXPECT_EQ(parallel.pool()->num_threads(), workers);
    for (int t = 0; t < 4; ++t) {
      Job job = workload.MakeJob(t, /*day=*/1);
      JobAnalysis a = serial.AnalyzeJob(job);
      JobAnalysis b = parallel.AnalyzeJob(job);
      SCOPED_TRACE(testing::Message() << "workers=" << workers << " job=" << job.name);
      ExpectAnalysesEqual(a, b);
    }
  }
}

TEST(PipelineParallel, BatchEntryPointMatchesPerJobCalls) {
  Workload workload(Spec());
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());

  std::vector<Job> jobs;
  for (int t = 0; t < 6; ++t) jobs.push_back(workload.MakeJob(t, /*day=*/2));

  SteeringPipeline serial(&optimizer, &simulator, Options(0));
  SteeringPipeline parallel(&optimizer, &simulator, Options(2));

  std::vector<JobAnalysis> batch = parallel.AnalyzeJobs(jobs);
  ASSERT_EQ(batch.size(), jobs.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "job index " << i);
    ExpectAnalysesEqual(serial.AnalyzeJob(jobs[i]), batch[i]);
  }

  // Pool counters observed real fan-out work.
  ThreadPoolStats stats = parallel.pool_stats();
  EXPECT_EQ(stats.num_threads, 2);
  EXPECT_GT(stats.tasks_submitted, 0);
}

TEST(PipelineParallel, SerialPoolStatsAreZeroed) {
  Workload workload(Spec());
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());
  SteeringPipeline serial(&optimizer, &simulator, Options(0));
  ThreadPoolStats stats = serial.pool_stats();
  EXPECT_EQ(stats.num_threads, 0);
  EXPECT_EQ(stats.tasks_submitted, 0);
}

TEST(PipelineParallel, FaultInjectionMatchesSerialAcrossWorkerCounts) {
  // The determinism contract extends to fault injection: with a nonzero
  // fault profile and a retry policy, every injected failure, straggler and
  // retry must replay identically no matter how many workers executed the
  // analysis. Fault nonces are pure hashes of (job, plan, run nonce), so
  // evaluation order cannot leak into the draws.
  Workload workload(Spec());
  Optimizer optimizer(&workload.catalog());
  SimulatorOptions sim_options;
  sim_options.fault_profile = FaultProfile::Flaky(2.0);
  ExecutionSimulator simulator(&workload.catalog(), sim_options);

  PipelineOptions options = Options(0);
  options.retry.max_attempts = 3;
  SteeringPipeline serial(&optimizer, &simulator, options);

  for (int workers : {1, 2, 8}) {
    PipelineOptions parallel_options = Options(workers);
    parallel_options.retry.max_attempts = 3;
    SteeringPipeline parallel(&optimizer, &simulator, parallel_options);
    for (int t = 0; t < 4; ++t) {
      Job job = workload.MakeJob(t, /*day=*/4);
      JobAnalysis a = serial.AnalyzeJob(job);
      JobAnalysis b = parallel.AnalyzeJob(job);
      SCOPED_TRACE(testing::Message() << "workers=" << workers << " job=" << job.name);
      ExpectAnalysesEqual(a, b);
    }
  }

  // The profile actually injected something across these analyses (the
  // counters above compared more than all-zero fields).
  PipelineFailureStats stats = serial.failure_stats();
  Job probe = workload.MakeJob(0, /*day=*/4);
  JobAnalysis analysis = serial.AnalyzeJob(probe);
  bool saw_faults = analysis.default_metrics.retries > 0 ||
                    analysis.default_metrics.failed_vertices > 0 ||
                    analysis.default_metrics.token_revocations > 0 ||
                    analysis.default_metrics.wasted_cpu_time > 0.0 ||
                    stats.exec_retries > 0;
  for (const ConfigOutcome& outcome : analysis.executed) {
    saw_faults = saw_faults || outcome.metrics.retries > 0 ||
                 outcome.metrics.token_revocations > 0 ||
                 outcome.metrics.wasted_cpu_time > 0.0;
  }
  EXPECT_TRUE(saw_faults);
}

TEST(PipelineParallel, RecompileJobsMatchesSerial) {
  Workload workload(Spec());
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());

  std::vector<Job> jobs;
  for (int t = 0; t < 5; ++t) jobs.push_back(workload.MakeJob(t, /*day=*/3));

  SteeringPipeline serial(&optimizer, &simulator, Options(0));
  SteeringPipeline parallel(&optimizer, &simulator, Options(8));
  std::vector<JobAnalysis> a = serial.RecompileJobs(jobs);
  std::vector<JobAnalysis> b = parallel.RecompileJobs(jobs);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "job index " << i);
    ExpectAnalysesEqual(a[i], b[i]);
  }
}

}  // namespace
}  // namespace qsteer
