// Unit tests of RetryPolicy's capped exponential backoff — in particular
// that large retry numbers saturate at the cap instead of overflowing the
// exponential to infinity (the bug this guards against: the multiply chain
// overflowed *before* the cap applied, so attempt >= ~1024 returned inf).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/retry.h"

namespace qsteer {
namespace {

TEST(RetryPolicyTest, BackoffGrowsExponentiallyUntilCap) {
  RetryPolicy policy;
  policy.initial_backoff_s = 2.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_s = 60.0;
  EXPECT_DOUBLE_EQ(policy.BackoffBeforeRetry(0), 0.0);
  EXPECT_DOUBLE_EQ(policy.BackoffBeforeRetry(1), 2.0);
  EXPECT_DOUBLE_EQ(policy.BackoffBeforeRetry(2), 4.0);
  EXPECT_DOUBLE_EQ(policy.BackoffBeforeRetry(3), 8.0);
  EXPECT_DOUBLE_EQ(policy.BackoffBeforeRetry(5), 32.0);
  // 2 * 2^5 = 64 > 60: capped from retry 6 on.
  EXPECT_DOUBLE_EQ(policy.BackoffBeforeRetry(6), 60.0);
  EXPECT_DOUBLE_EQ(policy.BackoffBeforeRetry(7), 60.0);
}

TEST(RetryPolicyTest, LargeRetryNumbersSaturateInsteadOfOverflowing) {
  RetryPolicy policy;
  policy.initial_backoff_s = 2.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_s = 60.0;
  // 2 * 2^31 overflows int64 semantics and 2 * 2^1074 overflows double;
  // every one of these must be exactly the cap, finite, not inf/nan.
  for (int retry : {32, 64, 100, 1024, 1 << 20, std::numeric_limits<int>::max()}) {
    double backoff = policy.BackoffBeforeRetry(retry);
    EXPECT_TRUE(std::isfinite(backoff)) << "retry " << retry;
    EXPECT_DOUBLE_EQ(backoff, 60.0) << "retry " << retry;
  }
}

TEST(RetryPolicyTest, UnitMultiplierIsConstantBackoff) {
  RetryPolicy policy;
  policy.initial_backoff_s = 5.0;
  policy.backoff_multiplier = 1.0;
  policy.max_backoff_s = 60.0;
  EXPECT_DOUBLE_EQ(policy.BackoffBeforeRetry(1), 5.0);
  EXPECT_DOUBLE_EQ(policy.BackoffBeforeRetry(std::numeric_limits<int>::max()), 5.0);
  EXPECT_DOUBLE_EQ(policy.TotalBackoff(4), 20.0);
}

TEST(RetryPolicyTest, InitialAboveCapIsClamped) {
  RetryPolicy policy;
  policy.initial_backoff_s = 120.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_s = 60.0;
  EXPECT_DOUBLE_EQ(policy.BackoffBeforeRetry(1), 60.0);
  EXPECT_DOUBLE_EQ(policy.BackoffBeforeRetry(33), 60.0);
}

TEST(RetryPolicyTest, TotalBackoffMatchesPerRetrySum) {
  RetryPolicy policy;
  policy.initial_backoff_s = 2.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_s = 60.0;
  for (int retries : {1, 3, 6, 10, 50}) {
    double expected = 0.0;
    for (int r = 1; r <= retries; ++r) expected += policy.BackoffBeforeRetry(r);
    EXPECT_DOUBLE_EQ(policy.TotalBackoff(retries), expected) << "retries " << retries;
  }
}

TEST(RetryPolicyTest, TotalBackoffForHugeRetryCountsIsFiniteAndFast) {
  RetryPolicy policy;
  policy.initial_backoff_s = 2.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_s = 60.0;
  // 2+4+8+16+32 = 62 before saturation at retry 6; the rest are 60 each.
  int retries = 1'000'000;
  double expected = 62.0 + 60.0 * static_cast<double>(retries - 5);
  EXPECT_DOUBLE_EQ(policy.TotalBackoff(retries), expected);
  EXPECT_TRUE(std::isfinite(policy.TotalBackoff(std::numeric_limits<int>::max())));
}

TEST(RetryPolicyTest, MaxRetriesDerivesFromAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  EXPECT_EQ(policy.max_retries(), 2);
  policy.max_attempts = 1;
  EXPECT_EQ(policy.max_retries(), 0);
  policy.max_attempts = 0;
  EXPECT_EQ(policy.max_retries(), 0);
}

}  // namespace
}  // namespace qsteer
