// Reentrancy of Optimizer::Compile: one shared const Optimizer must produce
// the same plans when many compilations run concurrently (distinct jobs,
// and distinct configs of the same job) as when they run one at a time.
// All per-compilation state — memo, minted derived columns, estimate cache —
// lives in a per-call context, so nothing here should race (run this test
// under -DQSTEER_SANITIZE=thread to prove it).
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/config_search.h"
#include "core/span.h"
#include "optimizer/optimizer.h"
#include "workload/generator.h"

namespace qsteer {
namespace {

WorkloadSpec Spec() {
  WorkloadSpec spec;
  spec.name = "RE";
  spec.seed = 777;
  spec.num_templates = 16;
  spec.num_stream_sets = 12;
  return spec;
}

struct PlanFingerprint {
  bool ok = false;
  uint64_t plan_hash = 0;
  double est_cost = 0.0;
  double est_output_rows = 0.0;
  int memo_groups = 0;
  int memo_exprs = 0;
};

PlanFingerprint Fingerprint(const Result<CompiledPlan>& plan) {
  PlanFingerprint fp;
  fp.ok = plan.ok();
  if (!plan.ok()) return fp;
  fp.plan_hash = PlanHash(plan.value().root, false);
  fp.est_cost = plan.value().est_cost;
  fp.est_output_rows = plan.value().est_output_rows;
  fp.memo_groups = plan.value().memo_groups;
  fp.memo_exprs = plan.value().memo_exprs;
  return fp;
}

void ExpectSame(const PlanFingerprint& a, const PlanFingerprint& b) {
  ASSERT_EQ(a.ok, b.ok);
  if (!a.ok) return;
  EXPECT_EQ(a.plan_hash, b.plan_hash);
  EXPECT_EQ(a.est_cost, b.est_cost);
  EXPECT_EQ(a.est_output_rows, b.est_output_rows);
  EXPECT_EQ(a.memo_groups, b.memo_groups);
  EXPECT_EQ(a.memo_exprs, b.memo_exprs);
}

TEST(OptimizerReentrancy, ConcurrentDistinctJobsMatchSequential) {
  Workload workload(Spec());
  const Optimizer optimizer(&workload.catalog());

  std::vector<Job> jobs;
  for (int t = 0; t < 12; ++t) jobs.push_back(workload.MakeJob(t, /*day=*/1));

  // Sequential reference.
  std::vector<PlanFingerprint> reference;
  for (const Job& job : jobs) {
    reference.push_back(Fingerprint(optimizer.Compile(job, RuleConfig::Default())));
  }

  // The same compilations, all in flight at once on raw threads (not the
  // pool, so this also covers callers that bring their own threading).
  for (int round = 0; round < 3; ++round) {
    std::vector<PlanFingerprint> concurrent(jobs.size());
    std::vector<std::thread> threads;
    for (size_t i = 0; i < jobs.size(); ++i) {
      threads.emplace_back([&, i] {
        concurrent[i] = Fingerprint(optimizer.Compile(jobs[i], RuleConfig::Default()));
      });
    }
    for (std::thread& t : threads) t.join();
    for (size_t i = 0; i < jobs.size(); ++i) {
      SCOPED_TRACE(testing::Message() << "round " << round << " job " << jobs[i].name);
      ExpectSame(reference[i], concurrent[i]);
    }
  }
}

TEST(OptimizerReentrancy, ConcurrentConfigsOfOneJobMatchSequential) {
  Workload workload(Spec());
  const Optimizer optimizer(&workload.catalog());
  Job job = workload.MakeJob(3, /*day=*/1);

  // Realistic contention: the §5 recompilation fan-out — many configs of
  // the SAME job (same shared column universe underneath) at once.
  ConfigSearchOptions search;
  search.max_configs = 24;
  search.seed = 99;
  std::vector<RuleConfig> configs =
      GenerateCandidateConfigs(ComputeJobSpan(optimizer, job).span, search);
  configs.push_back(RuleConfig::Default());
  ASSERT_GT(configs.size(), 4u);

  std::vector<PlanFingerprint> reference;
  for (const RuleConfig& config : configs) {
    reference.push_back(Fingerprint(optimizer.Compile(job, config)));
  }

  ThreadPool pool(8);
  std::vector<PlanFingerprint> concurrent = ParallelMap<PlanFingerprint>(
      &pool, static_cast<int64_t>(configs.size()),
      [&](int64_t i) { return Fingerprint(optimizer.Compile(job, configs[static_cast<size_t>(i)])); });

  for (size_t i = 0; i < configs.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "config " << i);
    ExpectSame(reference[i], concurrent[i]);
  }
}

TEST(OptimizerReentrancy, RepeatedCompileIsIdempotent) {
  // Compile mutates nothing observable: recompiling the same (job, config)
  // after many intervening compilations still yields the identical plan —
  // in particular, derived-column ids minted during optimization restart at
  // job.columns->size() on every call instead of accumulating.
  Workload workload(Spec());
  const Optimizer optimizer(&workload.catalog());
  Job job = workload.MakeJob(5, /*day=*/2);

  PlanFingerprint first = Fingerprint(optimizer.Compile(job, RuleConfig::Default()));
  for (int t = 0; t < 8; ++t) {
    // qsteer-lint: allow(unchecked-status) interleaved compiles only exercise reentrancy
    (void)optimizer.Compile(workload.MakeJob(t, /*day=*/2), RuleConfig::Default());
  }
  PlanFingerprint again = Fingerprint(optimizer.Compile(job, RuleConfig::Default()));
  ExpectSame(first, again);
}

}  // namespace
}  // namespace qsteer
