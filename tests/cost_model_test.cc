// Cost model unit tests: parallelism scaling, skew, spills, and the
// broadcast/hash/merge/loop trade-offs that drive plan choice.
#include "optimizer/cost_model.h"

#include <gtest/gtest.h>

#include "catalog/catalog.h"

namespace qsteer {
namespace {

/// Minimal stats view with injectable skew.
class FakeView : public StatsView {
 public:
  FakeView() : StatsView(nullptr) {}
  double top_share = 0.0;
  double process_cost = 2.0;

  ColumnDistribution ColumnDist(ColumnId) const override { return {}; }
  double Correlation(ColumnId, ColumnId) const override { return 0.0; }
  double StreamRows(int) const override { return 1e6; }
  double StreamWidth(int) const override { return 100.0; }
  double UdfSelectivity(const Expr&) const override { return 0.5; }
  double ProcessSelectivity(const Operator&) const override { return 1.0; }
  double ProcessCostPerRow(const Operator&) const override { return process_cost; }
  bool UseExponentialBackoff() const override { return false; }
  double TopValueShare(ColumnId) const override { return top_share; }
};

LogicalStats MakeStats(double rows, double width = 100.0) {
  LogicalStats s;
  s.rows = rows;
  s.width = width;
  return s;
}

Operator MakeOp(OpKind kind) {
  Operator op;
  op.kind = kind;
  return op;
}

TEST(CostModel, ScanCostScalesWithBytesAndPruning) {
  FakeView view;
  CostParams params;
  Operator scan = MakeOp(OpKind::kRangeScan);
  LogicalStats out = MakeStats(1e7);
  OpCost full = ComputeOpCost(scan, out, {}, 10, params, view);
  scan.partition_fraction = 0.125;
  OpCost pruned = ComputeOpCost(scan, out, {}, 10, params, view);
  EXPECT_LT(pruned.io, full.io * 0.2);
  EXPECT_LT(pruned.bytes_moved, full.bytes_moved * 0.2);
  EXPECT_GT(full.latency, 0.0);
}

TEST(CostModel, HigherDopReducesLatencyNotCpu) {
  FakeView view;
  CostParams params;
  Operator agg = MakeOp(OpKind::kHashAgg);
  agg.group_keys = {0};
  // Narrow rows: large enough that parallelism pays, small enough in bytes
  // that no DOP choice spills (spills would legitimately change total CPU,
  // covered by the spill test below).
  LogicalStats in = MakeStats(5e7, /*width=*/20.0);
  LogicalStats out = MakeStats(1e4, 20.0);
  OpCost narrow = ComputeOpCost(agg, out, {&in}, 2, params, view);
  OpCost wide = ComputeOpCost(agg, out, {&in}, 64, params, view);
  EXPECT_LT(wide.latency, narrow.latency);
  EXPECT_NEAR(wide.cpu, narrow.cpu, narrow.cpu * 0.01);  // total work unchanged
}

TEST(CostModel, CoordinationPenalizesExtremeDop) {
  // Tiny input + huge dop: scheduling overhead dominates and latency rises.
  FakeView view;
  CostParams params;
  Operator filter = MakeOp(OpKind::kFilter);
  filter.predicate = Expr::Cmp(0, CmpOp::kEq, 1);
  LogicalStats in = MakeStats(1000);
  LogicalStats out = MakeStats(100);
  OpCost small = ComputeOpCost(filter, out, {&in}, 1, params, view);
  OpCost huge = ComputeOpCost(filter, out, {&in}, 128, params, view);
  EXPECT_GT(huge.latency, small.latency);
}

TEST(CostModel, SkewCapsEffectiveParallelism) {
  FakeView view;
  CostParams params;
  Operator join = MakeOp(OpKind::kHashJoin);
  join.left_keys = {0};
  join.right_keys = {1};
  LogicalStats left = MakeStats(5e7);
  LogicalStats right = MakeStats(1e6);
  LogicalStats out = MakeStats(5e7);

  view.top_share = 0.0;  // uniform: full parallelism
  OpCost uniform = ComputeOpCost(join, out, {&left, &right}, 64, params, view);
  view.top_share = 0.25;  // hottest key holds 25% of rows: eff dop <= 4
  OpCost skewed = ComputeOpCost(join, out, {&left, &right}, 64, params, view);
  // Effective parallelism caps at 4 of 64; the fixed coordination term
  // dilutes the ratio below a full 16x.
  EXPECT_GT(skewed.latency, uniform.latency * 3);
  EXPECT_NEAR(skewed.cpu, uniform.cpu, uniform.cpu * 1e-9);  // same work
}

TEST(CostModel, BroadcastJoinImmuneToKeySkew) {
  FakeView view;
  view.top_share = 0.25;
  CostParams params;
  Operator hash_join = MakeOp(OpKind::kHashJoin);
  hash_join.left_keys = {0};
  hash_join.right_keys = {1};
  Operator bcast_join = MakeOp(OpKind::kBroadcastHashJoin);
  bcast_join.left_keys = {0};
  bcast_join.right_keys = {1};
  LogicalStats probe = MakeStats(5e7);
  LogicalStats build = MakeStats(1e4, 50.0);
  LogicalStats out = MakeStats(5e7);
  OpCost hash = ComputeOpCost(hash_join, out, {&probe, &build}, 64, params, view);
  OpCost bcast = ComputeOpCost(bcast_join, out, {&probe, &build}, 64, params, view);
  // With heavy key skew and a small build side, broadcasting wins on
  // latency — the paper's alternative-join-implementation motif.
  EXPECT_LT(bcast.latency, hash.latency);
}

TEST(CostModel, HashBuildSpillsWhenBuildExceedsMemory) {
  FakeView view;
  CostParams params;
  params.memory_per_vertex_bytes = 1e6;
  Operator join = MakeOp(OpKind::kHashJoin);
  join.left_keys = {0};
  join.right_keys = {1};
  LogicalStats probe = MakeStats(1e6, 100);
  LogicalStats small_build = MakeStats(1e3, 100);   // fits
  LogicalStats big_build = MakeStats(1e7, 100);     // spills
  LogicalStats out = MakeStats(1e6);
  OpCost fits = ComputeOpCost(join, out, {&probe, &small_build}, 4, params, view);
  OpCost spills = ComputeOpCost(join, out, {&probe, &big_build}, 4, params, view);
  EXPECT_DOUBLE_EQ(fits.io, 0.0);
  EXPECT_GT(spills.io, 0.0);  // spill adds extra IO passes
  // Spilled hash work is penalized: CPU exceeds the no-spill formula.
  double no_spill_cpu = big_build.rows * params.hash_build_per_row +
                        probe.rows * params.hash_probe_per_row +
                        out.rows * params.emit_per_row;
  EXPECT_GT(spills.cpu, no_spill_cpu * 1.5);
}

TEST(CostModel, LoopJoinQuadraticallyWorseThanHash) {
  FakeView view;
  CostParams params;
  Operator loop = MakeOp(OpKind::kLoopJoin);
  Operator hash = MakeOp(OpKind::kHashJoin);
  hash.left_keys = {0};
  hash.right_keys = {1};
  LogicalStats left = MakeStats(1e5);
  LogicalStats right = MakeStats(1e5);
  LogicalStats out = MakeStats(1e5);
  OpCost loop_cost = ComputeOpCost(loop, out, {&left, &right}, 1, params, view);
  OpCost hash_cost = ComputeOpCost(hash, out, {&left, &right}, 1, params, view);
  EXPECT_GT(loop_cost.cpu, hash_cost.cpu * 100);
}

TEST(CostModel, ExchangeKinds) {
  FakeView view;
  CostParams params;
  LogicalStats in = MakeStats(1e6, 100);
  LogicalStats out = in;
  Operator ex = MakeOp(OpKind::kExchange);
  ex.exchange = ExchangeKind::kRepartition;
  ex.exchange_keys = {0};
  OpCost repart = ComputeOpCost(ex, out, {&in}, 16, params, view);
  ex.exchange = ExchangeKind::kBroadcast;
  OpCost bcast = ComputeOpCost(ex, out, {&in}, 16, params, view);
  ex.exchange = ExchangeKind::kGather;
  OpCost gather = ComputeOpCost(ex, out, {&in}, 1, params, view);
  // Broadcast moves dop copies of the data.
  EXPECT_NEAR(bcast.bytes_moved, repart.bytes_moved * 16, 1.0);
  EXPECT_GT(bcast.io, repart.io * 10);
  EXPECT_GT(gather.latency, 0.0);
}

TEST(CostModel, VirtualDatasetNearlyFree) {
  FakeView view;
  CostParams params;
  LogicalStats in = MakeStats(1e8, 100);
  LogicalStats out = MakeStats(3e8, 100);
  Operator physical = MakeOp(OpKind::kPhysicalUnionAll);
  Operator virtual_ds = MakeOp(OpKind::kVirtualDataset);
  OpCost concat = ComputeOpCost(physical, out, {&in, &in, &in}, 32, params, view);
  OpCost metadata = ComputeOpCost(virtual_ds, out, {&in, &in, &in}, 32, params, view);
  EXPECT_LT(metadata.latency, concat.latency / 100);
  EXPECT_DOUBLE_EQ(metadata.io, 0.0);
}

TEST(CostModel, ProcessCostUsesViewFactor) {
  FakeView view;
  CostParams params;
  Operator udo = MakeOp(OpKind::kProcessVertex);
  udo.udo_name = "u";
  LogicalStats in = MakeStats(1e6);
  LogicalStats out = in;
  view.process_cost = 1.0;
  OpCost cheap = ComputeOpCost(udo, out, {&in}, 8, params, view);
  view.process_cost = 10.0;
  OpCost costly = ComputeOpCost(udo, out, {&in}, 8, params, view);
  EXPECT_NEAR(costly.cpu / cheap.cpu, 10.0, 0.1);
}

TEST(CostModel, OptimizerBeliefsAreOptimisticAboutOverheads) {
  CostParams beliefs = CostParams::OptimizerBeliefs();
  CostParams truth = CostParams::ClusterTruth();
  EXPECT_LT(beliefs.vertex_startup, truth.vertex_startup);
  EXPECT_LT(beliefs.coordination_per_vertex, truth.coordination_per_vertex);
  // Work rates agree — the disagreement is parallelism overheads only.
  EXPECT_DOUBLE_EQ(beliefs.read_per_byte, truth.read_per_byte);
  EXPECT_DOUBLE_EQ(beliefs.hash_build_per_row, truth.hash_build_per_row);
}

TEST(CostModel, LogicalOperatorsAreFree) {
  FakeView view;
  CostParams params;
  LogicalStats in = MakeStats(1e6);
  for (OpKind kind : {OpKind::kGet, OpKind::kSelect, OpKind::kJoin, OpKind::kGroupBy}) {
    OpCost cost = ComputeOpCost(MakeOp(kind), in, {&in, &in}, 8, params, view);
    EXPECT_DOUBLE_EQ(cost.latency, 0.0) << OpKindName(kind);
    EXPECT_DOUBLE_EQ(cost.cpu, 0.0) << OpKindName(kind);
  }
}

}  // namespace
}  // namespace qsteer
