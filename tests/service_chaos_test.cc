// Deterministic chaos soak of the crash-safe steering service.
//
// Store-level soak: a fixed script of recommender events (learns,
// validations, outcomes, breaker-ticking lookups) runs once uninterrupted
// to produce a golden serialized store, then re-runs with a simulated crash
// (the store object dropped — no snapshot, no drain) at injection points
// chosen by hashing a fixed seed. After every crash the recovered store
// must be bit-identical to an uninterrupted run of the same prefix, and
// finishing the script must land bit-identical on the golden bytes.
//
// Corruption soak: WAL tails torn at arbitrary byte lengths and corrupt
// snapshots must be detected (truncated / hard error), never mis-parsed.
//
// Service-level: admission control (deadline shedding, bounded-queue
// rejection), Kill() failing queued requests with a distinct status, and
// drain/shutdown losing no acknowledged learning across a restart.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/hash.h"
#include "service/steering_service.h"
#include "workload/generator.h"

namespace qsteer {
namespace {

class TempDir {
 public:
  TempDir() {
    dir_ = std::filesystem::temp_directory_path() /
           ("qsteer_chaos_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() { std::filesystem::remove_all(dir_); }
  std::string path() const { return dir_.string(); }

 private:
  static inline int counter_ = 0;
  std::filesystem::path dir_;
};

RuleSignature Sig(int bit) {
  RuleSignature s;
  s.Set(bit);
  return s;
}

RuleConfig AltConfig(int n) {
  // The n-th distinct single-rule deviation from the default configuration
  // (toggling an arbitrary id can be a no-op; pick toggles that stick).
  RuleConfig def = RuleConfig::Default();
  std::vector<int> toggleable;
  for (int id = 0; id < 256; ++id) {
    RuleConfig config = def;
    if (config.IsEnabled(id)) {
      config.Disable(id);
    } else {
      config.Enable(id);
    }
    if (config != def) toggleable.push_back(id);
  }
  RuleConfig config = def;
  int id = toggleable[static_cast<size_t>(n) % toggleable.size()];
  if (config.IsEnabled(id)) {
    config.Disable(id);
  } else {
    config.Enable(id);
  }
  return config;
}

struct Event {
  char type;  // 'L' learn, 'V' validation, 'O' outcome, 'R' recommend
  int sig;
  int cfg;
  double change;
};

void ApplyEvent(DurableRecommenderStore& store, const Event& event) {
  switch (event.type) {
    case 'L': {
      SteeringRecommender::CandidateObservation observation;
      observation.signature = Sig(event.sig);
      observation.config = AltConfig(event.cfg);
      observation.improvement_pct = event.change;
      store.LearnCandidate(observation);
      break;
    }
    case 'V':
      store.ObserveValidation(Sig(event.sig), event.change);
      break;
    case 'O':
      store.ObserveOutcome(Sig(event.sig), event.change);
      break;
    case 'R':
      store.Recommend(Sig(event.sig));
      break;
  }
}

/// One simulated "day" of recommender traffic exercising every journaled
/// event type and every breaker transition: candidates learned and
/// validated, groups serving cleanly, groups regressing until their
/// breakers trip (rollback), cooldown ticks while open (the mutating
/// lookups), half-open probes, replacement candidates, and retirement.
std::vector<Event> MakeScript() {
  std::vector<Event> script;
  constexpr int kGroups = 6;
  for (int g = 0; g < kGroups; ++g) {
    script.push_back({'L', g, g, -20.0 - g});
    script.push_back({'V', g, 0, -10.0});
    script.push_back({'V', g, 0, -12.0});
  }
  // Serving rounds: groups 0 and 1 regress persistently (their breakers
  // trip, cool down, probe, trip again, and eventually retire); the rest
  // serve cleanly.
  for (int round = 0; round < 8; ++round) {
    for (int g = 0; g < kGroups; ++g) {
      script.push_back({'R', g, 0, 0.0});
      script.push_back({'O', g, 0, g < 2 ? 40.0 + round : -8.0});
    }
    // Extra lookups against the troubled groups: while their breakers are
    // open these tick the cooldown clock — the mutation Recommend journals.
    for (int i = 0; i < 4; ++i) script.push_back({'R', i % 2, 0, 0.0});
  }
  // A better replacement candidate for group 3 (must re-validate), one that
  // regresses under validation for group 4 (rejected outright), and a
  // brand-new group that never finishes validating.
  script.push_back({'L', 3, 17, -45.0});
  script.push_back({'V', 3, 0, -30.0});
  script.push_back({'V', 3, 0, -28.0});
  script.push_back({'L', 4, 23, -60.0});
  script.push_back({'V', 4, 0, 55.0});
  script.push_back({'L', 40, 29, -33.0});
  script.push_back({'V', 40, 0, -15.0});
  for (int g = 0; g < kGroups; ++g) {
    script.push_back({'R', g, 0, 0.0});
    script.push_back({'O', g, 0, -6.0});
  }
  return script;
}

DurableStoreOptions StoreOptions(const std::string& dir, int snapshot_interval = 7) {
  DurableStoreOptions options;
  options.dir = dir;
  options.snapshot_interval = snapshot_interval;
  options.sync = false;  // tmpfs-friendly; rename atomicity is what matters
  return options;
}

std::string RunScriptEphemeral(const std::vector<Event>& script, size_t count) {
  DurableRecommenderStore store;  // empty dir: ephemeral
  EXPECT_TRUE(store.Open().ok());
  for (size_t i = 0; i < count && i < script.size(); ++i) ApplyEvent(store, script[i]);
  return store.SerializeState();
}

TEST(DurableStoreChaosTest, UninterruptedDurableRunMatchesEphemeral) {
  std::vector<Event> script = MakeScript();
  TempDir dir;
  DurableRecommenderStore store(StoreOptions(dir.path()));
  ASSERT_TRUE(store.Open().ok());
  for (const Event& event : script) ApplyEvent(store, event);
  EXPECT_EQ(store.SerializeState(), RunScriptEphemeral(script, script.size()));
  EXPECT_GT(store.snapshots_taken(), 0);
  EXPECT_GT(store.applied_seq(), 0u);
}

// The tentpole assertion: crash anywhere, recover, finish the day, and the
// final recommendation table is bit-identical to the uninterrupted run.
TEST(DurableStoreChaosTest, CrashAtHashedInjectionPointsRecoversBitIdentical) {
  std::vector<Event> script = MakeScript();
  const std::string golden = RunScriptEphemeral(script, script.size());
  constexpr uint64_t kSeed = 0x5eed5eed;
  constexpr int kCrashes = 12;
  for (int k = 0; k < kCrashes; ++k) {
    size_t crash_at = Mix64(kSeed ^ static_cast<uint64_t>(k)) % (script.size() + 1);
    SCOPED_TRACE("crash after event " + std::to_string(crash_at));
    TempDir dir;
    auto store = std::make_unique<DurableRecommenderStore>(StoreOptions(dir.path()));
    ASSERT_TRUE(store->Open().ok());
    for (size_t i = 0; i < crash_at; ++i) ApplyEvent(*store, script[i]);
    store.reset();  // crash: no snapshot, no drain — disk is all that survives

    DurableRecommenderStore recovered(StoreOptions(dir.path()));
    ASSERT_TRUE(recovered.Open().ok());
    EXPECT_EQ(recovered.SerializeState(), RunScriptEphemeral(script, crash_at))
        << "recovered state diverges from the pre-crash store";
    for (size_t i = crash_at; i < script.size(); ++i) ApplyEvent(recovered, script[i]);
    EXPECT_EQ(recovered.SerializeState(), golden)
        << "post-recovery run diverges from the uninterrupted run";
  }
}

// Crash in the window between snapshot write and WAL reset: the WAL still
// holds events the snapshot already captured; recovery must skip them by
// sequence number instead of applying them twice.
TEST(DurableStoreChaosTest, CrashBetweenSnapshotAndWalResetDoesNotDoubleApply) {
  std::vector<Event> script = MakeScript();
  const std::string golden = RunScriptEphemeral(script, script.size());
  for (size_t crash_at : {static_cast<size_t>(21), script.size() / 2, script.size()}) {
    SCOPED_TRACE("crash after event " + std::to_string(crash_at));
    TempDir dir;
    DurableStoreOptions options = StoreOptions(dir.path());
    options.testing_skip_wal_reset_after_snapshot = true;  // simulate the window
    auto store = std::make_unique<DurableRecommenderStore>(options);
    ASSERT_TRUE(store->Open().ok());
    for (size_t i = 0; i < crash_at; ++i) ApplyEvent(*store, script[i]);
    store.reset();

    DurableRecommenderStore recovered(StoreOptions(dir.path()));
    ASSERT_TRUE(recovered.Open().ok());
    EXPECT_GT(recovered.recovery().wal_records_skipped, 0)
        << "the crash window should leave already-snapshotted records in the WAL";
    EXPECT_EQ(recovered.SerializeState(), RunScriptEphemeral(script, crash_at));
    for (size_t i = crash_at; i < script.size(); ++i) ApplyEvent(recovered, script[i]);
    EXPECT_EQ(recovered.SerializeState(), golden);
  }
}

// Torn WAL tails (crash mid-append) at arbitrary byte lengths: recovery
// truncates back to the longest intact record prefix and resumes from
// exactly the state those records produce.
TEST(DurableStoreChaosTest, TornWalTailIsTruncatedToIntactPrefix) {
  std::vector<Event> script = MakeScript();
  TempDir dir;
  std::string wal_path;
  // Reference state keyed by sequence number. Not every event journals (a
  // Recommend on a closed breaker is a pure read — no WAL record and no
  // state change), so the map, not a script index, is what a recovered
  // applied_seq maps back to.
  std::vector<std::string> state_at_seq;
  {
    // Large snapshot interval: the whole script stays in the WAL.
    DurableRecommenderStore store(StoreOptions(dir.path(), /*snapshot_interval=*/100000));
    ASSERT_TRUE(store.Open().ok());
    state_at_seq.assign(1, store.SerializeState());  // seq 0 = empty store
    for (const Event& event : script) {
      ApplyEvent(store, event);
      state_at_seq.resize(store.applied_seq() + 1);
      state_at_seq[store.applied_seq()] = store.SerializeState();
    }
    wal_path = store.wal_path();
  }
  std::ifstream in(wal_path, std::ios::binary);
  std::string full((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  constexpr uint64_t kSeed = 0x7042;
  for (int k = 0; k < 8; ++k) {
    size_t cut = Mix64(kSeed ^ static_cast<uint64_t>(k)) % full.size();
    SCOPED_TRACE("wal cut to " + std::to_string(cut) + " of " + std::to_string(full.size()));
    std::ofstream out(wal_path, std::ios::binary | std::ios::trunc);
    out << full.substr(0, cut);
    out.close();

    DurableRecommenderStore recovered(StoreOptions(dir.path(), 100000));
    ASSERT_TRUE(recovered.Open().ok()) << "a torn tail must not fail recovery";
    uint64_t intact = recovered.applied_seq();
    ASSERT_LT(intact, state_at_seq.size());
    EXPECT_EQ(recovered.SerializeState(), state_at_seq[intact]);
  }
}

TEST(DurableStoreChaosTest, CorruptSnapshotIsAHardError) {
  std::vector<Event> script = MakeScript();
  TempDir dir;
  std::string snapshot_path;
  {
    DurableRecommenderStore store(StoreOptions(dir.path(), /*snapshot_interval=*/5));
    ASSERT_TRUE(store.Open().ok());
    for (const Event& event : script) ApplyEvent(store, event);
    ASSERT_TRUE(store.Snapshot().ok());
    snapshot_path = store.snapshot_path();
  }
  std::fstream file(snapshot_path, std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(24);
  char byte = 0;
  file.seekg(24);
  file.get(byte);
  file.seekp(24);
  file.put(static_cast<char>(byte ^ 0x01));
  file.close();

  DurableRecommenderStore corrupted(StoreOptions(dir.path(), 5));
  Status status = corrupted.Open();
  ASSERT_FALSE(status.ok()) << "a corrupt snapshot must not load silently";
}

TEST(DurableStoreChaosTest, EphemeralStoreNeedsNoFiles) {
  DurableRecommenderStore store;
  ASSERT_TRUE(store.Open().ok());
  ApplyEvent(store, {'L', 1, 1, -25.0});
  EXPECT_EQ(store.num_groups(), 1);
  EXPECT_FALSE(store.durable());
  EXPECT_EQ(store.snapshots_taken(), 0);
}

// ------------------------------------------------------------ service level

struct ServiceFixture {
  ServiceFixture()
      : workload(WorkloadSpec::WorkloadB(0.003)),
        optimizer(&workload.catalog()),
        simulator(&workload.catalog(), [] {
          SimulatorOptions options;
          options.deterministic = true;
          return options;
        }()) {}

  Workload workload;
  Optimizer optimizer;
  ExecutionSimulator simulator;
};

TEST(SteeringServiceTest, WarmCacheFileWarmsAtStartAndDegradesColdOnDamage) {
  // ServiceOptions::warm_cache_file: a discovery-shipped cache artifact
  // pre-warms the serving pipeline at Start(); the health snapshot reports
  // the warm-load counters; damage is never fatal — the service starts
  // cold and counts the rejection.
  ServiceFixture fx;
  TempDir dir;
  std::string cache_file = dir.path() + "/warm.qcc";
  {
    SteeringPipeline pipeline(&fx.optimizer, &fx.simulator, {});
    std::vector<Job> jobs = fx.workload.JobsForDay(1);
    for (size_t i = 0; i < 3 && i < jobs.size(); ++i) pipeline.AnalyzeJob(jobs[i]);
    ASSERT_TRUE(pipeline.SaveCompileCache(cache_file, /*day=*/1, /*sync=*/false).ok());
  }
  ServiceOptions options;
  options.num_workers = 1;
  options.warm_cache_file = cache_file;
  options.warm_cache_day = 1;
  {
    SteeringService service(&fx.optimizer, &fx.simulator, options);
    ASSERT_TRUE(service.Start().ok());
    ServiceStatusSnapshot status = service.status();
    EXPECT_GT(status.cache_warm_loaded, 0);
    EXPECT_EQ(status.cache_warm_rejected, 0);
    EXPECT_NE(status.ToString().find("warm_loaded"), std::string::npos);
    ASSERT_TRUE(service.Shutdown().ok());
  }
  {
    std::ifstream in(cache_file, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    bytes[bytes.size() / 2] ^= 0x20;
    std::ofstream out(cache_file, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  {
    SteeringService service(&fx.optimizer, &fx.simulator, options);
    ASSERT_TRUE(service.Start().ok()) << "a damaged warm file must not block startup";
    ServiceStatusSnapshot status = service.status();
    EXPECT_EQ(status.cache_warm_loaded, 0);
    EXPECT_EQ(status.cache_warm_rejected, 1);
    ASSERT_TRUE(service.Shutdown().ok());
  }
}

TEST(SteeringServiceTest, ShedsDeadlineDoomedRequestsWithDistinctStatus) {
  ServiceFixture fx;
  ServiceOptions options;
  options.num_workers = 0;  // deterministic: nothing drains the queue
  options.queue_capacity = 16;
  options.initial_service_time_ewma_s = 10.0;  // every queued item "costs" 10s
  SteeringService service(&fx.optimizer, &fx.simulator, options);
  ASSERT_TRUE(service.Start().ok());
  std::vector<Job> jobs = fx.workload.JobsForDay(1);
  ASSERT_GE(jobs.size(), 3u);

  // Queue empty: estimated wait 0, any deadline is satisfiable.
  ServiceRequest first;
  first.job = jobs[0];
  first.deadline_s = 5.0;
  EXPECT_EQ(service.Submit(first, nullptr), AdmitResult::kAccepted);

  // One item ahead at 10s EWMA: a 5s deadline cannot be met -> shed.
  ServiceRequest doomed;
  doomed.job = jobs[1];
  doomed.deadline_s = 5.0;
  EXPECT_EQ(service.Submit(doomed, nullptr), AdmitResult::kShedDeadline);

  // Same load, patient deadline -> accepted.
  ServiceRequest patient;
  patient.job = jobs[2];
  patient.deadline_s = 1000.0;
  EXPECT_EQ(service.Submit(patient, nullptr), AdmitResult::kAccepted);

  ServiceStatusSnapshot status = service.status();
  EXPECT_EQ(status.accepted, 2);
  EXPECT_EQ(status.shed_deadline, 1);
  EXPECT_EQ(status.queue_depth, 2);
  service.Kill();
}

TEST(SteeringServiceTest, RejectsWhenQueueFullAndNeverBlocks) {
  ServiceFixture fx;
  ServiceOptions options;
  options.num_workers = 0;
  options.queue_capacity = 3;
  SteeringService service(&fx.optimizer, &fx.simulator, options);
  ASSERT_TRUE(service.Start().ok());
  std::vector<Job> jobs = fx.workload.JobsForDay(1);
  ASSERT_GE(jobs.size(), 4u);
  for (int i = 0; i < 3; ++i) {
    ServiceRequest request;
    request.job = jobs[static_cast<size_t>(i)];
    EXPECT_EQ(service.Submit(request, nullptr), AdmitResult::kAccepted);
  }
  ServiceRequest overflow;
  overflow.job = jobs[3];
  EXPECT_EQ(service.Submit(overflow, nullptr), AdmitResult::kQueueFull);
  ServiceStatusSnapshot status = service.status();
  EXPECT_EQ(status.rejected_queue_full, 1);
  EXPECT_EQ(status.queue_high_water, 3);
  service.Kill();
}

TEST(SteeringServiceTest, KillFailsQueuedRequestsAndRejectsNewOnes) {
  ServiceFixture fx;
  ServiceOptions options;
  options.num_workers = 0;
  options.queue_capacity = 8;
  SteeringService service(&fx.optimizer, &fx.simulator, options);
  ASSERT_TRUE(service.Start().ok());
  std::vector<Job> jobs = fx.workload.JobsForDay(1);
  std::vector<std::future<ServiceReply>> replies;
  for (int i = 0; i < 3; ++i) {
    ServiceRequest request;
    request.job = jobs[static_cast<size_t>(i)];
    std::future<ServiceReply> reply;
    ASSERT_EQ(service.Submit(request, &reply), AdmitResult::kAccepted);
    replies.push_back(std::move(reply));
  }
  service.Kill();
  for (std::future<ServiceReply>& reply : replies) {
    ServiceReply result = reply.get();  // must not hang
    EXPECT_FALSE(result.status.ok());
    EXPECT_EQ(result.status.code(), StatusCode::kInternal);
  }
  ServiceRequest late;
  late.job = jobs[0];
  EXPECT_EQ(service.Submit(late, nullptr), AdmitResult::kNotRunning);
  EXPECT_EQ(service.status().failed, 3);
}

TEST(SteeringServiceTest, ServesRequestsAndShutsDownCleanly) {
  ServiceFixture fx;
  TempDir dir;
  ServiceOptions options;
  options.num_workers = 2;
  options.store = [&] {
    DurableStoreOptions store;
    store.dir = dir.path();
    store.snapshot_interval = 4;
    store.sync = false;
    return store;
  }();
  std::string final_state;
  {
    SteeringService service(&fx.optimizer, &fx.simulator, options);
    ASSERT_TRUE(service.Start().ok());
    // Teach it one group so serving has something to recommend.
    std::vector<Job> jobs = fx.workload.JobsForDay(1);
    SteeringPipeline pipeline(&fx.optimizer, &fx.simulator, {});
    for (size_t i = 0; i < 4 && i < jobs.size(); ++i) {
      service.store().LearnFromAnalysis(pipeline.AnalyzeJob(jobs[i]));
    }
    for (const SteeringRecommender::ValidationRequest& request :
         service.store().PendingValidations()) {
      service.store().ObserveValidation(request.signature, -10.0);
      service.store().ObserveValidation(request.signature, -10.0);
    }
    std::vector<std::future<ServiceReply>> replies;
    for (size_t i = 0; i < 8 && i < jobs.size(); ++i) {
      ServiceRequest request;
      request.job = jobs[i];
      std::future<ServiceReply> reply;
      if (service.Submit(request, &reply) == AdmitResult::kAccepted) {
        replies.push_back(std::move(reply));
      }
    }
    for (std::future<ServiceReply>& reply : replies) {
      ServiceReply result = reply.get();
      EXPECT_TRUE(result.status.ok()) << result.status.ToString();
      EXPECT_GT(result.default_runtime_s, 0.0);
    }
    ASSERT_TRUE(service.Shutdown().ok());
    ServiceStatusSnapshot status = service.status();
    EXPECT_FALSE(status.running);
    EXPECT_EQ(status.completed, status.accepted);
    EXPECT_EQ(status.queue_depth, 0);
    EXPECT_EQ(status.wal_lag, 0) << "clean shutdown must leave no WAL replay debt";
    final_state = service.store().SerializeState();
    EXPECT_FALSE(status.ToString().empty());
  }
  // Every acknowledged mutation survives the restart.
  DurableRecommenderStore reopened([&] {
    DurableStoreOptions store;
    store.dir = dir.path();
    store.sync = false;
    return store;
  }());
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.SerializeState(), final_state);
}

TEST(SteeringServiceTest, CrashMidServingRecoversBitIdentical) {
  ServiceFixture fx;
  TempDir dir;
  ServiceOptions options;
  options.num_workers = 2;
  options.store.dir = dir.path();
  options.store.snapshot_interval = 3;
  options.store.sync = false;
  std::string pre_crash_state;
  {
    SteeringService service(&fx.optimizer, &fx.simulator, options);
    ASSERT_TRUE(service.Start().ok());
    std::vector<Job> jobs = fx.workload.JobsForDay(2);
    SteeringPipeline pipeline(&fx.optimizer, &fx.simulator, {});
    for (size_t i = 0; i < 5 && i < jobs.size(); ++i) {
      service.store().LearnFromAnalysis(pipeline.AnalyzeJob(jobs[i]));
    }
    for (const SteeringRecommender::ValidationRequest& request :
         service.store().PendingValidations()) {
      service.store().ObserveValidation(request.signature, -10.0);
      service.store().ObserveValidation(request.signature, -10.0);
    }
    std::vector<std::future<ServiceReply>> replies;
    for (size_t i = 0; i < 6 && i < jobs.size(); ++i) {
      ServiceRequest request;
      request.job = jobs[i];
      std::future<ServiceReply> reply;
      if (service.Submit(request, &reply) == AdmitResult::kAccepted) {
        replies.push_back(std::move(reply));
      }
    }
    service.Kill();  // crash mid-day: some requests served, some failed
    for (std::future<ServiceReply>& reply : replies) reply.get();  // none hang
    pre_crash_state = service.store().SerializeState();
  }
  SteeringService recovered(&fx.optimizer, &fx.simulator, options);
  ASSERT_TRUE(recovered.Start().ok());
  EXPECT_EQ(recovered.store().SerializeState(), pre_crash_state)
      << "recovered recommendation table must be bit-identical to the "
         "pre-crash store";
  recovered.Kill();
}

TEST(SteeringServiceTest, ReanalysisSupersededBeforeStartIsAbandoned) {
  ServiceFixture fx;
  ServiceOptions options;
  options.num_workers = 1;
  // Tiny pipeline so the background analysis is cheap when it does run.
  options.pipeline.max_candidate_configs = 4;
  options.pipeline.configs_to_execute = 1;
  SteeringService service(&fx.optimizer, &fx.simulator, options);
  ASSERT_TRUE(service.Start().ok());
  std::vector<Job> jobs = fx.workload.JobsForDay(1);
  ASSERT_GE(jobs.size(), 2u);
  EXPECT_TRUE(service.RequestReanalysis(jobs[0]));
  // Superseding request: the first one is cancelled (either while pending
  // or mid-analysis) and must be counted abandoned, not applied twice.
  EXPECT_TRUE(service.RequestReanalysis(jobs[1]));
  ASSERT_TRUE(service.Shutdown().ok());
  ServiceStatusSnapshot status = service.status();
  EXPECT_GE(status.reanalyses_abandoned + status.reanalyses_completed, 1);
}

TEST(SteeringServiceTest, StartFailsOnUnreadableStoreDirectory) {
  ServiceFixture fx;
  ServiceOptions options;
  options.store.dir = "/nonexistent/qsteer/store/dir";
  SteeringService service(&fx.optimizer, &fx.simulator, options);
  EXPECT_FALSE(service.Start().ok());
  // A failed start leaves the service stopped; submits are rejected.
  EXPECT_EQ(service.Submit(ServiceRequest{}, nullptr), AdmitResult::kNotRunning);
}

}  // namespace
}  // namespace qsteer
