#include "ml/mlp.h"

#include <gtest/gtest.h>

#include <cmath>

namespace qsteer {
namespace {

TEST(Mlp, ForwardOutputsAreProbabilities) {
  Mlp model(4, 8, 3, /*seed=*/1);
  std::vector<double> out = model.Forward({0.1, 0.5, -0.3, 1.0});
  ASSERT_EQ(out.size(), 3u);
  for (double p : out) {
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
  }
}

TEST(Mlp, LearnsSeparableFunction) {
  // y = 1 when x0 > x1 else 0: trivially learnable.
  Pcg32 rng(5);
  std::vector<std::vector<double>> xs, ys;
  for (int i = 0; i < 400; ++i) {
    double a = rng.NextDouble(), b = rng.NextDouble();
    xs.push_back({a, b});
    ys.push_back({a > b ? 1.0 : 0.0});
  }
  MlpOptions options;
  options.hidden = 16;
  options.epochs = 80;
  options.patience = 0;
  Mlp model = Mlp::Train(xs, ys, {}, {}, 1, options);
  int correct = 0;
  for (int i = 0; i < 200; ++i) {
    double a = rng.NextDouble(), b = rng.NextDouble();
    double p = model.Forward({a, b})[0];
    if ((p > 0.5) == (a > b)) ++correct;
  }
  EXPECT_GE(correct, 180);
}

TEST(Mlp, TrainStepReducesLossOnFixedExample) {
  Mlp model(3, 8, 2, 7);
  std::vector<double> x = {0.2, 0.8, 0.5};
  std::vector<double> y = {1.0, 0.0};
  double first = model.TrainStep(x, y, 1e-2);
  double last = first;
  for (int i = 0; i < 200; ++i) last = model.TrainStep(x, y, 1e-2);
  EXPECT_LT(last, first * 0.5);
}

TEST(Mlp, EvaluateMatchesTrainStepLossScale) {
  Mlp model(2, 4, 2, 3);
  std::vector<std::vector<double>> xs = {{0.1, 0.9}, {0.8, 0.2}};
  std::vector<std::vector<double>> ys = {{1.0, 0.0}, {0.0, 1.0}};
  double loss = model.Evaluate(xs, ys);
  EXPECT_GT(loss, 0.0);
  EXPECT_LT(loss, 5.0);
}

TEST(Mlp, DeterministicForSeed) {
  Mlp a(4, 8, 2, 11);
  Mlp b(4, 8, 2, 11);
  std::vector<double> x = {0.5, -0.5, 1.0, 0.0};
  EXPECT_EQ(a.Forward(x), b.Forward(x));
  Mlp c(4, 8, 2, 12);
  EXPECT_NE(a.Forward(x), c.Forward(x));
}

TEST(Mlp, EarlyStoppingReturnsBestValidationModel) {
  // Tiny train set + noisy validation: with patience, training stops and
  // returns a model at least as good on validation as the final one.
  Pcg32 rng(9);
  std::vector<std::vector<double>> xs, ys, vx, vy;
  for (int i = 0; i < 60; ++i) {
    double a = rng.NextDouble();
    xs.push_back({a});
    ys.push_back({a > 0.5 ? 1.0 : 0.0});
  }
  for (int i = 0; i < 30; ++i) {
    double a = rng.NextDouble();
    vx.push_back({a});
    vy.push_back({a > 0.5 ? 1.0 : 0.0});
  }
  MlpOptions options;
  options.hidden = 8;
  options.epochs = 100;
  options.patience = 10;
  Mlp model = Mlp::Train(xs, ys, vx, vy, 1, options);
  EXPECT_LT(model.Evaluate(vx, vy), 0.4);
}

TEST(MinMaxScaler, ScalesToUnitRange) {
  MinMaxScaler scaler;
  std::vector<std::vector<double>> rows = {{0.0, 10.0, 5.0}, {10.0, 20.0, 5.0}};
  ASSERT_TRUE(scaler.Fit(rows).ok());
  std::vector<double> mid = scaler.Transform({5.0, 15.0, 5.0});
  EXPECT_DOUBLE_EQ(mid[0], 0.5);
  EXPECT_DOUBLE_EQ(mid[1], 0.5);
  EXPECT_DOUBLE_EQ(mid[2], 0.0);  // constant feature maps to 0
  // Out-of-range values clamp.
  std::vector<double> out = scaler.Transform({-5.0, 100.0, 7.0});
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 1.0);
}

TEST(NormalizeRuntimes, MapsToUnitIntervalWithMinAtZero) {
  std::vector<double> norm = NormalizeRuntimes({100.0, 300.0, 200.0});
  EXPECT_DOUBLE_EQ(norm[0], 0.0);
  EXPECT_DOUBLE_EQ(norm[1], 1.0);
  EXPECT_DOUBLE_EQ(norm[2], 0.5);
  // Constant runtimes map to all zeros.
  std::vector<double> flat = NormalizeRuntimes({5.0, 5.0});
  EXPECT_DOUBLE_EQ(flat[0], 0.0);
  EXPECT_DOUBLE_EQ(flat[1], 0.0);
}

}  // namespace
}  // namespace qsteer
