// Learned configuration selection (§7): dataset collection, featurization,
// training, and the key qualitative property — the learned policy lands
// between the default and the best-known configuration.
#include "core/learned_steering.h"

#include <gtest/gtest.h>

#include "core/span.h"
#include "workload/generator.h"

namespace qsteer {
namespace {

class LearnedSteeringTest : public ::testing::Test {
 protected:
  LearnedSteeringTest()
      : workload_(Spec()),
        optimizer_(&workload_.catalog()),
        simulator_(&workload_.catalog()),
        learner_(&optimizer_, &simulator_, &workload_.catalog()) {}

  static WorkloadSpec Spec() {
    WorkloadSpec spec;
    spec.name = "L";
    spec.seed = 31337;
    spec.num_templates = 16;
    spec.num_stream_sets = 16;
    return spec;
  }

  /// Jobs of one template over multiple days/instances: the same job group.
  std::vector<Job> GroupJobs(int template_id, int days) {
    std::vector<Job> jobs;
    for (int day = 1; day <= days; ++day) {
      for (int inst = 0; inst < 2; ++inst) {
        jobs.push_back(workload_.MakeJob(template_id, day, inst));
      }
    }
    return jobs;
  }

  /// Candidate configurations derived from the first job's span (default
  /// first, as the dataset contract requires).
  std::vector<RuleConfig> Candidates(const Job& job, int k) {
    SpanResult span = ComputeJobSpan(optimizer_, job);
    ConfigSearchOptions options;
    options.max_configs = k * 3;
    options.seed = 4;
    std::vector<RuleConfig> configs = {RuleConfig::Default()};
    for (const RuleConfig& c : GenerateCandidateConfigs(span.span, options)) {
      if (static_cast<int>(configs.size()) >= k) break;
      configs.push_back(c);
    }
    return configs;
  }

  Workload workload_;
  Optimizer optimizer_;
  ExecutionSimulator simulator_;
  LearnedSteering learner_;
};

TEST_F(LearnedSteeringTest, DatasetShapesAreConsistent) {
  std::vector<Job> jobs = GroupJobs(0, 6);
  std::vector<RuleConfig> configs = Candidates(jobs[0], 5);
  GroupDataset dataset = learner_.CollectDataset(jobs, configs, /*seed=*/1);
  ASSERT_GT(dataset.size(), 0);
  EXPECT_EQ(dataset.k(), static_cast<int>(configs.size()));
  size_t width = dataset.features[0].size();
  for (int i = 0; i < dataset.size(); ++i) {
    EXPECT_EQ(dataset.features[static_cast<size_t>(i)].size(), width);
    EXPECT_EQ(dataset.runtimes[static_cast<size_t>(i)].size(),
              static_cast<size_t>(dataset.k()));
    // Default (slot 0) always executes.
    EXPECT_GT(dataset.runtimes[static_cast<size_t>(i)][0], 0.0);
  }
}

TEST_F(LearnedSteeringTest, LearnedPolicyBetweenDefaultAndBest) {
  // Gather samples across several templates' groups to get a mixed dataset
  // (like the paper's job groups with no always-winning configuration).
  std::vector<Job> jobs = GroupJobs(1, 14);
  std::vector<RuleConfig> configs = Candidates(jobs[0], 6);
  GroupDataset dataset = learner_.CollectDataset(jobs, configs, 2);
  ASSERT_GE(dataset.size(), 10);

  MlpOptions options;
  options.hidden = 32;
  options.epochs = 120;
  options.seed = 7;
  LearnedEvaluation eval = learner_.TrainAndEvaluate(dataset, options);
  ASSERT_FALSE(eval.test_choices.empty());

  // Best <= learned (the model cannot beat the oracle) and the oracle is no
  // worse than default.
  EXPECT_LE(eval.mean_best, eval.mean_learned + 1e-9);
  EXPECT_LE(eval.mean_best, eval.mean_default + 1e-9);
  for (const LearnedChoice& choice : eval.test_choices) {
    EXPECT_LE(choice.best_runtime, choice.chosen_runtime + 1e-9);
    EXPECT_LE(choice.best_runtime, choice.default_runtime + 1e-9);
    EXPECT_GE(choice.chosen_arm, 0);
    EXPECT_LT(choice.chosen_arm, dataset.k());
  }
}

TEST_F(LearnedSteeringTest, FeaturizerWidthsMatchContract) {
  JobFeaturizer featurizer(&workload_.catalog());
  Job job = workload_.MakeJob(2, 1);
  std::vector<double> job_features = featurizer.JobFeatures(job);
  EXPECT_EQ(static_cast<int>(job_features.size()), featurizer.JobFeatureWidth());

  Result<CompiledPlan> plan = optimizer_.Compile(job, RuleConfig::Default());
  ASSERT_TRUE(plan.ok());
  RuleDiff empty_diff;
  std::vector<double> config_features = featurizer.ConfigFeatures(plan.value(), empty_diff);
  EXPECT_EQ(static_cast<int>(config_features.size()), featurizer.ConfigFeatureWidth());

  std::vector<double> full = featurizer.Featurize(job, {&plan.value()}, {&empty_diff}, 4);
  EXPECT_EQ(static_cast<int>(full.size()),
            featurizer.JobFeatureWidth() + 4 * featurizer.ConfigFeatureWidth());
}

TEST_F(LearnedSteeringTest, FeaturesStableWithinTemplateVaryAcrossTemplates) {
  JobFeaturizer featurizer(&workload_.catalog());
  std::vector<double> a1 = featurizer.JobFeatures(workload_.MakeJob(3, 1));
  std::vector<double> a2 = featurizer.JobFeatures(workload_.MakeJob(3, 2));
  std::vector<double> b = featurizer.JobFeatures(workload_.MakeJob(4, 1));
  ASSERT_EQ(a1.size(), a2.size());
  // Template one-hot bins identical across days of one template.
  int diff_same = 0, diff_other = 0;
  for (size_t i = 0; i < a1.size(); ++i) {
    if (std::abs(a1[i] - a2[i]) > 1e-9) ++diff_same;
    if (std::abs(a1[i] - b[i]) > 1e-9) ++diff_other;
  }
  EXPECT_LT(diff_same, static_cast<int>(a1.size()) / 4);  // only sizes drift
  EXPECT_GT(diff_other, diff_same);
}

}  // namespace
}  // namespace qsteer
