#include "plan/job.h"

#include <gtest/gtest.h>

#include "workload/generator.h"

namespace qsteer {
namespace {

PlanNodePtr MakeScan(int stream, int set, std::vector<ColumnId> cols) {
  Operator op;
  op.kind = OpKind::kGet;
  op.stream_id = stream;
  op.stream_set_id = set;
  op.scan_columns = std::move(cols);
  return PlanNode::Make(std::move(op), {});
}

TEST(PlanNode, VisitPlanVisitsSharedNodesOnce) {
  PlanNodePtr scan = MakeScan(0, 0, {0, 1});
  Operator select;
  select.kind = OpKind::kSelect;
  select.predicate = Expr::True();
  PlanNodePtr a = PlanNode::Make(select, {scan});
  PlanNodePtr b = PlanNode::Make(select, {scan});
  Operator u;
  u.kind = OpKind::kUnionAll;
  PlanNodePtr root = PlanNode::Make(u, {a, b});
  int visits = 0, scans = 0;
  VisitPlan(root, [&](const PlanNode& node) {
    ++visits;
    if (node.op.kind == OpKind::kGet) ++scans;
  });
  // a and b are distinct nodes but reference one shared scan.
  EXPECT_EQ(scans, 1);
  EXPECT_EQ(visits, 4);
}

TEST(PlanNode, PlanHashDistinguishesStructure) {
  PlanNodePtr scan0 = MakeScan(0, 0, {0});
  PlanNodePtr scan1 = MakeScan(1, 0, {0});
  EXPECT_NE(PlanHash(scan0, false), PlanHash(scan1, false));
  // Template hash collapses stream variants of the same set.
  EXPECT_EQ(PlanHash(scan0, true), PlanHash(scan1, true));
  PlanNodePtr other_set = MakeScan(2, 1, {0});
  EXPECT_NE(PlanHash(scan0, true), PlanHash(other_set, true));
}

TEST(PlanNode, OutputColumnsPerOperator) {
  // Join merges children; semi join keeps the left side only.
  Operator join;
  join.kind = OpKind::kJoin;
  join.join_type = JoinType::kInner;
  std::vector<std::vector<ColumnId>> children = {{0, 1}, {2, 3}};
  EXPECT_EQ(OutputColumns(join, children), (std::vector<ColumnId>{0, 1, 2, 3}));
  join.join_type = JoinType::kLeftSemi;
  EXPECT_EQ(OutputColumns(join, children), (std::vector<ColumnId>{0, 1}));

  Operator gb;
  gb.kind = OpKind::kGroupBy;
  gb.group_keys = {1};
  gb.aggs = {AggExpr{AggFunc::kSum, 0, 9}};
  EXPECT_EQ(OutputColumns(gb, children), (std::vector<ColumnId>{1, 9}));

  Operator select;
  select.kind = OpKind::kSelect;
  EXPECT_EQ(OutputColumns(select, children), (std::vector<ColumnId>{0, 1}));
}

TEST(ColumnUniverse, BaseColumnsDedupDerivedDoNot) {
  ColumnUniverse universe;
  ColumnId a = universe.GetOrAddBaseColumn(0, 0, "key");
  ColumnId b = universe.GetOrAddBaseColumn(0, 0, "key");
  ColumnId c = universe.GetOrAddBaseColumn(0, 1, "uid");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  ColumnId d1 = universe.AddDerivedColumn("agg", 100);
  ColumnId d2 = universe.AddDerivedColumn("agg", 100);
  EXPECT_NE(d1, d2);
  EXPECT_TRUE(universe.info(d1).derived);
  EXPECT_FALSE(universe.info(a).derived);
}

TEST(Workload, RecurringJobsShareTemplateHash) {
  WorkloadSpec spec;
  spec.name = "T";
  spec.seed = 9;
  spec.num_templates = 20;
  spec.num_stream_sets = 16;
  Workload workload(spec);
  for (int t = 0; t < 20; ++t) {
    Job d1 = workload.MakeJob(t, 1);
    Job d2 = workload.MakeJob(t, 5);
    EXPECT_EQ(d1.TemplateHash(), d2.TemplateHash()) << t;
    EXPECT_EQ(d1.template_index, t);
  }
}

TEST(Workload, DifferentTemplatesMostlyDistinctHashes) {
  WorkloadSpec spec;
  spec.name = "T";
  spec.seed = 9;
  spec.num_templates = 40;
  spec.num_stream_sets = 24;
  Workload workload(spec);
  std::set<uint64_t> hashes;
  for (int t = 0; t < 40; ++t) hashes.insert(workload.MakeJob(t, 1).TemplateHash());
  EXPECT_GE(hashes.size(), 36u);
}

TEST(Workload, DailyInputsRotate) {
  WorkloadSpec spec;
  spec.name = "T";
  spec.seed = 9;
  spec.num_templates = 20;
  spec.num_stream_sets = 16;
  Workload workload(spec);
  int rotated = 0;
  for (int t = 0; t < 20; ++t) {
    Job d1 = workload.MakeJob(t, 1);
    Job d2 = workload.MakeJob(t, 2);
    if (d1.InputStreams() != d2.InputStreams()) ++rotated;
  }
  // Templates over multi-shard log sets read different shards on different
  // days.
  EXPECT_GT(rotated, 5);
}

TEST(Workload, JobsForDayMatchesInstanceCounts) {
  WorkloadSpec spec;
  spec.name = "T";
  spec.seed = 11;
  spec.num_templates = 30;
  spec.num_stream_sets = 16;
  Workload workload(spec);
  std::vector<Job> jobs = workload.JobsForDay(4);
  int expected = 0;
  for (int t = 0; t < 30; ++t) expected += workload.InstancesOnDay(t, 4);
  EXPECT_EQ(static_cast<int>(jobs.size()), expected);
  EXPECT_GT(expected, 20);  // on average ~2 jobs per template
  for (const Job& job : jobs) {
    EXPECT_EQ(job.day, 4);
    EXPECT_GE(job.NumOperators(), 3);
  }
}

TEST(Workload, PlanPrintingMentionsOperators) {
  WorkloadSpec spec;
  spec.name = "T";
  spec.seed = 9;
  spec.num_templates = 5;
  spec.num_stream_sets = 16;
  Workload workload(spec);
  Job job = workload.MakeJob(0, 1);
  std::string text = PlanToString(job.root);
  EXPECT_NE(text.find("Output"), std::string::npos);
  EXPECT_NE(text.find("Get"), std::string::npos);
}

}  // namespace
}  // namespace qsteer
