// End-to-end smoke tests: generated workload jobs compile under the default
// rule configuration, simulate, and produce sane signatures and costs.
#include <gtest/gtest.h>

#include "exec/simulator.h"
#include "optimizer/optimizer.h"
#include "workload/generator.h"

namespace qsteer {
namespace {

class OptimizerSmokeTest : public ::testing::Test {
 protected:
  OptimizerSmokeTest() : workload_(SmallSpec()) {}

  static WorkloadSpec SmallSpec() {
    WorkloadSpec spec;
    spec.name = "T";
    spec.seed = 42;
    spec.num_templates = 40;
    spec.num_stream_sets = 24;
    spec.log_set_fraction = 0.5;
    return spec;
  }

  Workload workload_;
};

TEST_F(OptimizerSmokeTest, AllTemplatesCompileUnderDefaultConfig) {
  Optimizer optimizer(&workload_.catalog());
  RuleConfig config = RuleConfig::Default();
  int compiled = 0;
  for (int t = 0; t < workload_.num_templates(); ++t) {
    Job job = workload_.MakeJob(t, /*day=*/3);
    Result<CompiledPlan> plan = optimizer.Compile(job, config);
    ASSERT_TRUE(plan.ok()) << "template " << t << ": " << plan.status().ToString();
    EXPECT_GT(plan.value().est_cost, 0.0) << "template " << t;
    EXPECT_NE(plan.value().root, nullptr);
    // Signature must contain at least the scan + output glue.
    EXPECT_TRUE(plan.value().signature.Test(rules::kGetToRange));
    EXPECT_TRUE(plan.value().signature.Test(rules::kBuildOutput));
    ++compiled;
  }
  EXPECT_EQ(compiled, workload_.num_templates());
}

TEST_F(OptimizerSmokeTest, SignatureSizeIsSmallRelativeToCatalog) {
  // Paper Fig. 2c: a single job uses 10-20 rules out of 256.
  Optimizer optimizer(&workload_.catalog());
  RuleConfig config = RuleConfig::Default();
  for (int t = 0; t < 10; ++t) {
    Job job = workload_.MakeJob(t, 1);
    Result<CompiledPlan> plan = optimizer.Compile(job, config);
    ASSERT_TRUE(plan.ok());
    int used = plan.value().signature.Count();
    EXPECT_GE(used, 4) << "template " << t;
    EXPECT_LE(used, 60) << "template " << t;
  }
}

TEST_F(OptimizerSmokeTest, CompilationIsDeterministic) {
  Optimizer optimizer(&workload_.catalog());
  RuleConfig config = RuleConfig::Default();
  Job job1 = workload_.MakeJob(7, 2);
  Job job2 = workload_.MakeJob(7, 2);
  Result<CompiledPlan> a = optimizer.Compile(job1, config);
  Result<CompiledPlan> b = optimizer.Compile(job2, config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a.value().est_cost, b.value().est_cost);
  EXPECT_EQ(a.value().signature, b.value().signature);
  EXPECT_EQ(PlanHash(a.value().root, false), PlanHash(b.value().root, false));
}

TEST_F(OptimizerSmokeTest, SimulatorProducesPositiveMetrics) {
  Optimizer optimizer(&workload_.catalog());
  ExecutionSimulator simulator(&workload_.catalog());
  RuleConfig config = RuleConfig::Default();
  for (int t = 0; t < 10; ++t) {
    Job job = workload_.MakeJob(t, 1);
    Result<CompiledPlan> plan = optimizer.Compile(job, config);
    ASSERT_TRUE(plan.ok());
    ExecMetrics metrics = simulator.Execute(job, plan.value().root);
    EXPECT_GT(metrics.runtime, 0.0) << "template " << t;
    EXPECT_GT(metrics.cpu_time, 0.0) << "template " << t;
    EXPECT_GE(metrics.io_time, 0.0) << "template " << t;
  }
}

TEST_F(OptimizerSmokeTest, ReexecutionVarianceMatchesNoiseModel) {
  Optimizer optimizer(&workload_.catalog());
  ExecutionSimulator simulator(&workload_.catalog());
  Job job = workload_.MakeJob(1, 1);
  Result<CompiledPlan> plan = optimizer.Compile(job, RuleConfig::Default());
  ASSERT_TRUE(plan.ok());
  ExecMetrics a = simulator.Execute(job, plan.value().root, /*run_nonce=*/1);
  ExecMetrics b = simulator.Execute(job, plan.value().root, /*run_nonce=*/2);
  ExecMetrics a_again = simulator.Execute(job, plan.value().root, /*run_nonce=*/1);
  EXPECT_NE(a.runtime, b.runtime);                 // noise across runs
  EXPECT_DOUBLE_EQ(a.runtime, a_again.runtime);    // deterministic per nonce
  EXPECT_LT(std::abs(a.runtime - b.runtime) / a.runtime, 0.6);
}

TEST_F(OptimizerSmokeTest, DisablingAllJoinImplsFailsJobsWithJoins) {
  Optimizer optimizer(&workload_.catalog());
  RuleConfig config = RuleConfig::Default();
  for (RuleId id = kImplementationBegin; id < kNumRules; ++id) config.Disable(id);
  // With every implementation rule disabled, jobs with joins/aggregations
  // cannot produce complete plans (paper: "many configurations do not
  // compile due to implicit dependencies").
  int failures = 0;
  for (int t = 0; t < workload_.num_templates(); ++t) {
    Job job = workload_.MakeJob(t, 1);
    Result<CompiledPlan> plan = optimizer.Compile(job, config);
    if (!plan.ok()) {
      EXPECT_EQ(plan.status().code(), StatusCode::kCompilationFailed);
      ++failures;
    }
  }
  EXPECT_GT(failures, workload_.num_templates() / 2);
}

TEST_F(OptimizerSmokeTest, JobTemplateHashStableAcrossDays) {
  Job day1 = workload_.MakeJob(5, 1);
  Job day2 = workload_.MakeJob(5, 2);
  EXPECT_EQ(day1.TemplateHash(), day2.TemplateHash());
  // Different templates hash differently.
  Job other = workload_.MakeJob(6, 1);
  EXPECT_NE(day1.TemplateHash(), other.TemplateHash());
}

}  // namespace
}  // namespace qsteer
