// Tests for the §8 future-work extensions: feedback-guided search,
// empirical rule-independence discovery, the steering recommender, and
// per-metric learned models.
#include <gtest/gtest.h>

#include "core/feedback_search.h"
#include "core/independence.h"
#include "core/learned_steering.h"
#include "core/recommender.h"
#include "core/span.h"
#include "workload/generator.h"

namespace qsteer {
namespace {

class ExtensionsTest : public ::testing::Test {
 protected:
  ExtensionsTest()
      : workload_(Spec()),
        optimizer_(&workload_.catalog()),
        simulator_(&workload_.catalog()) {}

  static WorkloadSpec Spec() {
    WorkloadSpec spec;
    spec.name = "F";
    spec.seed = 808;
    spec.num_templates = 24;
    spec.num_stream_sets = 18;
    return spec;
  }

  Workload workload_;
  Optimizer optimizer_;
  ExecutionSimulator simulator_;
};

TEST_F(ExtensionsTest, FeedbackSearchNeverWorseThanDefaultAndMonotone) {
  FeedbackSearchOptions options;
  options.rounds = 3;
  options.configs_per_round = 4;
  FeedbackSearch search(&optimizer_, &simulator_, options);
  int improved = 0;
  for (int t = 0; t < 8; ++t) {
    FeedbackSearchResult result = search.Run(workload_.MakeJob(t, 1));
    ASSERT_GT(result.default_runtime, 0.0);
    // Best runtime tracks the minimum: monotone non-increasing per round.
    for (size_t r = 1; r < result.best_after_round.size(); ++r) {
      EXPECT_LE(result.best_after_round[r], result.best_after_round[r - 1] + 1e-9);
    }
    EXPECT_LE(result.best_runtime, result.default_runtime + 1e-9);
    EXPECT_LE(result.executions,
              options.rounds * options.configs_per_round);
    if (result.BestImprovementPct() < -5.0) ++improved;
  }
  EXPECT_GE(improved, 3);
}

TEST_F(ExtensionsTest, FeedbackSearchIsDeterministic) {
  FeedbackSearch search(&optimizer_, &simulator_, {});
  FeedbackSearchResult a = search.Run(workload_.MakeJob(2, 1));
  FeedbackSearchResult b = search.Run(workload_.MakeJob(2, 1));
  EXPECT_DOUBLE_EQ(a.best_runtime, b.best_runtime);
  EXPECT_EQ(a.executions, b.executions);
  EXPECT_EQ(a.best_config, b.best_config);
}

TEST_F(ExtensionsTest, IndependenceGroupsPartitionTheSpan) {
  for (int t = 0; t < 6; ++t) {
    Job job = workload_.MakeJob(t, 1);
    SpanResult span = ComputeJobSpan(optimizer_, job);
    IndependenceResult independence =
        DiscoverIndependentGroups(optimizer_, job, span.span);
    // Groups partition the span exactly.
    BitVector256 covered;
    int total = 0;
    for (const auto& group : independence.groups) {
      for (RuleId id : group) {
        EXPECT_TRUE(span.span.Test(id));
        EXPECT_FALSE(covered.Test(id)) << "rule in two groups";
        covered.Set(id);
        ++total;
      }
    }
    EXPECT_EQ(total, span.span.Count());
    // The grouped space is never larger than the naive one.
    EXPECT_LE(independence.log2_grouped, independence.log2_naive + 1e-9);
    EXPECT_EQ(independence.compiles_used, span.span.Count() + 1);
  }
}

TEST_F(ExtensionsTest, IndependenceFindsMultipleGroupsSomewhere) {
  int multi_group_jobs = 0;
  for (int t = 0; t < 12; ++t) {
    Job job = workload_.MakeJob(t, 1);
    SpanResult span = ComputeJobSpan(optimizer_, job);
    IndependenceResult independence =
        DiscoverIndependentGroups(optimizer_, job, span.span);
    if (independence.groups.size() >= 2) ++multi_group_jobs;
  }
  // At least some jobs decompose into independent rule groups (e.g., a
  // union-implementation choice independent of a join-side pushdown).
  EXPECT_GE(multi_group_jobs, 2);
}

TEST_F(ExtensionsTest, GroupedConfigsOnlyToggleSpanRules) {
  Job job = workload_.MakeJob(1, 1);
  SpanResult span = ComputeJobSpan(optimizer_, job);
  IndependenceResult independence = DiscoverIndependentGroups(optimizer_, job, span.span);
  ConfigSearchOptions options;
  options.max_configs = 40;
  options.seed = 3;
  std::vector<RuleConfig> configs = GenerateGroupedConfigs(independence, options);
  EXPECT_GT(configs.size(), 5u);
  for (const RuleConfig& config : configs) {
    for (RuleId id = 0; id < kNumRules; ++id) {
      if (!config.IsEnabled(id)) {
        EXPECT_TRUE(span.span.Test(id)) << id;
      }
    }
  }
}

TEST_F(ExtensionsTest, RecommenderLearnsRecommendsAndRetires) {
  PipelineOptions options;
  options.max_candidate_configs = 60;
  SteeringPipeline pipeline(&optimizer_, &simulator_, options);
  // Pre-guardrail behavior: adopt immediately (no validation gate) and
  // retire on the first breaker trip (two consecutive regressions). The
  // full gate/breaker state machine is covered by recommender_test.
  RecommenderOptions rec_options;
  rec_options.validation_runs = 0;
  rec_options.breaker_open_after = 2;
  rec_options.max_rollbacks = 1;
  SteeringRecommender recommender(rec_options);

  // Offline phase over a handful of day-1 jobs.
  std::vector<JobAnalysis> analyses;
  for (int t = 0; t < 10; ++t) analyses.push_back(pipeline.AnalyzeJob(workload_.MakeJob(t, 1)));
  int adopted = 0;
  for (const JobAnalysis& analysis : analyses) {
    if (recommender.LearnFromAnalysis(analysis)) ++adopted;
  }
  ASSERT_GT(adopted, 0);
  EXPECT_EQ(recommender.num_groups(), adopted);

  // Online: a recurring job from an adopted group gets a non-default
  // recommendation; an unknown signature gets the default.
  const JobAnalysis* learned_case = nullptr;
  for (const JobAnalysis& analysis : analyses) {
    if (analysis.BestRuntimeChangePct() < -10.0) learned_case = &analysis;
  }
  ASSERT_NE(learned_case, nullptr);
  auto rec = recommender.Recommend(learned_case->default_plan.signature);
  EXPECT_FALSE(rec.is_default);
  EXPECT_LT(rec.expected_improvement_pct, -10.0);
  EXPECT_GE(rec.support, 1);
  auto unknown = recommender.Recommend(BitVector256::FromIndices({9}));
  EXPECT_TRUE(unknown.is_default);

  // Guardrail: repeated regressions retire the recommendation.
  recommender.ObserveOutcome(learned_case->default_plan.signature, +20.0);
  EXPECT_FALSE(recommender.Recommend(learned_case->default_plan.signature).is_default);
  recommender.ObserveOutcome(learned_case->default_plan.signature, +20.0);
  EXPECT_TRUE(recommender.Recommend(learned_case->default_plan.signature).is_default);
  EXPECT_EQ(recommender.num_retired(), 1);
  // Improvements never retire.
  recommender.ObserveOutcome(learned_case->default_plan.signature, -30.0);
  EXPECT_EQ(recommender.num_retired(), 1);
}

TEST_F(ExtensionsTest, RecommenderStoreSurvivesSaveLoad) {
  PipelineOptions options;
  options.max_candidate_configs = 60;
  SteeringPipeline pipeline(&optimizer_, &simulator_, options);
  SteeringRecommender recommender;
  std::vector<RuleSignature> learned_signatures;
  for (int t = 0; t < 8; ++t) {
    JobAnalysis analysis = pipeline.AnalyzeJob(workload_.MakeJob(t, 1));
    if (recommender.LearnFromAnalysis(analysis)) {
      learned_signatures.push_back(analysis.default_plan.signature);
    }
  }
  ASSERT_FALSE(learned_signatures.empty());
  // Retire one entry so the flag round-trips too.
  recommender.ObserveOutcome(learned_signatures[0], 50.0);
  recommender.ObserveOutcome(learned_signatures[0], 50.0);

  std::string path = ::testing::TempDir() + "/qsteer_store.txt";
  ASSERT_TRUE(recommender.SaveToFile(path).ok());

  SteeringRecommender restored;
  ASSERT_TRUE(restored.LoadFromFile(path).ok());
  EXPECT_EQ(restored.num_groups(), recommender.num_groups());
  EXPECT_EQ(restored.num_retired(), recommender.num_retired());
  for (const RuleSignature& signature : learned_signatures) {
    auto before = recommender.Recommend(signature);
    auto after = restored.Recommend(signature);
    EXPECT_EQ(before.is_default, after.is_default);
    if (!before.is_default) {
      EXPECT_EQ(before.config, after.config);
      EXPECT_DOUBLE_EQ(before.expected_improvement_pct, after.expected_improvement_pct);
      EXPECT_EQ(before.support, after.support);
    }
  }
  EXPECT_FALSE(restored.LoadFromFile("/nonexistent/qsteer").ok());
}

TEST_F(ExtensionsTest, PerMetricModelsOptimizeTheirTarget) {
  LearnedSteering learner(&optimizer_, &simulator_, &workload_.catalog());
  std::vector<Job> jobs;
  for (int day = 1; day <= 10; ++day) {
    for (int i = 0; i < 2; ++i) jobs.push_back(workload_.MakeJob(3, day, i));
  }
  SpanResult span = ComputeJobSpan(optimizer_, jobs.front());
  ConfigSearchOptions search;
  search.max_configs = 20;
  search.seed = 4;
  std::vector<RuleConfig> configs = {RuleConfig::Default()};
  for (const RuleConfig& c : GenerateCandidateConfigs(span.span, search)) {
    if (configs.size() >= 6) break;
    configs.push_back(c);
  }
  GroupDataset dataset = learner.CollectDataset(jobs, configs, 5);
  ASSERT_GE(dataset.size(), 10);
  ASSERT_EQ(dataset.cpu_times.size(), dataset.runtimes.size());
  ASSERT_EQ(dataset.io_times.size(), dataset.runtimes.size());

  MlpOptions options;
  options.hidden = 32;
  options.epochs = 100;
  for (Metric metric : {Metric::kRuntime, Metric::kCpuTime, Metric::kIoTime}) {
    LearnedEvaluation eval = learner.TrainAndEvaluate(dataset, options, 0.4, 0.2, metric);
    ASSERT_FALSE(eval.test_choices.empty()) << MetricName(metric);
    // The oracle bound holds in the target metric's units.
    EXPECT_LE(eval.mean_best, eval.mean_learned + 1e-9) << MetricName(metric);
    EXPECT_LE(eval.mean_best, eval.mean_default + 1e-9) << MetricName(metric);
  }
}

}  // namespace
}  // namespace qsteer
