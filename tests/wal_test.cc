// Unit tests of the durability primitives under the steering service:
// CRC32, atomic + checksummed file I/O, the write-ahead log (roundtrip,
// torn-tail truncation, corrupt-record truncation, snapshot reset), and
// the bounded MPMC request queue.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/bounded_queue.h"
#include "common/crc32.h"
#include "common/file_io.h"
#include "common/wal.h"

namespace qsteer {
namespace {

class TempDir {
 public:
  TempDir() {
    dir_ = std::filesystem::temp_directory_path() /
           ("qsteer_wal_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) const { return (dir_ / name).string(); }

 private:
  static inline int counter_ = 0;
  std::filesystem::path dir_;
};

std::string RawRead(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void RawWrite(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

// ---------------------------------------------------------------- crc32

TEST(Crc32Test, KnownVector) {
  // The IEEE 802.3 check value for "123456789".
  EXPECT_EQ(Crc32("123456789"), 0xcbf43926u);
}

TEST(Crc32Test, EmptyAndIncremental) {
  EXPECT_EQ(Crc32(""), 0u);
  std::string data = "the quick brown fox";
  uint32_t one_shot = Crc32(data);
  uint32_t incremental = Crc32Update(0, data.data(), 10);
  incremental = Crc32Update(incremental, data.data() + 10, data.size() - 10);
  EXPECT_EQ(one_shot, incremental);
  EXPECT_NE(Crc32("the quick brown fox!"), one_shot);
}

// -------------------------------------------------------------- file_io

TEST(FileIoTest, ReadMissingFileIsNotFound) {
  TempDir dir;
  Result<std::string> result = ReadFileToString(dir.Path("absent"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(FileIoTest, AtomicWriteRoundTripsAndReplacesWholly) {
  TempDir dir;
  std::string path = dir.Path("state.txt");
  ASSERT_TRUE(AtomicWriteFile(path, "first version", /*sync=*/false).ok());
  EXPECT_EQ(ReadFileToString(path).value(), "first version");
  ASSERT_TRUE(AtomicWriteFile(path, "v2", /*sync=*/false).ok());
  EXPECT_EQ(ReadFileToString(path).value(), "v2");
  // No temp file left behind.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(FileIoTest, ChecksummedRoundTrip) {
  TempDir dir;
  std::string path = dir.Path("store.qrs");
  std::string content = "line one\nline two\n";
  ASSERT_TRUE(WriteFileChecksummed(path, content, /*sync=*/false).ok());
  bool had_checksum = false;
  Result<std::string> loaded = ReadFileChecksummed(path, &had_checksum);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(had_checksum);
  EXPECT_EQ(loaded.value(), content);
}

TEST(FileIoTest, CorruptChecksummedFileIsRejected) {
  TempDir dir;
  std::string path = dir.Path("store.qrs");
  ASSERT_TRUE(WriteFileChecksummed(path, "important state\n", /*sync=*/false).ok());
  std::string raw = RawRead(path);
  raw[3] ^= 0x20;  // flip one content bit
  RawWrite(path, raw);
  Result<std::string> loaded = ReadFileChecksummed(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(FileIoTest, TruncatedChecksummedFileIsRejected) {
  TempDir dir;
  std::string path = dir.Path("store.qrs");
  ASSERT_TRUE(WriteFileChecksummed(path, "0123456789abcdef\nmore\n", /*sync=*/false).ok());
  std::string raw = RawRead(path);
  // Simulate a torn non-atomic rewrite that kept the footer but lost middle
  // content (the checksum no longer matches).
  RawWrite(path, raw.substr(0, 4) + raw.substr(10));
  EXPECT_FALSE(ReadFileChecksummed(path).ok());
}

TEST(FileIoTest, FileWithoutFooterLoadsUnchecked) {
  TempDir dir;
  std::string path = dir.Path("legacy.qrs");
  RawWrite(path, "legacy content, no footer\n");
  bool had_checksum = true;
  Result<std::string> loaded = ReadFileChecksummed(path, &had_checksum);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(had_checksum);
  EXPECT_EQ(loaded.value(), "legacy content, no footer\n");
}

// ------------------------------------------------------------------ wal

std::vector<std::pair<uint64_t, std::string>> Replay(const std::string& path,
                                                     WriteAheadLog::RecoveryInfo* info) {
  std::vector<std::pair<uint64_t, std::string>> records;
  Result<WriteAheadLog::RecoveryInfo> result =
      WriteAheadLog::Recover(path, [&](uint64_t seq, std::string_view payload) {
        records.emplace_back(seq, std::string(payload));
        return Status::OK();
      });
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (info != nullptr && result.ok()) *info = result.value();
  return records;
}

TEST(WalTest, AppendAndRecoverRoundTrip) {
  TempDir dir;
  std::string path = dir.Path("wal.log");
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path, /*sync_each_append=*/false).ok());
    ASSERT_TRUE(wal.Append(1, "first").ok());
    ASSERT_TRUE(wal.Append(2, "").ok());  // empty payloads are legal
    ASSERT_TRUE(wal.Append(3, std::string(1000, 'x')).ok());
    EXPECT_EQ(wal.appended_records(), 3);
  }
  WriteAheadLog::RecoveryInfo info;
  auto records = Replay(path, &info);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], (std::pair<uint64_t, std::string>{1, "first"}));
  EXPECT_EQ(records[1].second, "");
  EXPECT_EQ(records[2].second, std::string(1000, 'x'));
  EXPECT_EQ(info.last_seq, 3u);
  EXPECT_EQ(info.truncated_bytes, 0);
}

TEST(WalTest, MissingFileIsFreshLog) {
  TempDir dir;
  WriteAheadLog::RecoveryInfo info;
  auto records = Replay(dir.Path("absent.log"), &info);
  EXPECT_TRUE(records.empty());
  EXPECT_EQ(info.records, 0);
}

TEST(WalTest, TornTailIsTruncatedAndStaysTruncated) {
  TempDir dir;
  std::string path = dir.Path("wal.log");
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path, false).ok());
    ASSERT_TRUE(wal.Append(1, "intact one").ok());
    ASSERT_TRUE(wal.Append(2, "intact two").ok());
  }
  // Crash mid-append: half a header plus garbage.
  std::string raw = RawRead(path);
  std::string torn = raw + std::string("\x07\x00\x00\x00garbage", 11);
  RawWrite(path, torn);

  WriteAheadLog::RecoveryInfo info;
  auto records = Replay(path, &info);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(info.truncated_bytes, 11);
  // The truncation is persisted: the file is back to the intact prefix and
  // a second recovery finds nothing to remove.
  EXPECT_EQ(RawRead(path), raw);
  WriteAheadLog::RecoveryInfo again;
  Replay(path, &again);
  EXPECT_EQ(again.truncated_bytes, 0);
}

TEST(WalTest, CorruptRecordTruncatesFromThatPoint) {
  TempDir dir;
  std::string path = dir.Path("wal.log");
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path, false).ok());
    ASSERT_TRUE(wal.Append(1, "record aaaaaaaa").ok());
    ASSERT_TRUE(wal.Append(2, "record bbbbbbbb").ok());
    ASSERT_TRUE(wal.Append(3, "record cccccccc").ok());
  }
  std::string raw = RawRead(path);
  size_t record_size = raw.size() / 3;
  // Flip a payload bit inside the second record: records 2 and 3 are lost
  // (replay keeps the longest intact *prefix*), record 1 survives.
  std::string corrupt = raw;
  corrupt[record_size + 20] ^= 0x01;
  RawWrite(path, corrupt);

  WriteAheadLog::RecoveryInfo info;
  auto records = Replay(path, &info);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].first, 1u);
  EXPECT_EQ(info.truncated_bytes, static_cast<int64_t>(raw.size() - record_size));
}

TEST(WalTest, AppendAfterRecoveryContinuesTheLog) {
  TempDir dir;
  std::string path = dir.Path("wal.log");
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path, false).ok());
    ASSERT_TRUE(wal.Append(1, "one").ok());
  }
  RawWrite(path, RawRead(path) + "torn!");
  Replay(path, nullptr);
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path, false).ok());
    ASSERT_TRUE(wal.Append(2, "two").ok());
  }
  auto records = Replay(path, nullptr);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].second, "two");
}

TEST(WalTest, ResetEmptiesTheLog) {
  TempDir dir;
  std::string path = dir.Path("wal.log");
  WriteAheadLog wal;
  ASSERT_TRUE(wal.Open(path, false).ok());
  ASSERT_TRUE(wal.Append(1, "pre-snapshot").ok());
  ASSERT_TRUE(wal.Reset().ok());
  ASSERT_TRUE(wal.Append(2, "post-snapshot").ok());
  wal.Close();
  auto records = Replay(path, nullptr);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].first, 2u);
}

TEST(WalTest, ImplausibleLengthFieldIsTreatedAsTornTail) {
  TempDir dir;
  std::string path = dir.Path("wal.log");
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path, false).ok());
    ASSERT_TRUE(wal.Append(1, "ok").ok());
  }
  // A "record" whose length field says 256 MiB: corruption, not a record.
  std::string huge_header(16, '\0');
  huge_header[0] = '\0';
  huge_header[3] = 0x10;  // payload_size = 0x10000000
  RawWrite(path, RawRead(path) + huge_header);
  WriteAheadLog::RecoveryInfo info;
  auto records = Replay(path, &info);
  EXPECT_EQ(records.size(), 1u);
  EXPECT_EQ(info.truncated_bytes, 16);
}

// -------------------------------------------------------- bounded queue

TEST(BoundedQueueTest, TryPushRespectsCapacity) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // full: shed, don't block
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.TryPush(3));
  EXPECT_EQ(queue.size(), 2);
  EXPECT_EQ(queue.high_water(), 2);
}

TEST(BoundedQueueTest, CloseDrainsThenStops) {
  BoundedQueue<int> queue(8);
  queue.TryPush(1);
  queue.TryPush(2);
  queue.Close();
  EXPECT_FALSE(queue.TryPush(3));
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(queue.Pop(&out));  // closed and empty
}

TEST(BoundedQueueTest, CloseAndDrainReturnsQueuedItems) {
  BoundedQueue<int> queue(8);
  queue.TryPush(7);
  queue.TryPush(8);
  std::vector<int> drained = queue.CloseAndDrain();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0], 7);
  int out = 0;
  EXPECT_FALSE(queue.Pop(&out));
}

TEST(BoundedQueueTest, ConcurrentProducersAndConsumersLoseNothing) {
  BoundedQueue<int> queue(64);
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::atomic<int> consumed{0};
  std::atomic<long long> sum{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      int item = 0;
      while (queue.Pop(&item)) {
        sum.fetch_add(item);
        consumed.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  std::atomic<int> produced{0};
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int value = p * kPerProducer + i + 1;
        while (!queue.TryPush(value)) std::this_thread::yield();
        produced.fetch_add(1);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  queue.Close();
  for (std::thread& t : consumers) t.join();
  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
  long long n = kProducers * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n + 1) / 2);
}

}  // namespace
}  // namespace qsteer
