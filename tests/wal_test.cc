// Unit tests of the durability primitives under the steering service:
// CRC32, atomic + checksummed file I/O, the write-ahead log (roundtrip,
// torn-tail truncation, corrupt-record truncation, snapshot reset), and
// the bounded MPMC request queue.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/bounded_queue.h"
#include "common/crc32.h"
#include "common/file_io.h"
#include "common/wal.h"
#include "service/durable_store.h"

namespace qsteer {
namespace {

class TempDir {
 public:
  TempDir() {
    dir_ = std::filesystem::temp_directory_path() /
           ("qsteer_wal_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) const { return (dir_ / name).string(); }

 private:
  static inline int counter_ = 0;
  std::filesystem::path dir_;
};

// qsteer-lint: allow(crc-before-trust) test helper reads bytes to corrupt or inspect them; verification is the code under test
std::string RawRead(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void RawWrite(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

// ---------------------------------------------------------------- crc32

TEST(Crc32Test, KnownVector) {
  // The IEEE 802.3 check value for "123456789".
  EXPECT_EQ(Crc32("123456789"), 0xcbf43926u);
}

TEST(Crc32Test, EmptyAndIncremental) {
  EXPECT_EQ(Crc32(""), 0u);
  std::string data = "the quick brown fox";
  uint32_t one_shot = Crc32(data);
  uint32_t incremental = Crc32Update(0, data.data(), 10);
  incremental = Crc32Update(incremental, data.data() + 10, data.size() - 10);
  EXPECT_EQ(one_shot, incremental);
  EXPECT_NE(Crc32("the quick brown fox!"), one_shot);
}

// -------------------------------------------------------------- file_io

TEST(FileIoTest, ReadMissingFileIsNotFound) {
  TempDir dir;
  Result<std::string> result = ReadFileToString(dir.Path("absent"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(FileIoTest, AtomicWriteRoundTripsAndReplacesWholly) {
  TempDir dir;
  std::string path = dir.Path("state.txt");
  ASSERT_TRUE(AtomicWriteFile(path, "first version", /*sync=*/false).ok());
  EXPECT_EQ(ReadFileToString(path).value(), "first version");
  ASSERT_TRUE(AtomicWriteFile(path, "v2", /*sync=*/false).ok());
  EXPECT_EQ(ReadFileToString(path).value(), "v2");
  // No temp file left behind.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(FileIoTest, ChecksummedRoundTrip) {
  TempDir dir;
  std::string path = dir.Path("store.qrs");
  std::string content = "line one\nline two\n";
  ASSERT_TRUE(WriteFileChecksummed(path, content, /*sync=*/false).ok());
  bool had_checksum = false;
  Result<std::string> loaded = ReadFileChecksummed(path, &had_checksum);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(had_checksum);
  EXPECT_EQ(loaded.value(), content);
}

TEST(FileIoTest, CorruptChecksummedFileIsRejected) {
  TempDir dir;
  std::string path = dir.Path("store.qrs");
  ASSERT_TRUE(WriteFileChecksummed(path, "important state\n", /*sync=*/false).ok());
  std::string raw = RawRead(path);
  raw[3] ^= 0x20;  // flip one content bit
  RawWrite(path, raw);
  Result<std::string> loaded = ReadFileChecksummed(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(FileIoTest, TruncatedChecksummedFileIsRejected) {
  TempDir dir;
  std::string path = dir.Path("store.qrs");
  ASSERT_TRUE(WriteFileChecksummed(path, "0123456789abcdef\nmore\n", /*sync=*/false).ok());
  std::string raw = RawRead(path);
  // Simulate a torn non-atomic rewrite that kept the footer but lost middle
  // content (the checksum no longer matches).
  RawWrite(path, raw.substr(0, 4) + raw.substr(10));
  EXPECT_FALSE(ReadFileChecksummed(path).ok());
}

TEST(FileIoTest, FileWithoutFooterLoadsUnchecked) {
  TempDir dir;
  std::string path = dir.Path("legacy.qrs");
  RawWrite(path, "legacy content, no footer\n");
  bool had_checksum = true;
  Result<std::string> loaded = ReadFileChecksummed(path, &had_checksum);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(had_checksum);
  EXPECT_EQ(loaded.value(), "legacy content, no footer\n");
}

// ------------------------------------------------------------------ wal

std::vector<std::pair<uint64_t, std::string>> Replay(const std::string& path,
                                                     WriteAheadLog::RecoveryInfo* info) {
  std::vector<std::pair<uint64_t, std::string>> records;
  Result<WriteAheadLog::RecoveryInfo> result =
      WriteAheadLog::Recover(path, [&](uint64_t seq, std::string_view payload) {
        records.emplace_back(seq, std::string(payload));
        return Status::OK();
      });
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (info != nullptr && result.ok()) *info = result.value();
  return records;
}

TEST(WalTest, AppendAndRecoverRoundTrip) {
  TempDir dir;
  std::string path = dir.Path("wal.log");
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path, /*sync_each_append=*/false).ok());
    ASSERT_TRUE(wal.Append(1, "first").ok());
    ASSERT_TRUE(wal.Append(2, "").ok());  // empty payloads are legal
    ASSERT_TRUE(wal.Append(3, std::string(1000, 'x')).ok());
    EXPECT_EQ(wal.appended_records(), 3);
  }
  WriteAheadLog::RecoveryInfo info;
  auto records = Replay(path, &info);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], (std::pair<uint64_t, std::string>{1, "first"}));
  EXPECT_EQ(records[1].second, "");
  EXPECT_EQ(records[2].second, std::string(1000, 'x'));
  EXPECT_EQ(info.last_seq, 3u);
  EXPECT_EQ(info.truncated_bytes, 0);
}

TEST(WalTest, MissingFileIsFreshLog) {
  TempDir dir;
  WriteAheadLog::RecoveryInfo info;
  auto records = Replay(dir.Path("absent.log"), &info);
  EXPECT_TRUE(records.empty());
  EXPECT_EQ(info.records, 0);
}

TEST(WalTest, TornTailIsTruncatedAndStaysTruncated) {
  TempDir dir;
  std::string path = dir.Path("wal.log");
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path, false).ok());
    ASSERT_TRUE(wal.Append(1, "intact one").ok());
    ASSERT_TRUE(wal.Append(2, "intact two").ok());
  }
  // Crash mid-append: half a header plus garbage.
  std::string raw = RawRead(path);
  std::string torn = raw + std::string("\x07\x00\x00\x00garbage", 11);
  RawWrite(path, torn);

  WriteAheadLog::RecoveryInfo info;
  auto records = Replay(path, &info);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(info.truncated_bytes, 11);
  // The truncation is persisted: the file is back to the intact prefix and
  // a second recovery finds nothing to remove.
  EXPECT_EQ(RawRead(path), raw);
  WriteAheadLog::RecoveryInfo again;
  Replay(path, &again);
  EXPECT_EQ(again.truncated_bytes, 0);
}

TEST(WalTest, CorruptRecordTruncatesFromThatPoint) {
  TempDir dir;
  std::string path = dir.Path("wal.log");
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path, false).ok());
    ASSERT_TRUE(wal.Append(1, "record aaaaaaaa").ok());
    ASSERT_TRUE(wal.Append(2, "record bbbbbbbb").ok());
    ASSERT_TRUE(wal.Append(3, "record cccccccc").ok());
  }
  std::string raw = RawRead(path);
  size_t record_size = raw.size() / 3;
  // Flip a payload bit inside the second record: records 2 and 3 are lost
  // (replay keeps the longest intact *prefix*), record 1 survives.
  std::string corrupt = raw;
  corrupt[record_size + 20] ^= 0x01;
  RawWrite(path, corrupt);

  WriteAheadLog::RecoveryInfo info;
  auto records = Replay(path, &info);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].first, 1u);
  EXPECT_EQ(info.truncated_bytes, static_cast<int64_t>(raw.size() - record_size));
}

TEST(WalTest, AppendAfterRecoveryContinuesTheLog) {
  TempDir dir;
  std::string path = dir.Path("wal.log");
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path, false).ok());
    ASSERT_TRUE(wal.Append(1, "one").ok());
  }
  RawWrite(path, RawRead(path) + "torn!");
  Replay(path, nullptr);
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path, false).ok());
    ASSERT_TRUE(wal.Append(2, "two").ok());
  }
  auto records = Replay(path, nullptr);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].second, "two");
}

TEST(WalTest, ResetEmptiesTheLog) {
  TempDir dir;
  std::string path = dir.Path("wal.log");
  WriteAheadLog wal;
  ASSERT_TRUE(wal.Open(path, false).ok());
  ASSERT_TRUE(wal.Append(1, "pre-snapshot").ok());
  ASSERT_TRUE(wal.Reset().ok());
  ASSERT_TRUE(wal.Append(2, "post-snapshot").ok());
  wal.Close();
  auto records = Replay(path, nullptr);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].first, 2u);
}

TEST(WalTest, ImplausibleLengthFieldIsTreatedAsTornTail) {
  TempDir dir;
  std::string path = dir.Path("wal.log");
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path, false).ok());
    ASSERT_TRUE(wal.Append(1, "ok").ok());
  }
  // A "record" whose length field says 256 MiB: corruption, not a record.
  std::string huge_header(16, '\0');
  huge_header[0] = '\0';
  huge_header[3] = 0x10;  // payload_size = 0x10000000
  RawWrite(path, RawRead(path) + huge_header);
  WriteAheadLog::RecoveryInfo info;
  auto records = Replay(path, &info);
  EXPECT_EQ(records.size(), 1u);
  EXPECT_EQ(info.truncated_bytes, 16);
}

// -------------------------------------------------- short-write injection
//
// The fail-stop contract of Append under a short write (ENOSPC, device
// yanked, kill -9 between write() calls): the failed Append must surface an
// error, the short frame must NEVER be replayed, and the log must keep
// working after a reopen. SetShortWriteForTesting arms a one-shot fault
// that writes only a prefix of the next record, exactly like a full disk.

TEST(WalTest, ShortWriteMidHeaderIsFailStopAndTruncated) {
  TempDir dir;
  std::string path = dir.Path("wal.log");
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path, false).ok());
    ASSERT_TRUE(wal.Append(1, "intact before the fault").ok());
    // Fault: only 8 of the 16 header bytes reach the disk.
    wal.SetShortWriteForTesting(8);
    Status st = wal.Append(2, "this record is torn");
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kInternal);
  }
  WriteAheadLog::RecoveryInfo info;
  auto records = Replay(path, &info);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].first, 1u);
  EXPECT_EQ(info.truncated_bytes, 8);
}

TEST(WalTest, ShortWriteMidPayloadNeverReplaysTheTornFrame) {
  TempDir dir;
  std::string path = dir.Path("wal.log");
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path, false).ok());
    ASSERT_TRUE(wal.Append(1, "aaaa").ok());
    // Full header plus half the payload: the length field promises more
    // bytes than exist, so recovery must classify the frame as torn even
    // though its header parses.
    wal.SetShortWriteForTesting(16 + 10);
    ASSERT_FALSE(wal.Append(2, std::string(100, 'b')).ok());
  }
  WriteAheadLog::RecoveryInfo info;
  auto records = Replay(path, &info);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].second, "aaaa");
  EXPECT_EQ(info.truncated_bytes, 16 + 10);
}

TEST(WalTest, ZeroByteShortWriteLosesOnlyTheFailedAppend) {
  TempDir dir;
  std::string path = dir.Path("wal.log");
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path, false).ok());
    ASSERT_TRUE(wal.Append(1, "one").ok());
    wal.SetShortWriteForTesting(0);  // nothing of the record lands
    ASSERT_FALSE(wal.Append(2, "two").ok());
  }
  WriteAheadLog::RecoveryInfo info;
  auto records = Replay(path, &info);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(info.truncated_bytes, 0);  // nothing torn to remove either
}

TEST(WalTest, LogKeepsWorkingAfterShortWriteAndReopen) {
  TempDir dir;
  std::string path = dir.Path("wal.log");
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path, false).ok());
    ASSERT_TRUE(wal.Append(1, "one").ok());
    wal.SetShortWriteForTesting(5);
    ASSERT_FALSE(wal.Append(2, "lost to the fault").ok());
  }
  // Recovery truncates the torn frame; the reopened log appends cleanly
  // after the intact prefix (the application re-journals the failed event).
  Replay(path, nullptr);
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path, false).ok());
    ASSERT_TRUE(wal.Append(2, "retried after reopen").ok());
  }
  WriteAheadLog::RecoveryInfo info;
  auto records = Replay(path, &info);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1], (std::pair<uint64_t, std::string>{2, "retried after reopen"}));
  EXPECT_EQ(info.truncated_bytes, 0);
}

TEST(WalTest, ShortWriteFaultIsOneShot) {
  TempDir dir;
  std::string path = dir.Path("wal.log");
  WriteAheadLog wal;
  ASSERT_TRUE(wal.Open(path, false).ok());
  wal.SetShortWriteForTesting(3);
  ASSERT_FALSE(wal.Append(1, "fails").ok());
  // The hook disarmed itself: the very next append succeeds without a
  // recovery pass (the torn frame is later truncated by Recover; appends
  // after it are unreachable by replay, which is why the production owner
  // fail-stops instead of appending past an error).
  ASSERT_TRUE(wal.Append(2, "succeeds").ok());
}

// ------------------------------------------- snapshot install crash windows
//
// Store-level regressions for the replication seam: InstallSnapshot's
// durability ordering is the *inverse* of the periodic snapshot path (WAL
// reset first, snapshot write second), because the local WAL can hold a
// suffix the incoming snapshot does not subsume. These tests pin both
// crash windows.

RuleSignature InstallSig(int bit) {
  RuleSignature s;
  s.Set(bit);
  return s;
}

RuleConfig InstallAltConfig(int n) {
  RuleConfig def = RuleConfig::Default();
  std::vector<int> toggleable;
  for (int id = 0; id < 256; ++id) {
    RuleConfig config = def;
    if (config.IsEnabled(id)) {
      config.Disable(id);
    } else {
      config.Enable(id);
    }
    if (config != def) toggleable.push_back(id);
  }
  RuleConfig config = def;
  int id = toggleable[static_cast<size_t>(n) % toggleable.size()];
  if (config.IsEnabled(id)) {
    config.Disable(id);
  } else {
    config.Enable(id);
  }
  return config;
}

void Learn(DurableRecommenderStore& store, int sig_bit, int config_n,
           double improvement) {
  SteeringRecommender::CandidateObservation observation;
  observation.signature = InstallSig(sig_bit);
  observation.config = InstallAltConfig(config_n);
  observation.improvement_pct = improvement;
  ASSERT_TRUE(store.LearnCandidate(observation));
}

DurableStoreOptions InstallStoreOptions(const std::string& dir) {
  DurableStoreOptions options;
  options.dir = dir;
  options.snapshot_interval = 1000;  // no automatic snapshots mid-test
  options.sync = false;
  return options;
}

TEST(DurableStoreInstallTest, InstallReplacesStateAndSurvivesReopen) {
  TempDir dir;
  std::string content;
  uint64_t leader_seq = 0;
  {
    DurableRecommenderStore leader;  // ephemeral
    ASSERT_TRUE(leader.Open().ok());
    Learn(leader, 1, 0, -12.0);
    Learn(leader, 2, 1, -8.0);
    content = leader.SerializeForReplication();
    leader_seq = leader.applied_seq();
  }
  DurableStoreOptions options = InstallStoreOptions(dir.Path("follower"));
  std::filesystem::create_directories(options.dir);
  std::string expected;
  {
    DurableRecommenderStore follower(options);
    ASSERT_TRUE(follower.Open().ok());
    Learn(follower, 7, 2, -5.0);  // local state the install must replace
    ASSERT_TRUE(follower.InstallSnapshot(content).ok());
    EXPECT_EQ(follower.applied_seq(), leader_seq);
    EXPECT_EQ(follower.snapshot_installs(), 1);
    expected = follower.SerializeState();
  }
  // Crash after a completed install: reopen recovers the installed state
  // (the install wrote the snapshot and the reset WAL holds nothing).
  DurableRecommenderStore reopened(options);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.SerializeState(), expected);
  EXPECT_EQ(reopened.applied_seq(), leader_seq);
  EXPECT_EQ(reopened.recovery().wal_records_replayed, 0);
}

TEST(DurableStoreInstallTest, CrashInInstallWindowNeverYieldsMixedState) {
  // The follower's WAL holds a *divergent* suffix: entries with sequence
  // numbers at/beyond the incoming snapshot's watermark but different
  // content (it was a leader whose tail nobody acknowledged). A crash
  // between InstallSnapshot's two durable steps must leave a consistent
  // pre-install state — never installed-state-plus-replayed-suffix, which
  // is the corruption the reset-first ordering exists to prevent.
  TempDir dir;
  std::string installed;
  {
    DurableRecommenderStore leader;
    ASSERT_TRUE(leader.Open().ok());
    Learn(leader, 1, 0, -12.0);  // seq 1 on the leader's history
    installed = leader.SerializeForReplication();
  }
  DurableStoreOptions options = InstallStoreOptions(dir.Path("follower"));
  std::filesystem::create_directories(options.dir);
  options.testing_skip_snapshot_write_after_install_reset = true;  // crash window
  {
    DurableRecommenderStore follower(options);
    ASSERT_TRUE(follower.Open().ok());
    // Divergent local history: same seq numbers, different payloads.
    Learn(follower, 9, 3, -20.0);  // seq 1, diverges from leader's seq 1
    Learn(follower, 5, 4, -15.0);  // seq 2, beyond the install watermark
    ASSERT_TRUE(follower.InstallSnapshot(installed).ok());
    // In-memory the install completed...
    EXPECT_EQ(follower.applied_seq(), 1u);
  }  // ...but the process dies before the snapshot write (hook): the WAL
     // was reset and no snapshot exists on disk.
  options.testing_skip_snapshot_write_after_install_reset = false;
  DurableRecommenderStore reopened(options);
  ASSERT_TRUE(reopened.Open().ok());
  // "Behind, never wrong": the store recovered to its pre-install durable
  // base (here: empty — no snapshot had ever been written) with ZERO
  // divergent-suffix replay. Snapshot-first ordering would instead have
  // recovered the installed state with the divergent seq-2 event on top.
  EXPECT_EQ(reopened.applied_seq(), 0u);
  EXPECT_EQ(reopened.recovery().wal_records_replayed, 0);
  EXPECT_FALSE(reopened.recovery().loaded_snapshot);
  DurableRecommenderStore empty;
  ASSERT_TRUE(empty.Open().ok());
  EXPECT_EQ(reopened.SerializeState(), empty.SerializeState());
  // The node is merely behind: a fresh install catches it up fully.
  ASSERT_TRUE(reopened.InstallSnapshot(installed).ok());
  EXPECT_EQ(reopened.applied_seq(), 1u);
}

TEST(DurableStoreInstallTest, FollowerOfLeaderDeadMidSnapshotDoesNotDoubleApply) {
  // The leader crashed in ITS snapshot window (snapshot written, WAL not
  // yet reset — testing_skip_wal_reset_after_snapshot), so its recovered
  // WAL still holds every record at/below the snapshot watermark. A
  // follower that installs the snapshot and is then caught up from that
  // overlapping WAL must skip the already-installed window idempotently —
  // applying it twice would double-count observations.
  TempDir dir;
  std::string leader_dir = dir.Path("leader");
  std::filesystem::create_directories(leader_dir);
  DurableStoreOptions leader_options = InstallStoreOptions(leader_dir);
  leader_options.testing_skip_wal_reset_after_snapshot = true;

  std::vector<std::pair<uint64_t, std::string>> shipped;
  std::string leader_state;
  uint64_t watermark = 0;
  std::string snapshot_content;
  {
    DurableRecommenderStore leader(leader_options);
    ASSERT_TRUE(leader.Open().ok());
    leader.SetMutationListener([&](uint64_t seq, const std::string& payload) {
      shipped.emplace_back(seq, payload);
    });
    Learn(leader, 1, 0, -12.0);
    Learn(leader, 2, 1, -9.0);
    ASSERT_TRUE(leader.Snapshot().ok());  // crash window: WAL keeps seq 1-2
    watermark = leader.applied_seq();
    snapshot_content = leader.SerializeForReplication();
    Learn(leader, 3, 2, -7.0);  // post-snapshot tail
    leader_state = leader.SerializeState();
  }
  ASSERT_EQ(watermark, 2u);
  ASSERT_EQ(shipped.size(), 3u);

  // Follower: install the snapshot, then receive the leader's ENTIRE
  // journal as catch-up (the overlap is exactly what a recovered
  // crashed-mid-snapshot leader would ship).
  DurableRecommenderStore follower;
  ASSERT_TRUE(follower.Open().ok());
  ASSERT_TRUE(follower.InstallSnapshot(snapshot_content).ok());
  for (const auto& [seq, payload] : shipped) {
    ASSERT_TRUE(follower.ApplyReplicated(seq, payload).ok()) << "seq " << seq;
  }
  EXPECT_EQ(follower.replicated_skipped(), 2);  // the snapshot window
  EXPECT_EQ(follower.replicated_applied(), 1);  // the genuine tail
  EXPECT_EQ(follower.SerializeState(), leader_state);
  EXPECT_EQ(follower.applied_seq(), 3u);
}

TEST(DurableStoreInstallTest, ApplyReplicatedRejectsGaps) {
  DurableRecommenderStore store;
  ASSERT_TRUE(store.Open().ok());
  std::vector<std::pair<uint64_t, std::string>> events;
  {
    DurableRecommenderStore source;
    ASSERT_TRUE(source.Open().ok());
    source.SetMutationListener([&](uint64_t seq, const std::string& payload) {
      events.emplace_back(seq, payload);
    });
    Learn(source, 1, 0, -10.0);
    Learn(source, 2, 1, -10.0);
  }
  ASSERT_EQ(events.size(), 2u);
  // Shipping seq 2 to a store at watermark 0 is a gap: the follower must
  // refuse (the leader's cue to send a snapshot), not apply out of order.
  Status status = store.ApplyReplicated(events[1].first, events[1].second);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(store.ApplyReplicated(events[0].first, events[0].second).ok());
  EXPECT_TRUE(store.ApplyReplicated(events[1].first, events[1].second).ok());
  EXPECT_EQ(store.applied_seq(), 2u);
}

// -------------------------------------------------------- bounded queue

TEST(BoundedQueueTest, TryPushRespectsCapacity) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // full: shed, don't block
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.TryPush(3));
  EXPECT_EQ(queue.size(), 2);
  EXPECT_EQ(queue.high_water(), 2);
}

TEST(BoundedQueueTest, CloseDrainsThenStops) {
  BoundedQueue<int> queue(8);
  queue.TryPush(1);
  queue.TryPush(2);
  queue.Close();
  EXPECT_FALSE(queue.TryPush(3));
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(queue.Pop(&out));  // closed and empty
}

TEST(BoundedQueueTest, CloseAndDrainReturnsQueuedItems) {
  BoundedQueue<int> queue(8);
  queue.TryPush(7);
  queue.TryPush(8);
  std::vector<int> drained = queue.CloseAndDrain();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0], 7);
  int out = 0;
  EXPECT_FALSE(queue.Pop(&out));
}

TEST(BoundedQueueTest, ConcurrentProducersAndConsumersLoseNothing) {
  BoundedQueue<int> queue(64);
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::atomic<int> consumed{0};
  std::atomic<long long> sum{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      int item = 0;
      while (queue.Pop(&item)) {
        sum.fetch_add(item);
        consumed.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  std::atomic<int> produced{0};
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int value = p * kPerProducer + i + 1;
        while (!queue.TryPush(value)) std::this_thread::yield();
        produced.fetch_add(1);
      }
    });
  }
  for (std::thread& t : producers) t.join();
  queue.Close();
  for (std::thread& t : consumers) t.join();
  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
  long long n = kProducers * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n + 1) / 2);
}

}  // namespace
}  // namespace qsteer
