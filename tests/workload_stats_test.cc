// Workload-generator statistics: archetype coverage, heavy tails, customer
// hints, and catalog shape — the properties the Table-1/Figure-2 benches
// depend on.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <set>

#include "optimizer/rule_config.h"
#include "workload/generator.h"

namespace qsteer {
namespace {

class WorkloadStatsTest : public ::testing::Test {
 protected:
  WorkloadStatsTest() : workload_(WorkloadSpec::WorkloadA(0.004)) {}
  Workload workload_;
};

TEST_F(WorkloadStatsTest, CatalogHasLogAndDimensionSets) {
  const Catalog& catalog = workload_.catalog();
  int log_sets = 0, dim_sets = 0;
  for (int s = 0; s < catalog.num_stream_sets(); ++s) {
    const StreamSet& set = catalog.stream_set(s);
    EXPECT_GE(set.columns.size(), 4u);
    EXPECT_LE(set.columns.size(), 8u);
    EXPECT_FALSE(set.correlations.empty());
    if (set.stream_ids.size() > 1) {
      ++log_sets;
    } else {
      ++dim_sets;
      // Dimension leading columns are near-unique unskewed keys.
      const Stream& stream = catalog.stream(set.stream_ids[0]);
      EXPECT_GE(static_cast<double>(set.columns[0].distinct_count),
                0.5 * static_cast<double>(stream.base_rows));
      EXPECT_DOUBLE_EQ(set.columns[0].zipf_skew, 0.0);
    }
  }
  EXPECT_GT(log_sets, 3);
  EXPECT_GT(dim_sets, 3);
}

TEST_F(WorkloadStatsTest, OperatorMixCoversTheAlgebra) {
  std::map<OpKind, int> counts;
  for (int t = 0; t < workload_.num_templates(); ++t) {
    VisitPlan(workload_.MakeJob(t, 1).root,
              [&](const PlanNode& node) { ++counts[node.op.kind]; });
  }
  EXPECT_GT(counts[OpKind::kGet], 0);
  EXPECT_GT(counts[OpKind::kSelect], 0);
  EXPECT_GT(counts[OpKind::kJoin], 0);
  EXPECT_GT(counts[OpKind::kGroupBy], 0);
  EXPECT_GT(counts[OpKind::kUnionAll], 0);
  EXPECT_GT(counts[OpKind::kProcess], 0);
  EXPECT_GT(counts[OpKind::kTop], 0);
  EXPECT_GT(counts[OpKind::kProject], 0);
  // Rare operators are rare but present across a large template population.
  int rare = counts[OpKind::kWindow] + counts[OpKind::kSample];
  EXPECT_GT(rare, 0);
  EXPECT_LT(rare, workload_.num_templates() / 8);
  // Every job ends in exactly one Output.
  EXPECT_EQ(counts[OpKind::kOutput], workload_.num_templates());
}

TEST_F(WorkloadStatsTest, SomeTemplatesCarryCustomerHints) {
  int with_hints = 0;
  for (int t = 0; t < workload_.num_templates(); ++t) {
    Job job = workload_.MakeJob(t, 1);
    if (!job.customer_hints.empty()) {
      ++with_hints;
      for (int id : job.customer_hints) {
        EXPECT_EQ(CategoryOfRule(id), RuleCategory::kOffByDefault) << id;
      }
      // Hints are structural: stable across days.
      EXPECT_EQ(workload_.MakeJob(t, 5).customer_hints, job.customer_hints);
    }
  }
  EXPECT_GT(with_hints, workload_.num_templates() / 50);
  EXPECT_LT(with_hints, workload_.num_templates() / 3);
}

TEST_F(WorkloadStatsTest, DagTemplatesShareSubplans) {
  // The SharedDag archetype produces genuine DAGs: more node references
  // than distinct nodes.
  int dag_templates = 0;
  for (int t = 0; t < workload_.num_templates(); ++t) {
    Job job = workload_.MakeJob(t, 1);
    int distinct = job.NumOperators();
    int references = 0;
    std::function<void(const PlanNodePtr&)> count = [&](const PlanNodePtr& node) {
      ++references;
      for (const PlanNodePtr& child : node->children) count(child);
    };
    count(job.root);
    if (references > distinct) ++dag_templates;
  }
  EXPECT_GT(dag_templates, workload_.num_templates() / 30);
}

TEST_F(WorkloadStatsTest, JobsPerDayStableButNotIdentical) {
  size_t day1 = workload_.JobsForDay(1).size();
  size_t day2 = workload_.JobsForDay(2).size();
  EXPECT_GT(day1, static_cast<size_t>(workload_.num_templates()));
  double ratio = static_cast<double>(day1) / static_cast<double>(day2);
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
}

TEST_F(WorkloadStatsTest, HeavyTemplatesRecurManyTimes) {
  int max_instances = 0;
  for (int t = 0; t < workload_.num_templates(); ++t) {
    max_instances = std::max(max_instances, workload_.InstancesOnDay(t, 1));
  }
  EXPECT_GE(max_instances, 5);  // the recurring-template heavy tail
}

TEST_F(WorkloadStatsTest, WorkloadsAreDistinct) {
  Workload b(WorkloadSpec::WorkloadB(0.004));
  std::set<uint64_t> a_templates, b_templates;
  for (int t = 0; t < 10; ++t) {
    a_templates.insert(workload_.MakeJob(t, 1).TemplateHash());
    b_templates.insert(b.MakeJob(t, 1).TemplateHash());
  }
  for (uint64_t hash : a_templates) EXPECT_EQ(b_templates.count(hash), 0u);
}

}  // namespace
}  // namespace qsteer
