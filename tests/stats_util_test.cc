#include "common/stats.h"

#include <gtest/gtest.h>

namespace qsteer {
namespace {

TEST(Stats, MeanAndStdDev) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({4.0}), 4.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(StdDev({5.0}), 0.0);
  EXPECT_NEAR(StdDev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.138, 0.01);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 90.0), 7.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 50.0), 0.0);
}

TEST(Stats, PercentileUnsortedInput) {
  std::vector<double> v = {40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 25.0);
}

TEST(Stats, GeoMeanSkipsNonPositive) {
  EXPECT_DOUBLE_EQ(GeoMean({}), 0.0);
  EXPECT_DOUBLE_EQ(GeoMean({-1.0, 0.0}), 0.0);
  EXPECT_NEAR(GeoMean({2.0, 8.0}), 4.0, 1e-9);
  EXPECT_NEAR(GeoMean({2.0, 8.0, -5.0}), 4.0, 1e-9);
}

TEST(Stats, SummaryFields) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  Summary s = Summarize(v);
  EXPECT_EQ(s.count, 100);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_NEAR(s.p90, 90.1, 1e-9);
  EXPECT_NEAR(s.p99, 99.01, 1e-9);
  EXPECT_GT(s.stddev, 0.0);
}

TEST(Stats, SummaryEmpty) {
  Summary s = Summarize({});
  EXPECT_EQ(s.count, 0);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

}  // namespace
}  // namespace qsteer
