#include "baselines/bao.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "workload/generator.h"
#include "optimizer/optimizer.h"

namespace qsteer {
namespace {

TEST(BaoHintSets, Exactly48DistinctArms) {
  std::vector<HintSet> arms = BaoHintSets();
  ASSERT_EQ(arms.size(), 48u);
  std::set<uint64_t> hashes;
  std::set<std::string> names;
  for (const HintSet& arm : arms) {
    hashes.insert(arm.config.Hash());
    names.insert(arm.name);
  }
  EXPECT_EQ(hashes.size(), 48u);
  EXPECT_EQ(names.size(), 48u);
}

TEST(BaoHintSets, FirstArmIsDefault) {
  std::vector<HintSet> arms = BaoHintSets();
  EXPECT_EQ(arms[0].config, RuleConfig::Default());
  EXPECT_EQ(arms[0].name, "arm_default");
}

TEST(BaoHintSets, EveryArmKeepsAnEquiJoinFamily) {
  for (const HintSet& arm : BaoHintSets()) {
    bool hash_on = arm.config.IsEnabled(rules::kHashJoinImpl1);
    bool broadcast_on = arm.config.IsEnabled(rules::kBroadcastJoinImpl1);
    bool merge_on = arm.config.IsEnabled(rules::kMergeJoinImpl);
    EXPECT_TRUE(hash_on || broadcast_on || merge_on) << arm.name;
  }
}

TEST(BaoHintSets, EveryArmCompilesEveryJob) {
  WorkloadSpec spec;
  spec.name = "B";
  spec.seed = 404;
  spec.num_templates = 10;
  spec.num_stream_sets = 16;
  Workload workload(spec);
  Optimizer optimizer(&workload.catalog());
  std::vector<HintSet> arms = BaoHintSets();
  for (int t = 0; t < 10; ++t) {
    Job job = workload.MakeJob(t, 1);
    for (size_t a = 0; a < arms.size(); a += 7) {  // sample arms for speed
      Result<CompiledPlan> plan = optimizer.Compile(job, arms[a].config);
      EXPECT_TRUE(plan.ok()) << "arm " << arms[a].name << " failed on template " << t;
    }
  }
}

TEST(BaoBandit, ConvergesToBestArm) {
  // Arm 2 has ratio 0.5 (2x faster); others 1.0-1.3.
  BaoBandit bandit(5, /*seed=*/3);
  Pcg32 rng(17);
  auto true_ratio = [](int arm) { return arm == 2 ? 0.5 : 1.0 + 0.075 * arm; };
  int chosen_best = 0;
  for (int round = 0; round < 400; ++round) {
    int arm = bandit.ChooseArm();
    double noise = std::exp(0.05 * rng.NextGaussian());
    bandit.Observe(arm, true_ratio(arm) * noise);
    if (round >= 300 && arm == 2) ++chosen_best;
  }
  // After the exploration phase, the bandit should mostly pull the best arm.
  EXPECT_GE(chosen_best, 70);
  EXPECT_LT(bandit.ArmMean(2), bandit.ArmMean(0));
}

TEST(BaoBandit, PullsAreCounted) {
  BaoBandit bandit(3, 1);
  bandit.Observe(0, 1.0);
  bandit.Observe(0, 2.0);
  bandit.Observe(2, 0.5);
  EXPECT_EQ(bandit.ArmPulls(0), 2);
  EXPECT_EQ(bandit.ArmPulls(1), 0);
  EXPECT_EQ(bandit.ArmPulls(2), 1);
  bandit.Observe(99, 1.0);  // out of range ignored
  EXPECT_EQ(bandit.ArmPulls(2), 1);
}

}  // namespace
}  // namespace qsteer
