// Tests of the deterministic fault model: zero-profile bit-identity (the
// fault layer is strictly opt-in), per-nonce reproducibility of every
// injected failure, the individual fault channels (vertex failures, token
// revocation, job-level aborts), compile deadlines/cancellation, and the
// pipeline's retry-with-fresh-nonce machinery.
#include <gtest/gtest.h>

#include "common/retry.h"
#include "core/pipeline.h"
#include "workload/generator.h"

namespace qsteer {
namespace {

WorkloadSpec Spec() {
  WorkloadSpec spec;
  spec.name = "FI";
  spec.seed = 777;
  spec.num_templates = 12;
  spec.num_stream_sets = 10;
  return spec;
}

void ExpectSameMetrics(const ExecMetrics& a, const ExecMetrics& b) {
  EXPECT_EQ(a.runtime, b.runtime);
  EXPECT_EQ(a.cpu_time, b.cpu_time);
  EXPECT_EQ(a.io_time, b.io_time);
  EXPECT_EQ(a.bytes_moved, b.bytes_moved);
  EXPECT_EQ(a.output_rows, b.output_rows);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.failed_vertices, b.failed_vertices);
  EXPECT_EQ(a.speculative_copies, b.speculative_copies);
  EXPECT_EQ(a.token_revocations, b.token_revocations);
  EXPECT_EQ(a.wasted_cpu_time, b.wasted_cpu_time);
  EXPECT_EQ(a.failed, b.failed);
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  FaultInjectionTest() : workload_(Spec()), optimizer_(&workload_.catalog()) {
    job_ = workload_.MakeJob(1, /*day=*/2);
    Result<CompiledPlan> plan = optimizer_.Compile(job_, RuleConfig::Default());
    EXPECT_TRUE(plan.ok());
    root_ = plan.value().root;
  }

  ExecutionSimulator Sim(FaultProfile profile) const {
    SimulatorOptions options;
    options.fault_profile = profile;
    return ExecutionSimulator(&workload_.catalog(), options);
  }

  Workload workload_;
  Optimizer optimizer_;
  Job job_;
  PlanNodePtr root_;
};

TEST_F(FaultInjectionTest, ProfileActivation) {
  EXPECT_FALSE(FaultProfile().Active());
  EXPECT_FALSE(FaultProfile::Off().Active());
  EXPECT_FALSE(FaultProfile::Flaky(0.0).Active());
  EXPECT_TRUE(FaultProfile::Flaky(1.0).Active());
  // Scaling saturates: probabilities stay valid at absurd levels.
  FaultProfile extreme = FaultProfile::Flaky(1e6);
  EXPECT_LE(extreme.vertex_failure_prob, 0.5);
  EXPECT_LE(extreme.straggler_prob, 0.5);
  EXPECT_LE(extreme.token_revocation_prob, 0.5);
  EXPECT_LE(extreme.job_failure_prob, 0.3);
}

TEST_F(FaultInjectionTest, ZeroProfileIsBitIdenticalToFaultFreeSimulator) {
  ExecutionSimulator plain(&workload_.catalog());
  ExecutionSimulator zeroed = Sim(FaultProfile::Off());
  for (uint64_t nonce : {0ull, 1ull, 42ull, 999ull}) {
    ExecMetrics a = plain.Execute(job_, root_, nonce);
    ExecMetrics b = zeroed.Execute(job_, root_, nonce);
    SCOPED_TRACE(testing::Message() << "nonce=" << nonce);
    ExpectSameMetrics(a, b);
    // And the fault layer reported nothing.
    EXPECT_EQ(b.retries, 0);
    EXPECT_EQ(b.failed_vertices, 0);
    EXPECT_EQ(b.speculative_copies, 0);
    EXPECT_EQ(b.token_revocations, 0);
    EXPECT_EQ(b.wasted_cpu_time, 0.0);
    EXPECT_FALSE(b.failed);
  }
}

TEST_F(FaultInjectionTest, FaultDrawsAreReproduciblePerNonce) {
  ExecutionSimulator sim = Sim(FaultProfile::Flaky(3.0));
  for (uint64_t nonce = 0; nonce < 16; ++nonce) {
    ExecMetrics first = sim.Execute(job_, root_, nonce);
    ExecMetrics second = sim.Execute(job_, root_, nonce);
    SCOPED_TRACE(testing::Message() << "nonce=" << nonce);
    ExpectSameMetrics(first, second);
  }
  // Different nonces draw different faults (at least the runtimes differ
  // somewhere across a handful of nonces).
  bool any_different = false;
  ExecMetrics base = sim.Execute(job_, root_, 0);
  for (uint64_t nonce = 1; nonce < 8 && !any_different; ++nonce) {
    any_different = sim.Execute(job_, root_, nonce).runtime != base.runtime;
  }
  EXPECT_TRUE(any_different);
}

TEST_F(FaultInjectionTest, VertexFailuresCostRetriesAndWaste) {
  FaultProfile profile;
  profile.vertex_failure_prob = 0.3;
  ExecutionSimulator faulty = Sim(profile);
  ExecutionSimulator clean = Sim(FaultProfile::Off());
  int total_retries = 0, total_failed_vertices = 0;
  double total_waste = 0.0;
  for (uint64_t nonce = 0; nonce < 12; ++nonce) {
    ExecMetrics f = faulty.Execute(job_, root_, nonce);
    ExecMetrics c = clean.Execute(job_, root_, nonce);
    total_retries += f.retries;
    total_failed_vertices += f.failed_vertices;
    total_waste += f.wasted_cpu_time;
    // Re-running vertices never makes the job faster or cheaper.
    EXPECT_GE(f.runtime, c.runtime);
    EXPECT_GE(f.cpu_time, c.cpu_time);
  }
  EXPECT_GT(total_retries, 0);
  EXPECT_GT(total_failed_vertices, 0);
  EXPECT_GT(total_waste, 0.0);
}

TEST_F(FaultInjectionTest, TokenRevocationSlowsTheRun) {
  FaultProfile profile;
  profile.token_revocation_prob = 1.0;
  ExecutionSimulator faulty = Sim(profile);
  ExecutionSimulator clean = Sim(FaultProfile::Off());
  ExecMetrics f = faulty.Execute(job_, root_, 5);
  ExecMetrics c = clean.Execute(job_, root_, 5);
  EXPECT_GT(f.token_revocations, 0);
  EXPECT_GE(f.runtime, c.runtime);
  EXPECT_FALSE(f.failed);  // preemption slows but does not kill the run
}

TEST_F(FaultInjectionTest, JobLevelFailureAbortsWithPartialMetrics) {
  FaultProfile profile;
  profile.job_failure_prob = 1.0;
  ExecutionSimulator faulty = Sim(profile);
  ExecutionSimulator clean = Sim(FaultProfile::Off());
  ExecMetrics f = faulty.Execute(job_, root_, 3);
  ExecMetrics c = clean.Execute(job_, root_, 3);
  EXPECT_TRUE(f.failed);
  EXPECT_GT(f.runtime, 0.0);
  EXPECT_LT(f.runtime, c.runtime);  // aborted partway
  EXPECT_GT(f.wasted_cpu_time, 0.0);
}

TEST_F(FaultInjectionTest, StragglersWasteSpeculativeCopies) {
  FaultProfile profile;
  profile.straggler_prob = 0.9;
  profile.straggler_mu = 1.5;  // heavy slowdowns: speculation will fire
  profile.speculation_threshold = 1.2;
  ExecutionSimulator faulty = Sim(profile);
  int copies = 0;
  double waste = 0.0;
  for (uint64_t nonce = 0; nonce < 8; ++nonce) {
    ExecMetrics f = faulty.Execute(job_, root_, nonce);
    copies += f.speculative_copies;
    waste += f.wasted_cpu_time;
    EXPECT_FALSE(f.failed);  // stragglers slow runs, they do not kill them
  }
  EXPECT_GT(copies, 0);
  EXPECT_GT(waste, 0.0);
}

TEST_F(FaultInjectionTest, ExecuteWithRetryRecoversTransientFailures) {
  FaultProfile profile;
  profile.job_failure_prob = 0.5;
  SimulatorOptions sim_options;
  sim_options.fault_profile = profile;
  ExecutionSimulator simulator(&workload_.catalog(), sim_options);
  PipelineOptions options;
  options.retry.max_attempts = 4;
  SteeringPipeline pipeline(&optimizer_, &simulator, options);

  bool recovered_one = false;
  for (uint64_t nonce = 0; nonce < 24 && !recovered_one; ++nonce) {
    if (!simulator.Execute(job_, root_, nonce).failed) continue;
    ExecMetrics retried = pipeline.ExecuteWithRetry(job_, root_, nonce);
    if (retried.failed) continue;  // all four attempts failed: rare but legal
    recovered_one = true;
    // The recovered run carries the failed attempts' cost.
    EXPECT_GT(retried.retries, 0);
    EXPECT_GT(retried.wasted_cpu_time, 0.0);
  }
  EXPECT_TRUE(recovered_one);
  EXPECT_GT(pipeline.failure_stats().exec_retries, 0);

  // Retries are part of the deterministic contract too.
  ExecMetrics a = pipeline.ExecuteWithRetry(job_, root_, 7);
  ExecMetrics b = pipeline.ExecuteWithRetry(job_, root_, 7);
  ExpectSameMetrics(a, b);
}

TEST_F(FaultInjectionTest, CompileDeadlineReturnsInsteadOfHanging) {
  CompileControl control;
  control.timeout_s = 1e-12;  // expires before the first progress poll
  Result<CompiledPlan> plan = optimizer_.Compile(job_, RuleConfig::Default(), control);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(FaultInjectionTest, CompileCancellationIsHonored) {
  CancellationToken cancel;
  cancel.RequestCancel();
  CompileControl control;
  control.cancel = &cancel;
  Result<CompiledPlan> plan = optimizer_.Compile(job_, RuleConfig::Default(), control);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(FaultInjectionTest, UnboundedControlMatchesPlainCompile) {
  Result<CompiledPlan> plain = optimizer_.Compile(job_, RuleConfig::Default());
  Result<CompiledPlan> controlled =
      optimizer_.Compile(job_, RuleConfig::Default(), CompileControl{});
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(controlled.ok());
  EXPECT_EQ(PlanHash(plain.value().root, false), PlanHash(controlled.value().root, false));
  EXPECT_EQ(plain.value().est_cost, controlled.value().est_cost);
}

TEST_F(FaultInjectionTest, PipelineCountsCompileTimeouts) {
  ExecutionSimulator simulator(&workload_.catalog());
  PipelineOptions options;
  options.compile_timeout_s = 1e-12;
  options.retry.max_attempts = 2;
  SteeringPipeline pipeline(&optimizer_, &simulator, options);
  JobAnalysis analysis = pipeline.AnalyzeJob(job_);
  // Even the default compilation misses an impossible deadline: the
  // pipeline degrades to an empty analysis instead of hanging or crashing.
  EXPECT_EQ(analysis.default_plan.root, nullptr);
  PipelineFailureStats stats = pipeline.failure_stats();
  EXPECT_GE(stats.compile_timeouts, 1);
  EXPECT_GE(stats.compile_retries, 1);
  EXPECT_GT(stats.Total(), 0);
}

TEST(RetryPolicyTest, BackoffMath) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_s = 2.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_s = 6.0;
  EXPECT_EQ(policy.max_retries(), 3);
  EXPECT_DOUBLE_EQ(policy.BackoffBeforeRetry(1), 2.0);
  EXPECT_DOUBLE_EQ(policy.BackoffBeforeRetry(2), 4.0);
  EXPECT_DOUBLE_EQ(policy.BackoffBeforeRetry(3), 6.0);  // capped
  EXPECT_DOUBLE_EQ(policy.TotalBackoff(0), 0.0);
  EXPECT_DOUBLE_EQ(policy.TotalBackoff(3), 12.0);
  RetryPolicy none;
  none.max_attempts = 1;
  EXPECT_EQ(none.max_retries(), 0);
}

}  // namespace
}  // namespace qsteer
