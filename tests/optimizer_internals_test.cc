// Optimizer-internal behaviours on hand-built jobs: enforcer placement,
// broadcast-join resolution, DOP inheritance, virtual-dataset parallelism,
// index-apply extraction, and compilation-failure modes.
#include <gtest/gtest.h>

#include "optimizer/optimizer.h"
#include "optimizer/rule_registry.h"

namespace qsteer {
namespace {

class OptimizerInternalsTest : public ::testing::Test {
 protected:
  OptimizerInternalsTest() {
    StreamSet logs;
    logs.name = "logs";
    logs.columns = {
        {.name = "k", .distinct_count = 100000},
        {.name = "a", .distinct_count = 500},
    };
    int logs_id = catalog_.AddStreamSet(std::move(logs));
    for (int d = 0; d < 3; ++d) {
      EXPECT_TRUE(catalog_.AddStream(logs_id, "logs_d" + std::to_string(d), 50'000'000, 32).ok());
    }
    StreamSet dim;
    dim.name = "dim";
    dim.columns = {
        {.name = "dk", .distinct_count = 90000},
        {.name = "dv", .distinct_count = 40},
    };
    int dim_id = catalog_.AddStreamSet(std::move(dim));
    EXPECT_TRUE(catalog_.AddStream(dim_id, "dim_d0", 100000, 8).ok());

    universe_ = std::make_shared<ColumnUniverse>();
    k_ = universe_->GetOrAddBaseColumn(0, 0, "k");
    a_ = universe_->GetOrAddBaseColumn(0, 1, "a");
    dk_ = universe_->GetOrAddBaseColumn(1, 0, "dk");
    dv_ = universe_->GetOrAddBaseColumn(1, 1, "dv");
  }

  PlanNodePtr Scan(int set, int variant = 0) {
    Operator op;
    op.kind = OpKind::kGet;
    op.stream_set_id = set;
    op.stream_id = catalog_.stream_set(set).stream_ids[static_cast<size_t>(variant)];
    op.scan_columns = set == 0 ? std::vector<ColumnId>{k_, a_}
                               : std::vector<ColumnId>{dk_, dv_};
    return PlanNode::Make(op, {});
  }

  Job WrapJob(PlanNodePtr body) {
    Operator output;
    output.kind = OpKind::kOutput;
    Job job;
    job.name = "internals";
    job.day = 1;
    job.columns = universe_;
    job.root = PlanNode::Make(output, {std::move(body)});
    return job;
  }

  int CountKind(const PlanNodePtr& root, OpKind kind) {
    int n = 0;
    VisitPlan(root, [&](const PlanNode& node) {
      if (node.op.kind == kind) ++n;
    });
    return n;
  }

  const PlanNode* FindKind(const PlanNodePtr& root, OpKind kind) {
    const PlanNode* found = nullptr;
    VisitPlan(root, [&](const PlanNode& node) {
      if (node.op.kind == kind) found = &node;
    });
    return found;
  }

  Catalog catalog_;
  std::shared_ptr<ColumnUniverse> universe_;
  ColumnId k_, a_, dk_, dv_;
};

TEST_F(OptimizerInternalsTest, GroupByGetsRepartitionEnforcer) {
  Operator gb;
  gb.kind = OpKind::kGroupBy;
  gb.group_keys = {a_};
  gb.aggs = {{AggFunc::kCount, kInvalidColumn, universe_->AddDerivedColumn("c", 500)}};
  Job job = WrapJob(PlanNode::Make(gb, {Scan(0)}));
  Optimizer optimizer(&catalog_);
  Result<CompiledPlan> plan = optimizer.Compile(job, RuleConfig::Default());
  ASSERT_TRUE(plan.ok());
  // Scans deliver random partitioning; a hash aggregation needs a shuffle.
  const PlanNode* exchange = FindKind(plan.value().root, OpKind::kExchange);
  ASSERT_NE(exchange, nullptr);
  EXPECT_EQ(exchange->op.exchange, ExchangeKind::kRepartition);
  EXPECT_EQ(exchange->op.exchange_keys, (std::vector<ColumnId>{a_}));
  EXPECT_TRUE(plan.value().signature.Test(rules::kEnforceExchange));
  // The aggregation runs at the exchange's parallelism.
  const PlanNode* agg = FindKind(plan.value().root, OpKind::kHashAgg);
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->op.dop, exchange->op.dop);
}

TEST_F(OptimizerInternalsTest, BroadcastJoinBroadcastsAtProbeParallelism) {
  Operator join;
  join.kind = OpKind::kJoin;
  join.join_type = JoinType::kInner;
  join.left_keys = {k_};
  join.right_keys = {dk_};
  Job job = WrapJob(PlanNode::Make(join, {Scan(0), Scan(1)}));
  Optimizer optimizer(&catalog_);
  // Leave only broadcast joins available.
  RuleConfig config = RuleConfig::Default();
  for (RuleId id : {224, 225, 228, 229, 232, 233, 234, 235}) config.Disable(id);
  Result<CompiledPlan> plan = optimizer.Compile(job, config);
  ASSERT_TRUE(plan.ok());
  const PlanNode* bcast_join = FindKind(plan.value().root, OpKind::kBroadcastHashJoin);
  ASSERT_NE(bcast_join, nullptr);
  const PlanNode* bcast_exchange = FindKind(plan.value().root, OpKind::kExchange);
  ASSERT_NE(bcast_exchange, nullptr);
  EXPECT_EQ(bcast_exchange->op.exchange, ExchangeKind::kBroadcast);
  // The broadcast fan-out matches the probe side's (and the join's) DOP.
  EXPECT_EQ(bcast_exchange->op.dop, bcast_join->op.dop);
  EXPECT_TRUE(plan.value().signature.Test(rules::kEnforceBroadcast));
  // The big log side is the probe: its scan keeps its own parallelism.
  EXPECT_GT(bcast_join->op.dop, 1);
}

TEST_F(OptimizerInternalsTest, FilterInheritsChildDop) {
  Operator select;
  select.kind = OpKind::kSelect;
  select.predicate = Expr::Cmp(a_, CmpOp::kLe, 100);
  Job job = WrapJob(PlanNode::Make(select, {Scan(0)}));
  Optimizer optimizer(&catalog_);
  Result<CompiledPlan> plan = optimizer.Compile(job, RuleConfig::Default());
  ASSERT_TRUE(plan.ok());
  const PlanNode* filter = FindKind(plan.value().root, OpKind::kFilter);
  const PlanNode* scan = FindKind(plan.value().root, OpKind::kRangeScan);
  ASSERT_NE(filter, nullptr);
  ASSERT_NE(scan, nullptr);
  EXPECT_EQ(filter->op.dop, scan->op.dop);
  EXPECT_GT(scan->op.dop, 1);  // 50M rows want parallelism
}

TEST_F(OptimizerInternalsTest, VirtualDatasetAggregatesSourceParallelism) {
  Operator u;
  u.kind = OpKind::kUnionAll;
  Job job = WrapJob(PlanNode::Make(u, {Scan(0, 0), Scan(0, 1), Scan(0, 2)}));
  Optimizer optimizer(&catalog_);
  RuleConfig config = RuleConfig::Default();
  config.Disable(rules::kUnionAllToUnionAll);  // force the virtual dataset
  Result<CompiledPlan> plan = optimizer.Compile(job, config);
  ASSERT_TRUE(plan.ok());
  const PlanNode* vd = FindKind(plan.value().root, OpKind::kVirtualDataset);
  ASSERT_NE(vd, nullptr);
  int scan_dop_total = 0;
  VisitPlan(plan.value().root, [&](const PlanNode& node) {
    if (node.op.kind == OpKind::kRangeScan) scan_dop_total += node.op.dop;
  });
  EXPECT_EQ(vd->op.dop, scan_dop_total);
}

TEST_F(OptimizerInternalsTest, IndexApplyJoinEmbedsInnerStream) {
  Operator join;
  join.kind = OpKind::kJoin;
  join.join_type = JoinType::kInner;
  join.left_keys = {k_};
  join.right_keys = {dk_};  // dim's leading column: seekable
  Job job = WrapJob(PlanNode::Make(join, {Scan(0), Scan(1)}));
  Optimizer optimizer(&catalog_);
  RuleConfig config = RuleConfig::Default();
  // Disable every other join implementation, the left-side apply variant,
  // and join commutativity (otherwise the optimizer commutes the join and
  // seeks into the big log per dimension row — a cheaper plan).
  for (RuleId id : {224, 225, 226, 227, 228, 229, 230, 231, 233, 234, 235, 104, 105}) {
    config.Disable(id);
  }
  Result<CompiledPlan> plan = optimizer.Compile(job, config);
  ASSERT_TRUE(plan.ok());
  const PlanNode* apply = FindKind(plan.value().root, OpKind::kIndexApplyJoin);
  ASSERT_NE(apply, nullptr);
  EXPECT_EQ(apply->children.size(), 1u);
  EXPECT_EQ(apply->op.stream_id, catalog_.stream_set(1).stream_ids[0]);
  // The dim side is seeked, not scanned: only the probe scan remains.
  EXPECT_EQ(CountKind(plan.value().root, OpKind::kRangeScan), 1);
  EXPECT_TRUE(plan.value().signature.Test(232));
}

TEST_F(OptimizerInternalsTest, TopNRunsOnGatheredSingleton) {
  Operator top;
  top.kind = OpKind::kTop;
  top.limit = 10;
  top.sort_keys = {a_};
  Job job = WrapJob(PlanNode::Make(top, {Scan(0)}));
  Optimizer optimizer(&catalog_);
  Result<CompiledPlan> plan = optimizer.Compile(job, RuleConfig::Default());
  ASSERT_TRUE(plan.ok());
  const PlanNode* topn = FindKind(plan.value().root, OpKind::kTopNSort);
  if (topn == nullptr) topn = FindKind(plan.value().root, OpKind::kTopNHeap);
  ASSERT_NE(topn, nullptr);
  EXPECT_EQ(topn->op.dop, 1);
  const PlanNode* gather = FindKind(plan.value().root, OpKind::kExchange);
  ASSERT_NE(gather, nullptr);
  EXPECT_EQ(gather->op.exchange, ExchangeKind::kGather);
  EXPECT_TRUE(plan.value().signature.Test(rules::kEnforceGather));
}

TEST_F(OptimizerInternalsTest, NonOutputRootRejected) {
  Optimizer optimizer(&catalog_);
  Job job = WrapJob(Scan(0));
  job.root = Scan(0);  // missing the Output wrapper
  Result<CompiledPlan> plan = optimizer.Compile(job, RuleConfig::Default());
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(OptimizerInternalsTest, MemoBudgetsAreRespected) {
  // A join chain explores many alternatives; the memo must stay within the
  // configured budgets.
  PlanNodePtr body = Scan(0);
  Operator join;
  join.kind = OpKind::kJoin;
  join.join_type = JoinType::kInner;
  join.left_keys = {k_};
  join.right_keys = {dk_};
  body = PlanNode::Make(join, {body, Scan(1)});
  Job job = WrapJob(body);
  OptimizerOptions options;
  options.max_total_exprs = 200;
  options.max_exprs_per_group = 6;
  Optimizer optimizer(&catalog_, options);
  Result<CompiledPlan> plan = optimizer.Compile(job, RuleConfig::AllEnabled());
  ASSERT_TRUE(plan.ok());
  // Implementations may exceed the exploration cap, but not unboundedly.
  EXPECT_LT(plan.value().memo_exprs, 1000);
}

}  // namespace
}  // namespace qsteer
