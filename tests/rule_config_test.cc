#include "optimizer/rule_config.h"

#include <gtest/gtest.h>

#include "optimizer/rule_registry.h"

namespace qsteer {
namespace {

TEST(RuleCategories, LayoutMatchesTable2) {
  // Paper Table 2: 37 required, 46 off-by-default, 141 on-by-default,
  // 32 implementation; 256 total, 219 non-required.
  EXPECT_EQ(kNumRequired + kNumOffByDefault + kNumOnByDefault + kNumImplementation, 256);
  EXPECT_EQ(kNumNonRequired, 219);
  int counts[4] = {0, 0, 0, 0};
  for (RuleId id = 0; id < kNumRules; ++id) {
    counts[static_cast<int>(CategoryOfRule(id))]++;
  }
  EXPECT_EQ(counts[static_cast<int>(RuleCategory::kRequired)], 37);
  EXPECT_EQ(counts[static_cast<int>(RuleCategory::kOffByDefault)], 46);
  EXPECT_EQ(counts[static_cast<int>(RuleCategory::kOnByDefault)], 141);
  EXPECT_EQ(counts[static_cast<int>(RuleCategory::kImplementation)], 32);
}

TEST(RuleConfig, DefaultDisablesExactlyOffByDefault) {
  RuleConfig config = RuleConfig::Default();
  for (RuleId id = 0; id < kNumRules; ++id) {
    bool expected = CategoryOfRule(id) != RuleCategory::kOffByDefault;
    EXPECT_EQ(config.IsEnabled(id), expected) << id;
  }
  EXPECT_EQ(config.EnabledNonRequiredCount(), kNumNonRequired - kNumOffByDefault);
  EXPECT_TRUE(config.DisabledVsDefault().empty());
}

TEST(RuleConfig, RequiredRulesCannotBeDisabled) {
  RuleConfig config = RuleConfig::Default();
  config.Disable(rules::kGetToRange);
  config.Disable(rules::kEnforceExchange);
  EXPECT_TRUE(config.IsEnabled(rules::kGetToRange));
  EXPECT_TRUE(config.IsEnabled(rules::kEnforceExchange));
}

TEST(RuleConfig, HintsEnableAndDisable) {
  RuleConfig config = RuleConfig::WithHints({rules::kCorrelatedJoinOnUnionAll2},
                                            {rules::kHashJoinImpl1, rules::kJoinCommute});
  EXPECT_TRUE(config.IsEnabled(rules::kCorrelatedJoinOnUnionAll2));
  EXPECT_FALSE(config.IsEnabled(rules::kHashJoinImpl1));
  EXPECT_FALSE(config.IsEnabled(rules::kJoinCommute));
  std::vector<RuleId> diff = config.DisabledVsDefault();
  EXPECT_EQ(diff, (std::vector<RuleId>{rules::kJoinCommute, rules::kHashJoinImpl1}));
}

TEST(RuleConfig, EqualityAndHash) {
  RuleConfig a = RuleConfig::Default();
  RuleConfig b = RuleConfig::Default();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  b.Disable(rules::kMergeJoinImpl);
  EXPECT_NE(a, b);
  EXPECT_NE(a.Hash(), b.Hash());
}

TEST(RuleRegistry, Has256RulesWithUniqueNames) {
  const RuleRegistry& registry = RuleRegistry::Instance();
  std::set<std::string> names;
  for (RuleId id = 0; id < kNumRules; ++id) {
    ASSERT_NE(registry.rule(id), nullptr) << id;
    EXPECT_EQ(registry.rule(id)->id(), id);
    EXPECT_FALSE(registry.name(id).empty());
    names.insert(registry.name(id));
  }
  EXPECT_EQ(names.size(), 256u);
}

TEST(RuleRegistry, PaperExampleRulesExist) {
  const RuleRegistry& registry = RuleRegistry::Instance();
  // Rules named in the paper (Tables 2 and 4).
  for (const char* name :
       {"EnforceExchange", "BuildOutput", "GetToRange", "SelectToFilter",
        "CorrelatedJoinOnUnionAll1", "GroupbyOnJoin1", "NormalizeReduce", "CollapseSelects",
        "SelectPartitions", "SequenceProjectOnUnion", "HashJoinImpl1", "JoinToApplyIndex1",
        "UnionAllToVirtualDataset", "SelectOnProject", "GroupbyBelowUnionAll",
        "UnionAllToUnionAll", "TopOnRestrRemap", "SelectOnTrue", "ProcessOnUnionAll",
        "SelectPredNormalized"}) {
    EXPECT_GE(registry.FindByName(name), 0) << name;
  }
  EXPECT_EQ(registry.FindByName("NoSuchRule"), -1);
}

TEST(RuleRegistry, CategoriesOfKnownRules) {
  EXPECT_EQ(CategoryOfRule(rules::kGetToRange), RuleCategory::kRequired);
  EXPECT_EQ(CategoryOfRule(rules::kCorrelatedJoinOnUnionAll1), RuleCategory::kOffByDefault);
  EXPECT_EQ(CategoryOfRule(rules::kCollapseSelects), RuleCategory::kOnByDefault);
  EXPECT_EQ(CategoryOfRule(rules::kHashJoinImpl1), RuleCategory::kImplementation);
}

TEST(RuleRegistry, ImplementationRulesPartitioned) {
  const RuleRegistry& registry = RuleRegistry::Instance();
  for (const Rule* rule : registry.implementation_rules()) {
    EXPECT_TRUE(rule->is_implementation()) << rule->name();
  }
  for (const Rule* rule : registry.transformation_rules()) {
    EXPECT_FALSE(rule->is_implementation()) << rule->name();
  }
  EXPECT_GT(registry.implementation_rules().size(), 15u);
  EXPECT_GT(registry.transformation_rules().size(), 100u);
}

TEST(RuleRegistry, IdsInCategorySizes) {
  const RuleRegistry& registry = RuleRegistry::Instance();
  EXPECT_EQ(registry.IdsInCategory(RuleCategory::kRequired).size(), 37u);
  EXPECT_EQ(registry.IdsInCategory(RuleCategory::kOffByDefault).size(), 46u);
  EXPECT_EQ(registry.IdsInCategory(RuleCategory::kOnByDefault).size(), 141u);
  EXPECT_EQ(registry.IdsInCategory(RuleCategory::kImplementation).size(), 32u);
}

}  // namespace
}  // namespace qsteer
