// Sharded discovery orchestrator: manifest/artifact roundtrip, partition
// determinism, the bit-identity of the sharded merge against the unsharded
// reference across shard and worker counts, lease/straggler accounting,
// resume classification (reuse / recompute / quarantine / stale), and the
// persistent compile-cache warm start. The crash-window kill schedule is
// exercised exhaustively by shard_chaos_test; here resume is driven by
// targeted single kills and hand-damaged files.
#include "discovery/orchestrator.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "discovery/manifest.h"
#include "workload/generator.h"

namespace qsteer {
namespace {

class TempDir {
 public:
  TempDir() {
    dir_ = std::filesystem::temp_directory_path() /
           ("qsteer_discovery_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() { std::filesystem::remove_all(dir_); }
  std::string path() const { return dir_.string(); }
  std::string File(const std::string& name) const { return (dir_ / name).string(); }

 private:
  static inline int counter_ = 0;
  std::filesystem::path dir_;
};

// qsteer-lint: allow(crc-before-trust) test helper reads bytes to corrupt or inspect them; verification is the code under test
std::string RawRead(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void RawWrite(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

std::string HexSig(int bit) {
  RuleSignature s;
  s.Set(bit);
  return s.ToHexString();
}

// ------------------------------------------------------------- manifest

ShardArtifact SampleArtifact() {
  ShardArtifact artifact;
  artifact.workload = "D";
  artifact.day = 7;
  artifact.shard_index = 2;
  artifact.num_shards = 8;
  artifact.partition_hash = 0xdeadbeefcafe1234ull;
  artifact.jobs = 3;
  artifact.observations.push_back({HexSig(3), -33.333333333333336, "DISABLE(JoinCommute)"});
  artifact.observations.push_back({HexSig(9), -0.125, ""});
  ShardDiffRow row;
  row.signature_hex = HexSig(3);
  row.change_pct = -33.333333333333336;
  row.job_name = "D-t03-d007-s02";
  row.only_in_default = {4, 17, 102};
  row.only_in_new = {};
  artifact.diff_rows.push_back(row);
  ShardDiffRow empty_ids;
  empty_ids.signature_hex = HexSig(9);
  empty_ids.change_pct = -0.125;
  empty_ids.job_name = "D-t09-d007-s01";
  artifact.diff_rows.push_back(empty_ids);
  return artifact;
}

TEST(ShardArtifactTest, SerializeParseRoundtripIsExact) {
  ShardArtifact artifact = SampleArtifact();
  Result<ShardArtifact> parsed = ShardArtifact::Parse(artifact.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const ShardArtifact& back = parsed.value();
  EXPECT_EQ(back.workload, "D");
  EXPECT_EQ(back.day, 7);
  EXPECT_EQ(back.shard_index, 2);
  EXPECT_EQ(back.num_shards, 8);
  EXPECT_EQ(back.partition_hash, 0xdeadbeefcafe1234ull);
  EXPECT_EQ(back.jobs, 3);
  ASSERT_EQ(back.observations.size(), 2u);
  EXPECT_EQ(back.observations[0].signature_hex, HexSig(3));
  // %.17g preserves the double bit-for-bit through the text form.
  EXPECT_EQ(back.observations[0].improvement_pct, -33.333333333333336);
  EXPECT_EQ(back.observations[0].hints, "DISABLE(JoinCommute)");
  EXPECT_EQ(back.observations[1].hints, "");
  ASSERT_EQ(back.diff_rows.size(), 2u);
  EXPECT_EQ(back.diff_rows[0].only_in_default, (std::vector<int>{4, 17, 102}));
  EXPECT_TRUE(back.diff_rows[0].only_in_new.empty());
  EXPECT_TRUE(back.diff_rows[1].only_in_default.empty());
  // The roundtrip is byte-stable: parse(serialize(x)).serialize == serialize(x).
  EXPECT_EQ(back.Serialize(), artifact.Serialize());
}

TEST(ShardArtifactTest, ParseRejectsWrongHeaderAndTruncation) {
  EXPECT_FALSE(ShardArtifact::Parse("").ok());
  EXPECT_FALSE(ShardArtifact::Parse("# some other file v1\n").ok());
  std::string bytes = SampleArtifact().Serialize();
  EXPECT_FALSE(ShardArtifact::Parse(bytes.substr(0, bytes.size() / 2)).ok());
}

TEST(ShardManifestTest, RoundtripAndMatchesRequireSamePartitionIdentity) {
  ShardArtifact artifact = SampleArtifact();
  ShardManifest manifest;
  manifest.workload = artifact.workload;
  manifest.day = artifact.day;
  manifest.shard_index = artifact.shard_index;
  manifest.num_shards = artifact.num_shards;
  manifest.partition_hash = artifact.partition_hash;
  manifest.jobs = artifact.jobs;
  manifest.groups = 2;
  manifest.attempt = 2;
  manifest.artifact_file = ShardArtifactName(2);
  manifest.artifact_bytes = static_cast<int64_t>(artifact.Serialize().size());
  manifest.artifact_crc32 = 0x89abcdefu;

  Result<ShardManifest> parsed = ShardManifest::Parse(manifest.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().Serialize(), manifest.Serialize());
  EXPECT_EQ(parsed.value().artifact_crc32, 0x89abcdefu);
  EXPECT_EQ(parsed.value().attempt, 2);

  EXPECT_TRUE(manifest.Matches(artifact));
  ShardArtifact foreign = artifact;
  foreign.partition_hash ^= 1;
  EXPECT_FALSE(manifest.Matches(foreign));
  foreign = artifact;
  foreign.day = 8;
  EXPECT_FALSE(manifest.Matches(foreign));
  foreign = artifact;
  foreign.num_shards = 16;
  EXPECT_FALSE(manifest.Matches(foreign));
}

TEST(ShardManifestTest, FileNamesAreStable) {
  EXPECT_EQ(ShardArtifactName(0), "shard_00000.artifact");
  EXPECT_EQ(ShardManifestName(13), "shard_00013.manifest");
}

// ----------------------------------------------------------- orchestrator

class DiscoveryTest : public ::testing::Test {
 protected:
  DiscoveryTest() : workload_(Spec()) {}

  static WorkloadSpec Spec() {
    WorkloadSpec spec;
    spec.name = "D";
    spec.seed = 7117;
    spec.num_templates = 12;
    spec.num_stream_sets = 10;
    return spec;
  }

  static DiscoveryOptions Options(const std::string& dir) {
    DiscoveryOptions options;
    options.dir = dir;
    options.num_shards = 4;
    options.max_jobs = 16;
    options.pipeline.max_candidate_configs = 24;
    options.pipeline.configs_to_execute = 4;
    return options;
  }

  UnshardedDiscovery Reference(int day, DiscoveryOptions options) {
    Result<UnshardedDiscovery> reference = DiscoverUnsharded(&workload_, day, options);
    EXPECT_TRUE(reference.ok()) << reference.status().ToString();
    return reference.value();
  }

  DiscoveryResult RunToCompletion(int day, const DiscoveryOptions& options) {
    ShardOrchestrator orchestrator(&workload_, day, options);
    Result<DiscoveryResult> run = orchestrator.Run();
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    return run.value();
  }

  Workload workload_;
};

TEST_F(DiscoveryTest, MergeIsBitIdenticalAcrossShardAndWorkerCounts) {
  // The headline invariant: for every shard count and every worker count,
  // the merged recommender store and merged rule-diff table are the exact
  // bytes of the single-process unsharded pass.
  UnshardedDiscovery reference = Reference(3, Options(""));
  ASSERT_FALSE(reference.store.empty());
  ASSERT_FALSE(reference.diff_table.empty());
  for (int shards : {1, 3, 8}) {
    for (int workers : {0, 4}) {
      TempDir dir;
      DiscoveryOptions options = Options(dir.path());
      options.num_shards = shards;
      options.num_workers = workers;
      DiscoveryResult result = RunToCompletion(3, options);
      ASSERT_TRUE(result.completed);
      EXPECT_EQ(result.merged_store, reference.store)
          << "shards=" << shards << " workers=" << workers;
      EXPECT_EQ(result.merged_diff_table, reference.diff_table)
          << "shards=" << shards << " workers=" << workers;
      EXPECT_EQ(result.counters.jobs_analyzed, reference.jobs_analyzed);
      EXPECT_EQ(result.counters.shards_recomputed, shards);
    }
  }
}

TEST_F(DiscoveryTest, ResumeOfACompletedRunReusesEveryShardWithoutRecompute) {
  TempDir dir;
  DiscoveryOptions options = Options(dir.path());
  DiscoveryResult first = RunToCompletion(5, options);
  ASSERT_TRUE(first.completed);

  options.resume = true;
  DiscoveryResult second = RunToCompletion(5, options);
  ASSERT_TRUE(second.completed);
  EXPECT_EQ(second.counters.shards_reused, options.num_shards);
  EXPECT_EQ(second.counters.shards_recomputed, 0);
  EXPECT_EQ(second.counters.shards_quarantined, 0);
  EXPECT_EQ(second.counters.jobs_analyzed, 0) << "no job re-analyzed";
  EXPECT_EQ(second.merged_store, first.merged_store);
  EXPECT_EQ(second.merged_diff_table, first.merged_diff_table);
}

TEST_F(DiscoveryTest, ResumeAfterMidRunKillIsByteIdenticalAcrossWorkerCounts) {
  // The golden crash-resume contract: kill the orchestrator mid-run (after
  // two shard commits), resume, and the merged RuleDiff tables must be
  // byte-identical to an uninterrupted run — for 1, 2, and 8 workers.
  UnshardedDiscovery reference = Reference(4, Options(""));
  for (int workers : {1, 2, 8}) {
    TempDir dir;
    DiscoveryOptions options = Options(dir.path());
    options.num_workers = workers;
    // Windows visit in order: post-partition, then 3 per committed shard.
    // Index 6 is the post-manifest window of the second commit: two shards
    // are durable, two are not.
    options.crash_hook_for_testing = [](const DiscoveryCrashPoint& point) {
      DiscoveryCrashDecision decision;
      decision.crash = point.index == 6;
      return decision;
    };
    DiscoveryResult killed = RunToCompletion(4, options);
    ASSERT_FALSE(killed.completed);
    EXPECT_EQ(killed.crash_window, "post-manifest");

    options.crash_hook_for_testing = nullptr;
    options.resume = true;
    DiscoveryResult resumed = RunToCompletion(4, options);
    ASSERT_TRUE(resumed.completed);
    EXPECT_EQ(resumed.counters.shards_reused, 2) << "workers=" << workers;
    EXPECT_EQ(resumed.counters.shards_recomputed, 2);
    EXPECT_EQ(resumed.counters.shards_quarantined, 0);
    EXPECT_EQ(resumed.merged_store, reference.store) << "workers=" << workers;
    EXPECT_EQ(resumed.merged_diff_table, reference.diff_table) << "workers=" << workers;
  }
}

TEST_F(DiscoveryTest, TornArtifactUnderValidManifestIsQuarantinedAndRecomputed) {
  TempDir dir;
  DiscoveryOptions options = Options(dir.path());
  DiscoveryResult first = RunToCompletion(3, options);
  ASSERT_TRUE(first.completed);

  // Bit rot after commit: the manifest is intact but the artifact bytes no
  // longer match its fingerprint. Resume must quarantine, not trust.
  std::string artifact_path = dir.File(ShardArtifactName(1));
  std::string bytes = RawRead(artifact_path);
  ASSERT_FALSE(bytes.empty());
  RawWrite(artifact_path, bytes.substr(0, bytes.size() / 2));

  options.resume = true;
  DiscoveryResult second = RunToCompletion(3, options);
  ASSERT_TRUE(second.completed);
  EXPECT_EQ(second.counters.shards_quarantined, 1);
  EXPECT_EQ(second.counters.shards_reused, options.num_shards - 1);
  EXPECT_EQ(second.counters.shards_recomputed, 1);
  EXPECT_TRUE(std::filesystem::exists(artifact_path + ".quarantined"));
  EXPECT_EQ(second.merged_store, first.merged_store);
  EXPECT_EQ(second.merged_diff_table, first.merged_diff_table);
}

TEST_F(DiscoveryTest, CorruptManifestIsQuarantinedAndRecomputed) {
  TempDir dir;
  DiscoveryOptions options = Options(dir.path());
  DiscoveryResult first = RunToCompletion(3, options);
  ASSERT_TRUE(first.completed);

  std::string manifest_path = dir.File(ShardManifestName(2));
  std::string bytes = RawRead(manifest_path);
  ASSERT_GT(bytes.size(), 10u);
  bytes[10] ^= 0x01;  // the crc32 footer no longer matches
  RawWrite(manifest_path, bytes);

  options.resume = true;
  DiscoveryResult second = RunToCompletion(3, options);
  ASSERT_TRUE(second.completed);
  EXPECT_GE(second.counters.shards_quarantined, 1);
  EXPECT_EQ(second.counters.shards_recomputed, 1);
  EXPECT_TRUE(std::filesystem::exists(manifest_path + ".quarantined"));
  EXPECT_EQ(second.merged_store, first.merged_store);
}

TEST_F(DiscoveryTest, MissingManifestMeansUncommittedRecomputeWithoutQuarantine) {
  // An artifact without its manifest is simply an uncommitted shard (the
  // crash fell between the two writes): recompute, nothing to quarantine.
  TempDir dir;
  DiscoveryOptions options = Options(dir.path());
  DiscoveryResult first = RunToCompletion(3, options);
  ASSERT_TRUE(first.completed);
  std::filesystem::remove(dir.File(ShardManifestName(0)));

  options.resume = true;
  DiscoveryResult second = RunToCompletion(3, options);
  ASSERT_TRUE(second.completed);
  EXPECT_EQ(second.counters.shards_quarantined, 0);
  EXPECT_EQ(second.counters.shards_recomputed, 1);
  EXPECT_EQ(second.counters.shards_reused, options.num_shards - 1);
  EXPECT_EQ(second.merged_store, first.merged_store);
}

TEST_F(DiscoveryTest, ForeignPartitionArtifactsAreStaleNotTrusted) {
  // Artifacts from a run over a different job selection (different
  // partition hash) are intact but belong to another partition: resume
  // must recompute, counting them stale, and must not quarantine them.
  TempDir dir;
  DiscoveryOptions options = Options(dir.path());
  ASSERT_TRUE(RunToCompletion(3, options).completed);

  options.resume = true;
  options.max_jobs = 12;  // different day selection => different partition hash
  UnshardedDiscovery reference = Reference(3, options);
  DiscoveryResult result = RunToCompletion(3, options);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.counters.shards_stale, options.num_shards);
  EXPECT_EQ(result.counters.shards_quarantined, 0);
  EXPECT_EQ(result.counters.shards_recomputed, options.num_shards);
  EXPECT_EQ(result.merged_store, reference.store);
}

TEST_F(DiscoveryTest, StragglersAreSpeculativelyRedispatchedWithoutChangingOutput) {
  // Every dispatch is a straggler: leases expire and speculative copies are
  // dispatched up to max_lease_attempts. The schedule shapes counters and
  // commit order only — the merged bytes must not move.
  UnshardedDiscovery reference = Reference(3, Options(""));
  TempDir dir;
  DiscoveryOptions options = Options(dir.path());
  options.straggler_fraction = 1.0;
  options.straggler_factor = 100.0;
  options.lease_ticks = 50;
  DiscoveryResult result = RunToCompletion(3, options);
  ASSERT_TRUE(result.completed);
  EXPECT_GT(result.counters.stragglers, 0);
  EXPECT_GT(result.counters.leases_expired, 0);
  EXPECT_GT(result.counters.speculative_dispatches, 0);
  EXPECT_GT(result.counters.leases_granted,
            static_cast<int64_t>(options.num_shards));
  EXPECT_GT(result.counters.makespan_ticks, 0);
  EXPECT_EQ(result.merged_store, reference.store);
  EXPECT_EQ(result.merged_diff_table, reference.diff_table);
}

TEST_F(DiscoveryTest, CacheWarmStartLoadsEntriesAndPreservesOutput) {
  TempDir cold_dir;
  TempDir warm_dir;
  TempDir cache_dir;
  std::string cache_file = cache_dir.File("compile_cache.qcc");

  DiscoveryOptions options = Options(cold_dir.path());
  options.save_cache_file = cache_file;
  DiscoveryResult cold = RunToCompletion(3, options);
  ASSERT_TRUE(cold.completed);
  ASSERT_TRUE(std::filesystem::exists(cache_file));

  DiscoveryOptions warm_options = Options(warm_dir.path());
  warm_options.warm_cache_file = cache_file;
  DiscoveryResult warm = RunToCompletion(3, warm_options);
  ASSERT_TRUE(warm.completed);
  EXPECT_GT(warm.counters.cache_warm_loaded, 0);
  EXPECT_EQ(warm.counters.cache_warm_rejected, 0);
  EXPECT_EQ(warm.merged_store, cold.merged_store) << "warm cache never changes plans";
  EXPECT_EQ(warm.merged_diff_table, cold.merged_diff_table);
}

TEST_F(DiscoveryTest, CorruptWarmCacheDegradesToColdNeverWrongPlans) {
  TempDir cold_dir;
  TempDir warm_dir;
  TempDir cache_dir;
  std::string cache_file = cache_dir.File("compile_cache.qcc");
  DiscoveryOptions options = Options(cold_dir.path());
  options.save_cache_file = cache_file;
  DiscoveryResult cold = RunToCompletion(3, options);
  ASSERT_TRUE(cold.completed);

  std::string bytes = RawRead(cache_file);
  bytes[bytes.size() / 2] ^= 0x40;
  RawWrite(cache_file, bytes);

  DiscoveryOptions warm_options = Options(warm_dir.path());
  warm_options.warm_cache_file = cache_file;
  DiscoveryResult warm = RunToCompletion(3, warm_options);
  ASSERT_TRUE(warm.completed);
  EXPECT_EQ(warm.counters.cache_warm_loaded, 0);
  EXPECT_GE(warm.counters.cache_warm_rejected, 1);
  EXPECT_EQ(warm.merged_store, cold.merged_store);
  EXPECT_EQ(warm.merged_diff_table, cold.merged_diff_table);
}

TEST_F(DiscoveryTest, SummaryAndMergedFilesAreChecksummedOnDisk) {
  TempDir dir;
  DiscoveryOptions options = Options(dir.path());
  DiscoveryResult result = RunToCompletion(3, options);
  ASSERT_TRUE(result.completed);
  for (const char* name :
       {"merged_recommendations.qrs", "merged_rulediff.txt", "discovery_summary.txt"}) {
    std::string raw = RawRead(dir.File(name));
    ASSERT_FALSE(raw.empty()) << name;
    EXPECT_NE(raw.find("# crc32 "), std::string::npos) << name << " lacks a footer";
  }
}

}  // namespace
}  // namespace qsteer
