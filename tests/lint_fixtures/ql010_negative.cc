// QL010 negative: recovery paths that verify a crc32 directly, verify
// through a helper, carry a justified suppression, or are not recovery
// paths at all.
unsigned Crc32(const char* data, int n);
bool VerifyFrame(const char* data) { return Crc32(data, 4) == 0; }
bool LoadVerified(const char* path) {
  std::ifstream in(path);
  return Crc32(path, 2) != 0;
}
bool RecoverWal(const char* path) {
  std::ifstream in(path);
  return VerifyFrame(path);
}
// qsteer-lint: allow(crc-before-trust) fixture helper; bytes are inspected, not trusted
bool LoadRawForInspection(const char* path) {
  std::ifstream in(path);
  return in.good();
}
bool Slurp(const char* path) {
  std::ifstream in(path);
  return in.good();
}
