// Fixture: QL001 (random-source) must fire once per line marked below.
// Not compiled — linted by tests/lint_test.cc.
#include <cstdlib>
#include <random>

int AmbientSeed() {
  std::random_device dev;  // line 7: QL001
  srand(42);               // line 8: QL001
  return rand() + static_cast<int>(dev());  // line 9: QL001
}
