// Fixture: nothing here may fire QL001 — seeded PRNG use, the banned names
// inside identifiers, strings, and comments only.
#include "common/random.h"

int Operand(int x);

int SeededDraw() {
  // rand() and srand() in a comment are prose, not code.
  const char* text = "calls rand() and std::random_device";
  int operand_count = Operand(3);
  qsteer::Pcg32 rng(7);
  (void)text;
  return static_cast<int>(rng.NextU32()) + operand_count;
}
