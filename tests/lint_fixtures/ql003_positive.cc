// Fixture: a file that serializes state and iterates an unordered
// container with no sort in sight — QL003 must fire on the loop line.
#include <string>
#include <unordered_map>

struct Table {
  std::unordered_map<int, std::string> rows_;
  std::string Serialize() const;
};

std::string Table::Serialize() const {
  std::string out;
  for (const auto& [key, value] : rows_) {  // line 13: QL003
    out += value;
  }
  return out;
}
