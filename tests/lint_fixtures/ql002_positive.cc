// Fixture: QL002 (wall-clock) must fire once per line marked below.
// Not compiled — linted by tests/lint_test.cc.
#include <chrono>
#include <ctime>

double Now() {
  auto a = std::chrono::steady_clock::now();           // line 7: QL002
  auto b = std::chrono::system_clock::now();           // line 8: QL002
  auto c = std::chrono::high_resolution_clock::now();  // line 9: QL002
  long d = time(nullptr);                              // line 10: QL002
  struct timespec ts;
  clock_gettime(0, &ts);  // line 12: QL002
  (void)a;
  (void)b;
  (void)c;
  return static_cast<double>(d) + static_cast<double>(ts.tv_sec);
}
