// Fixture: nothing here may fire QL004 — value-keyed containers and
// non-ordering smart-pointer use.
#include <map>
#include <memory>
#include <set>
#include <string>

std::set<int> ids;
std::map<std::string, int> names;
std::map<int, const char*> labels;  // pointer *value*, not pointer *key*

bool IsNull(const std::shared_ptr<int>& p) { return p.get() != nullptr; }
bool Smaller(const std::shared_ptr<int>& p, int limit) { return *p.get() < limit; }
