// Fixture: nothing here may fire QL002 — justified suppressions in both
// the name form and the id form, plus `time(` lookalikes.
#include <chrono>

double Runtime(double base);

double Measured() {
  // qsteer-lint: allow(wall-clock) fixture: observability-only timing
  auto start = std::chrono::steady_clock::now();
  double runtime = Runtime(1.0);
  auto end = std::chrono::steady_clock::now();  // qsteer-lint: allow(QL002) fixture: id-form suppression
  return std::chrono::duration<double>(end - start).count() + runtime;
}
