// Fixture: directives without justifications or naming unknown rules fire
// QL006 and suppress nothing — the underlying QL002 still fires too.
#include <chrono>

double Now() {
  // qsteer-lint: allow(wall-clock)
  auto now = std::chrono::steady_clock::now();  // line 7: QL002 (not suppressed)
  // qsteer-lint: allow(QL999) no such rule
  // qsteer-lint: frobnicate everything
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}
