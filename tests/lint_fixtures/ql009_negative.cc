// QL009 negative: the blessed %.17g everywhere, integer to_string, %d/%s
// conversions, and scan-side %lg (parsing back what %.17g wrote is
// lossless) — all fine in a serializing file.
struct Blob {
  double weight;
  int count;
};
int snprintf_shim(char* buf, int n, const char* fmt, double v);
int sscanf_shim(const char* s, const char* fmt, double* v);
std::string SerializeBlob(const Blob& blob) {
  char buf[64];
  snprintf_shim(buf, 64, "w=%.17g\n", blob.weight);
  snprintf_shim(buf, 64, "n=%d tag=%s 100%%\n", blob.weight);
  std::string out = buf;
  out += std::to_string(blob.count);
  return out;
}
bool DeserializeBlob(const char* text, Blob* blob) {
  return sscanf_shim(text, "w=%lg\n", &blob->weight) == 1;
}
