// QL007 positive: Status/Result-returning calls whose value is dropped.
// Self-contained declarations: the model is built from this file alone.
struct Status {
  bool ok() const { return true; }
};
struct Store {
  Status Flush();
  Status Close();
};
Status Reload();
void Drive(Store& store) {
  store.Flush();
  Reload();
  (void)store.Close();
  // qsteer-lint: allow(unchecked-status) justified best-effort close
  (void)store.Close();
  store.Flush();  // qsteer-lint: allow(unchecked-status) a directive cannot silence a bare drop
}
void DriveUnbraced(Store& store) {
  if (store.Flush().ok()) store.Flush();
}
