// QL008 negative: every nesting acquires in the same order (a_ before
// b_), so the extracted graph is acyclic and the file lints clean.
struct Mutex {
  void Lock();
  void Unlock();
};
struct MutexLock {
  explicit MutexLock(Mutex& mu);
};
struct Engine {
  void AB() {
    MutexLock lock_a(a_);
    MutexLock lock_b(b_);
  }
  void AlsoAB() {
    a_.Lock();
    MutexLock lock_b(b_);
    a_.Unlock();
  }
  Mutex a_;
  Mutex b_;
};
