// QL009 positive: a serializing file (defines a *Serialize* function)
// formatting floating point with anything but %.17g.
struct Blob {
  double weight;
};
int snprintf_shim(char* buf, int n, const char* fmt, double v);
std::string SerializeBlob(const Blob& blob) {
  char buf[64];
  snprintf_shim(buf, 64, "w=%.6f\n", blob.weight);
  snprintf_shim(buf, 64, "s=%g e=%12.5e\n", blob.weight);
  double w = blob.weight;
  std::string out = buf;
  out += std::to_string(w);
  return out;
}
