// QL007 negative: every Status/Result is consumed (or the drop is both
// explicit and justified), so the file lints clean.
struct Status {
  bool ok() const { return true; }
};
struct Store {
  Status Flush();
  int Size();
};
Status Propagate(Store& store) {
  Status status = store.Flush();
  if (!status.ok()) return status;
  if (!store.Flush().ok()) return status;
  store.Size();
  // qsteer-lint: allow(unchecked-status) final flush is best-effort on shutdown
  (void)store.Flush();
  return store.Flush();
}
