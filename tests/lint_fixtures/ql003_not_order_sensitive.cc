// Fixture: unordered iteration in a file with no serialization markers —
// QL003 is scoped to files that emit ordered bytes, so nothing fires.
#include <unordered_map>

struct Counters {
  std::unordered_map<int, int> counts_;
  int Total() const;
};

int Counters::Total() const {
  int total = 0;
  for (const auto& [key, value] : counts_) total += value;
  return total;
}
