// Fixture: QL004 (pointer-ordering) must fire once per line marked below.
// Not compiled — linted by tests/lint_test.cc.
#include <map>
#include <memory>
#include <set>

struct Node {};

std::set<Node*> live_nodes;       // line 9: QL004
std::map<Node*, int> ref_counts;  // line 10: QL004
using NodeOrder = std::less<Node*>;  // line 11: QL004

bool Before(const std::unique_ptr<Node>& a, const std::unique_ptr<Node>& b) {
  return a.get() < b.get();  // line 14: QL004
}
