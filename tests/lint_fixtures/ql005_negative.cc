// Fixture: the same includes are allowed outside src/core, src/optimizer,
// and src/service (this path contains none of them) — QL005 stays quiet.
#include <ctime>
#include <random>
