// Fixture: banned includes inside a deterministic layer (the fixture path
// contains "src/core/", which is what QL005 keys on). One finding per line.
#include <ctime>       // line 3: QL005
#include <random>      // line 4: QL005
#include <sys/time.h>  // line 5: QL005
#include <time.h>      // line 6: QL005
