// Fixture: a catalog-layer statistics file that serializes a histogram
// cache straight out of an unordered container — QL003 must fire even
// though src/catalog is outside the QL005 layer gate (QL003 is
// content-triggered by the Serialize marker, not path-gated).
#include <memory>
#include <string>
#include <unordered_map>

struct Histogram {
  std::string text;
};

struct StatsCache {
  std::unordered_map<unsigned long long, std::shared_ptr<Histogram>> cache_;
  std::string Serialize() const;
};

std::string StatsCache::Serialize() const {
  std::string out;
  for (const auto& [key, histogram] : cache_) {  // line 20: QL003
    out += histogram->text;
  }
  return out;
}
