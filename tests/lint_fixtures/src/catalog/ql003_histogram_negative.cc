// Fixture: the shape the real src/catalog/stats_model.cc uses — an ordered
// std::map cache plus a construction-ordered bucket vector — must stay
// silent under QL003 even though the file serializes.
#include <map>
#include <memory>
#include <string>
#include <vector>

struct Bucket {
  long long lo = 0;
  long long hi = 0;
};

struct Histogram {
  std::vector<Bucket> buckets_;
  std::string Serialize() const;
};

struct StatsCache {
  std::map<unsigned long long, std::shared_ptr<Histogram>> cache_;
  std::string Serialize() const;
};

std::string Histogram::Serialize() const {
  std::string out;
  // buckets_ is an ordered vector; emission order is construction order.
  for (const Bucket& bucket : buckets_) {
    out += std::to_string(bucket.lo) + " " + std::to_string(bucket.hi) + "\n";
  }
  return out;
}

std::string StatsCache::Serialize() const {
  std::string out;
  for (const auto& [key, histogram] : cache_) {  // std::map: key-ordered
    out += histogram->Serialize();
  }
  return out;
}
