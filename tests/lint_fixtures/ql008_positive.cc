// QL008 positive: a seeded lock-order inversion. AB() nests a_ -> b_,
// BA() nests b_ -> a_; the extracted graph has a cycle.
struct Mutex {
  void Lock();
  void Unlock();
};
struct MutexLock {
  explicit MutexLock(Mutex& mu);
};
struct Engine {
  void AB() {
    MutexLock lock_a(a_);
    MutexLock lock_b(b_);
  }
  void BA() {
    MutexLock lock_b(b_);
    MutexLock lock_a(a_);
  }
  Mutex a_;
  Mutex b_;
};
