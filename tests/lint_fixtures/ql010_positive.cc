// QL010 positive: recovery-path functions (Load/Parse/... in the name)
// that read raw bytes and never verify a checksum.
struct Result {
  bool ok() const;
};
Result ReadFileToString(const char* path);
bool LoadManifest(const char* path) {
  std::ifstream in(path);
  return in.good();
}
bool ParseSnapshot(const char* path) {
  Result bytes = ReadFileToString(path);
  return bytes.ok();
}
