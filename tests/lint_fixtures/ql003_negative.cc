// Fixture: nothing here may fire QL003 — one loop with a visible sort in
// the window, one with a justified `sorted` marker, one over an ordered
// vector.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

struct Table {
  std::unordered_map<int, std::string> rows_;
  std::string Serialize() const;
  int Count() const;
};

std::string Table::Serialize() const {
  std::vector<std::string> values;
  for (const auto& [key, value] : rows_) {
    values.push_back(value);
  }
  std::sort(values.begin(), values.end());
  std::string out;
  for (const std::string& value : values) out += value;
  return out;
}

int Table::Count() const {
  int count = 0;
  // qsteer-lint: sorted integer count; commutative over iteration order
  for (const auto& [key, value] : rows_) {
    if (!value.empty()) ++count;
  }
  return count;
}
