#include "common/bitvector.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace qsteer {
namespace {

TEST(BitVector256, StartsEmpty) {
  BitVector256 bv;
  EXPECT_EQ(bv.Count(), 0);
  EXPECT_TRUE(bv.None());
  for (int i = 0; i < 256; ++i) EXPECT_FALSE(bv.Test(i));
}

TEST(BitVector256, SetTestReset) {
  BitVector256 bv;
  for (int pos : {0, 1, 63, 64, 127, 128, 200, 255}) {
    bv.Set(pos);
    EXPECT_TRUE(bv.Test(pos)) << pos;
  }
  EXPECT_EQ(bv.Count(), 8);
  bv.Reset(64);
  EXPECT_FALSE(bv.Test(64));
  EXPECT_EQ(bv.Count(), 7);
}

TEST(BitVector256, OutOfRangePositionsIgnored) {
  BitVector256 bv;
  bv.Set(-1);
  bv.Set(256);
  bv.Set(10000);
  EXPECT_EQ(bv.Count(), 0);
  EXPECT_FALSE(bv.Test(-1));
  EXPECT_FALSE(bv.Test(256));
}

TEST(BitVector256, AllSetHas256Bits) {
  BitVector256 bv = BitVector256::AllSet();
  EXPECT_EQ(bv.Count(), 256);
  bv.Reset(100);
  EXPECT_EQ(bv.Count(), 255);
}

TEST(BitVector256, FromIndicesAndToIndicesRoundTrip) {
  std::vector<int> indices = {3, 17, 64, 65, 191, 255};
  BitVector256 bv = BitVector256::FromIndices(indices);
  EXPECT_EQ(bv.ToIndices(), indices);
}

TEST(BitVector256, BinaryStringRoundTrip) {
  BitVector256 bv = BitVector256::FromIndices({0, 2, 5});
  std::string s = bv.ToBinaryString(8);
  EXPECT_EQ(s, "10100100");
  BitVector256 parsed = BitVector256::FromBinaryString(s);
  EXPECT_EQ(parsed, bv);
}

TEST(BitVector256, PaperDefinitionExample) {
  // Definition 3.2's example: configuration 1111111110 (rule 9 disabled),
  // signature 1100000000 (only rules 0 and 1 used).
  BitVector256 config = BitVector256::FromBinaryString("1111111110");
  BitVector256 signature = BitVector256::FromBinaryString("1100000000");
  EXPECT_EQ(config.Count(), 9);
  EXPECT_EQ(signature.Count(), 2);
  EXPECT_TRUE(signature.IsSubsetOf(config));
}

TEST(BitVector256, SetOperations) {
  BitVector256 a = BitVector256::FromIndices({1, 2, 3, 100});
  BitVector256 b = BitVector256::FromIndices({2, 3, 4, 200});
  EXPECT_EQ(a.And(b).ToIndices(), (std::vector<int>{2, 3}));
  EXPECT_EQ(a.Or(b).ToIndices(), (std::vector<int>{1, 2, 3, 4, 100, 200}));
  EXPECT_EQ(a.Xor(b).ToIndices(), (std::vector<int>{1, 4, 100, 200}));
  EXPECT_EQ(a.AndNot(b).ToIndices(), (std::vector<int>{1, 100}));
  EXPECT_EQ(a.Not().Count(), 252);
}

TEST(BitVector256, SubsetAndIntersects) {
  BitVector256 small = BitVector256::FromIndices({5, 10});
  BitVector256 big = BitVector256::FromIndices({5, 10, 20});
  BitVector256 other = BitVector256::FromIndices({99});
  EXPECT_TRUE(small.IsSubsetOf(big));
  EXPECT_FALSE(big.IsSubsetOf(small));
  EXPECT_TRUE(small.IsSubsetOf(small));
  EXPECT_TRUE(small.Intersects(big));
  EXPECT_FALSE(small.Intersects(other));
}

TEST(BitVector256, HexRoundTrip) {
  BitVector256 bv = BitVector256::FromIndices({0, 7, 63, 64, 130, 255});
  std::string hex = bv.ToHexString();
  EXPECT_EQ(hex.size(), 64u);
  EXPECT_EQ(BitVector256::FromHexString(hex), bv);
  EXPECT_EQ(BitVector256::FromHexString(BitVector256().ToHexString()), BitVector256());
  EXPECT_EQ(BitVector256::FromHexString(BitVector256::AllSet().ToHexString()),
            BitVector256::AllSet());
  // Malformed inputs decode to empty.
  EXPECT_TRUE(BitVector256::FromHexString("abc").None());
  EXPECT_TRUE(BitVector256::FromHexString(std::string(64, 'z')).None());
}

TEST(BitVector256, HashDistinguishesValues) {
  std::unordered_set<uint64_t> hashes;
  for (int i = 0; i < 256; ++i) {
    hashes.insert(BitVector256::FromIndices({i}).Hash());
  }
  EXPECT_EQ(hashes.size(), 256u);
  EXPECT_EQ(BitVector256::FromIndices({7}).Hash(), BitVector256::FromIndices({7}).Hash());
}

TEST(BitVector256, OrderingIsTotal) {
  BitVector256 a = BitVector256::FromIndices({1});
  BitVector256 b = BitVector256::FromIndices({2});
  EXPECT_TRUE(a < b || b < a);
  EXPECT_FALSE(a < a);
}

}  // namespace
}  // namespace qsteer
