#include "core/config_search.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace qsteer {
namespace {

BitVector256 MakeSpan() {
  // 2 off-by-default, 3 on-by-default, 2 implementation rules.
  return BitVector256::FromIndices({37, 43, 83, 94, 104, 224, 228});
}

TEST(ConfigSearch, GeneratesUniqueConfigs) {
  ConfigSearchOptions options;
  options.max_configs = 50;
  options.seed = 9;
  std::vector<RuleConfig> configs = GenerateCandidateConfigs(MakeSpan(), options);
  EXPECT_GT(configs.size(), 20u);
  std::set<uint64_t> hashes;
  for (const RuleConfig& c : configs) hashes.insert(c.Hash());
  EXPECT_EQ(hashes.size(), configs.size());
}

TEST(ConfigSearch, NeverEmitsDefaultConfig) {
  ConfigSearchOptions options;
  options.max_configs = 200;
  std::vector<RuleConfig> configs = GenerateCandidateConfigs(MakeSpan(), options);
  for (const RuleConfig& c : configs) {
    EXPECT_NE(c, RuleConfig::Default());
  }
}

TEST(ConfigSearch, OnlySpanRulesAreDisabled) {
  ConfigSearchOptions options;
  options.max_configs = 100;
  BitVector256 span = MakeSpan();
  for (const RuleConfig& c : GenerateCandidateConfigs(span, options)) {
    for (RuleId id = 0; id < kNumRules; ++id) {
      if (!c.IsEnabled(id)) {
        EXPECT_TRUE(span.Test(id)) << "disabled non-span rule " << id;
      }
    }
  }
}

TEST(ConfigSearch, RulesOutsideSpanIncludingOffByDefaultAreEnabled) {
  // Footnote 2 of the paper: rules outside the span stay enabled — including
  // off-by-default ones the span heuristic may have missed.
  ConfigSearchOptions options;
  options.max_configs = 20;
  for (const RuleConfig& c : GenerateCandidateConfigs(MakeSpan(), options)) {
    EXPECT_TRUE(c.IsEnabled(38));  // off-by-default, outside this span
    EXPECT_TRUE(c.IsEnabled(85));  // on-by-default, outside this span
  }
}

TEST(ConfigSearch, EmptySpanYieldsNothing) {
  ConfigSearchOptions options;
  EXPECT_TRUE(GenerateCandidateConfigs(BitVector256(), options).empty());
}

TEST(ConfigSearch, BoundedBySpanSubsetCount) {
  // A span of 3 rules has at most 2^3 - 1 = 7 non-default candidates... but
  // category factorization restricts combinations further when rules sit in
  // one category.
  BitVector256 tiny = BitVector256::FromIndices({224, 228});  // both implementation
  ConfigSearchOptions options;
  options.max_configs = 100;
  std::vector<RuleConfig> configs = GenerateCandidateConfigs(tiny, options);
  EXPECT_LE(configs.size(), 4u);
  EXPECT_GE(configs.size(), 3u);  // {disable 224}, {disable 228}, {both}
}

TEST(ConfigSearch, DeterministicPerSeed) {
  ConfigSearchOptions options;
  options.max_configs = 30;
  options.seed = 5;
  std::vector<RuleConfig> a = GenerateCandidateConfigs(MakeSpan(), options);
  std::vector<RuleConfig> b = GenerateCandidateConfigs(MakeSpan(), options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  options.seed = 6;
  std::vector<RuleConfig> c = GenerateCandidateConfigs(MakeSpan(), options);
  bool differs = c.size() != a.size();
  for (size_t i = 0; !differs && i < std::min(a.size(), c.size()); ++i) {
    differs = !(a[i] == c[i]);
  }
  EXPECT_TRUE(differs);
}

TEST(ConfigSearch, SearchSpaceFactorizationShrinks) {
  // The §5.2 example: 5 rules, groups of 2 and 3 -> 2^5=32 vs 2^2+2^3=12.
  BitVector256 span = BitVector256::FromIndices({37, 40, 83, 94, 104});
  SearchSpaceSize size = ComputeSearchSpaceSize(span);
  EXPECT_DOUBLE_EQ(size.log2_naive, 5.0);
  EXPECT_NEAR(std::exp2(size.log2_factorized), 2 * 2 + 8, 1e-6);
  EXPECT_LT(size.log2_factorized, size.log2_naive);
}

TEST(ConfigSearch, UniformModeIgnoresCategories) {
  ConfigSearchOptions options;
  options.max_configs = 64;
  options.per_category = false;
  std::vector<RuleConfig> configs = GenerateCandidateConfigs(MakeSpan(), options);
  EXPECT_GT(configs.size(), 30u);
}

}  // namespace
}  // namespace qsteer
