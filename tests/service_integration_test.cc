// End-to-end integration: offline discovery on day 1, validation re-runs,
// persisted store, online serving with guardrails over subsequent days —
// asserting the deployment-level properties (net savings, safety,
// persistence).
#include <gtest/gtest.h>

#include <string>
#include <unordered_map>

#include "core/hints.h"
#include "core/recommender.h"
#include "workload/generator.h"

namespace qsteer {
namespace {

TEST(ServiceIntegration, WeekOfServingSavesRuntimeSafely) {
  Workload workload(WorkloadSpec::WorkloadB(0.003));
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());
  PipelineOptions pipeline_options;
  pipeline_options.max_candidate_configs = 80;
  SteeringPipeline pipeline(&optimizer, &simulator, pipeline_options);
  SteeringRecommender recommender;

  // Day 1: offline discovery. Keep one base job per group to drive the
  // validation re-runs.
  std::unordered_map<std::string, Job> reps;
  int analyzed = 0, adopted = 0;
  for (const Job& job : workload.JobsForDay(1)) {
    if (analyzed >= 25) break;
    ++analyzed;
    JobAnalysis analysis = pipeline.AnalyzeJob(job);
    if (recommender.LearnFromAnalysis(analysis)) {
      ++adopted;
      reps.emplace(analysis.default_plan.signature.ToHexString(), job);
    }
  }
  ASSERT_GT(adopted, 2);

  // Validation gate: nothing serves before its clean re-runs.
  EXPECT_EQ(recommender.num_serving(), 0);
  EXPECT_GT(recommender.num_pending_validation(), 0);
  uint64_t vnonce = 9000;
  for (int round = 0; round < 6 && !recommender.PendingValidations().empty(); ++round) {
    for (const SteeringRecommender::ValidationRequest& request :
         recommender.PendingValidations()) {
      auto it = reps.find(request.signature.ToHexString());
      ASSERT_NE(it, reps.end());
      Result<CompiledPlan> base_plan = optimizer.Compile(it->second, RuleConfig::Default());
      Result<CompiledPlan> alt_plan = optimizer.Compile(it->second, request.config);
      ASSERT_TRUE(base_plan.ok());
      if (!alt_plan.ok()) continue;
      double base = simulator.Execute(it->second, base_plan.value().root, ++vnonce).runtime;
      double alt = simulator.Execute(it->second, alt_plan.value().root, ++vnonce).runtime;
      ASSERT_GT(base, 0.0);
      recommender.ObserveValidation(request.signature, (alt - base) / base * 100.0);
    }
  }
  ASSERT_GT(recommender.num_serving(), 0);

  // Persist + restore mid-deployment (operational restart). Adoption and
  // validation state survive the round trip.
  std::string path = ::testing::TempDir() + "/service_store.txt";
  ASSERT_TRUE(recommender.SaveToFile(path).ok());
  SteeringRecommender serving;
  ASSERT_TRUE(serving.LoadFromFile(path).ok());
  // Several analyses can strengthen one group: adoptions >= groups.
  ASSERT_EQ(serving.num_groups(), recommender.num_groups());
  ASSERT_GE(adopted, serving.num_groups());
  ASSERT_EQ(serving.num_serving(), recommender.num_serving());
  ASSERT_EQ(serving.num_retired(), recommender.num_retired());

  // Days 2-4: online serving.
  double total_default = 0.0, total_served = 0.0;
  int steered = 0, jobs = 0;
  uint64_t nonce = 7;
  for (int day = 2; day <= 4; ++day) {
    for (const Job& job : workload.JobsForDay(day)) {
      if (jobs >= 120) break;
      Result<CompiledPlan> default_plan = optimizer.Compile(job, RuleConfig::Default());
      if (!default_plan.ok()) continue;
      ++jobs;
      double default_runtime =
          simulator.Execute(job, default_plan.value().root, ++nonce).runtime;
      double served = default_runtime;
      auto rec = serving.Recommend(default_plan.value().signature);
      if (!rec.is_default) {
        Result<CompiledPlan> plan = optimizer.Compile(job, rec.config);
        // Adopted configurations always compile for their group's jobs in
        // this workload; a failure would fall back to the default.
        if (plan.ok()) {
          ++steered;
          served = simulator.Execute(job, plan.value().root, ++nonce).runtime;
          serving.ObserveOutcome(default_plan.value().signature,
                                 (served - default_runtime) / default_runtime * 100.0);
        }
      }
      total_default += default_runtime;
      total_served += served;
    }
  }

  // Deployment-level assertions: some jobs steered, net positive savings,
  // guardrail state consistent.
  EXPECT_GT(steered, 3);
  EXPECT_LT(total_served, total_default);
  EXPECT_GE(serving.num_retired(), 0);
  EXPECT_LE(serving.num_retired(), serving.num_groups());

  // Every stored recommendation is expressible as a plan hint and parses
  // back (the paper's deployment path).
  for (const Job& job : workload.JobsForDay(2)) {
    Result<CompiledPlan> plan = optimizer.Compile(job, RuleConfig::Default());
    if (!plan.ok()) continue;
    auto rec = serving.Recommend(plan.value().signature);
    if (rec.is_default) continue;
    std::string hints = ToHintString(rec.config);
    EXPECT_FALSE(hints.empty());
    Result<RuleConfig> parsed = ParseHintString(hints);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), rec.config);
  }
}

}  // namespace
}  // namespace qsteer
