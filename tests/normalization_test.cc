// Config-dependent normalization (§5.3): the same job compiled under
// configurations that differ in normalization/pushdown rules yields
// different estimated costs — and signatures attribute the normalization
// rules that fired.
#include <gtest/gtest.h>

#include <map>

#include "optimizer/optimizer.h"
#include "optimizer/rule_registry.h"

namespace qsteer {
namespace {

class NormalizationTest : public ::testing::Test {
 protected:
  NormalizationTest() {
    StreamSet logs;
    logs.name = "logs";
    logs.columns = {
        {.name = "k", .distinct_count = 100000, .zipf_skew = 0.9},
        {.name = "a", .distinct_count = 1000},
        {.name = "b", .distinct_count = 200},
    };
    int logs_id = catalog_.AddStreamSet(std::move(logs));
    for (int d = 0; d < 4; ++d) {
      EXPECT_TRUE(catalog_.AddStream(logs_id, "logs_d" + std::to_string(d), 30'000'000, 32).ok());
    }
    StreamSet dim;
    dim.name = "dim";
    dim.columns = {
        {.name = "dk", .distinct_count = 95000},
        {.name = "dv", .distinct_count = 40},
    };
    int dim_id = catalog_.AddStreamSet(std::move(dim));
    EXPECT_TRUE(catalog_.AddStream(dim_id, "dim_d0", 100000, 8).ok());

    universe_ = std::make_shared<ColumnUniverse>();
    k_ = universe_->GetOrAddBaseColumn(0, 0, "k");
    a_ = universe_->GetOrAddBaseColumn(0, 1, "a");
    b_ = universe_->GetOrAddBaseColumn(0, 2, "b");
    dk_ = universe_->GetOrAddBaseColumn(1, 0, "dk");
    dv_ = universe_->GetOrAddBaseColumn(1, 1, "dv");
  }

  PlanNodePtr Scan(int set, int variant = 0) {
    const StreamSet& s = catalog_.stream_set(set);
    Operator op;
    op.kind = OpKind::kGet;
    op.stream_set_id = set;
    op.stream_id = s.stream_ids[static_cast<size_t>(variant)];
    op.scan_columns.clear();
    for (size_t c = 0; c < s.columns.size(); ++c) {
      op.scan_columns.push_back(
          universe_->GetOrAddBaseColumn(set, static_cast<int>(c), s.columns[c].name));
    }
    return PlanNode::Make(op, {});
  }

  Job MakeJob(PlanNodePtr body) {
    Operator gb;
    gb.kind = OpKind::kGroupBy;
    gb.group_keys = {b_};
    gb.aggs = {{AggFunc::kCount, kInvalidColumn, universe_->AddDerivedColumn("c", 1e4)}};
    Operator output;
    output.kind = OpKind::kOutput;
    Job job;
    job.name = "norm";
    job.day = 2;
    job.columns = universe_;
    job.root = PlanNode::Make(output, {PlanNode::Make(gb, {std::move(body)})});
    return job;
  }

  Catalog catalog_;
  std::shared_ptr<ColumnUniverse> universe_;
  ColumnId k_, a_, b_, dk_, dv_;
};

TEST_F(NormalizationTest, CollapseSelectsChangesEstimates) {
  // A stack of two selects: with CollapseSelects the combined conjunction
  // estimates with exponential backoff (higher selectivity); without it the
  // stack multiplies independently — different estimated cost.
  Operator s1;
  s1.kind = OpKind::kSelect;
  s1.predicate = Expr::Cmp(a_, CmpOp::kLe, 100);
  Operator s2;
  s2.kind = OpKind::kSelect;
  s2.predicate = Expr::Cmp(b_, CmpOp::kLe, 20);
  Job job = MakeJob(PlanNode::Make(s2, {PlanNode::Make(s1, {Scan(0)})}));

  Optimizer optimizer(&catalog_);
  Result<CompiledPlan> with = optimizer.Compile(job, RuleConfig::Default());
  RuleConfig no_collapse = RuleConfig::Default();
  no_collapse.Disable(rules::kCollapseSelects);
  Result<CompiledPlan> without = optimizer.Compile(job, no_collapse);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_NE(with.value().est_cost, without.value().est_cost);
  // The default signature records the collapse; the other does not.
  EXPECT_TRUE(with.value().signature.Test(rules::kCollapseSelects));
  EXPECT_FALSE(without.value().signature.Test(rules::kCollapseSelects));
}

TEST_F(NormalizationTest, PushdownVariantGatingIsExact) {
  // Multi-atom select above a join: the *2 variants (95) govern it; the
  // single-atom variants (94) must not.
  Operator join;
  join.kind = OpKind::kJoin;
  join.join_type = JoinType::kInner;
  join.left_keys = {k_};
  join.right_keys = {dk_};
  Operator select;
  select.kind = OpKind::kSelect;
  select.predicate =
      Expr::And({Expr::Cmp(a_, CmpOp::kLe, 500), Expr::Cmp(b_, CmpOp::kGe, 10)});
  Job job = MakeJob(
      PlanNode::Make(select, {PlanNode::Make(join, {Scan(0), Scan(1)})}));

  Optimizer optimizer(&catalog_);
  Result<CompiledPlan> base = optimizer.Compile(job, RuleConfig::Default());
  ASSERT_TRUE(base.ok());
  EXPECT_TRUE(base.value().signature.Test(95));  // SelectOnJoinLeft2 fired

  RuleConfig no_single = RuleConfig::Default();
  no_single.Disable(94);
  Result<CompiledPlan> same = optimizer.Compile(job, no_single);
  ASSERT_TRUE(same.ok());
  EXPECT_DOUBLE_EQ(same.value().est_cost, base.value().est_cost);

  RuleConfig no_multi = RuleConfig::Default();
  no_multi.Disable(95);
  Result<CompiledPlan> changed = optimizer.Compile(job, no_multi);
  ASSERT_TRUE(changed.ok());
  EXPECT_NE(changed.value().est_cost, base.value().est_cost);
}

TEST_F(NormalizationTest, SelectBelowUnionVariantByBranchCount) {
  Operator u;
  u.kind = OpKind::kUnionAll;
  PlanNodePtr union_node =
      PlanNode::Make(u, {Scan(0, 0), Scan(0, 1), Scan(0, 2), Scan(0, 3)});
  Operator select;
  select.kind = OpKind::kSelect;
  select.predicate = Expr::Cmp(a_, CmpOp::kLe, 50);
  Job job = MakeJob(PlanNode::Make(select, {union_node}));

  Optimizer optimizer(&catalog_);
  Result<CompiledPlan> base = optimizer.Compile(job, RuleConfig::Default());
  ASSERT_TRUE(base.ok());
  // 4 branches: variant 99 (2-5 branches) fires; 100 does not.
  EXPECT_TRUE(base.value().signature.Test(99));
  EXPECT_FALSE(base.value().signature.Test(100));
}

TEST_F(NormalizationTest, SelectOnTrueRemovesNoopSelects) {
  Operator noop;
  noop.kind = OpKind::kSelect;
  noop.predicate = Expr::True();
  Job job = MakeJob(PlanNode::Make(noop, {Scan(0)}));
  Optimizer optimizer(&catalog_);
  Result<CompiledPlan> plan = optimizer.Compile(job, RuleConfig::Default());
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan.value().signature.Test(rules::kSelectOnTrue));
  // No Filter node with a trivially-true predicate survives.
  VisitPlan(plan.value().root, [](const PlanNode& node) {
    if (node.op.kind == OpKind::kFilter) {
      EXPECT_NE(node.op.predicate->kind(), ExprKind::kTrue);
    }
  });
}

TEST_F(NormalizationTest, UnionBranchesAliasDistinctStreams) {
  // Regression test for the normalization cache aliasing bug: pushing one
  // select into several union branches must keep the branches distinct.
  Operator u;
  u.kind = OpKind::kUnionAll;
  PlanNodePtr union_node = PlanNode::Make(u, {Scan(0, 0), Scan(0, 1)});
  Operator select;
  select.kind = OpKind::kSelect;
  select.predicate = Expr::Cmp(a_, CmpOp::kLe, 50);
  Job job = MakeJob(PlanNode::Make(select, {union_node}));

  Optimizer optimizer(&catalog_);
  Result<CompiledPlan> plan = optimizer.Compile(job, RuleConfig::Default());
  ASSERT_TRUE(plan.ok());
  std::set<int> scanned_streams;
  VisitPlan(plan.value().root, [&](const PlanNode& node) {
    if (node.op.kind == OpKind::kRangeScan) scanned_streams.insert(node.op.stream_id);
  });
  EXPECT_EQ(scanned_streams.size(), 2u);
}

TEST_F(NormalizationTest, EstimatesNotComparableAcrossConfigs) {
  // The headline §5.3 property: over a set of configurations differing in
  // normalization rules, estimated costs for the same job differ, and some
  // are *below* the default's.
  Operator join;
  join.kind = OpKind::kJoin;
  join.join_type = JoinType::kInner;
  join.left_keys = {k_};
  join.right_keys = {dk_};
  Operator select;
  select.kind = OpKind::kSelect;
  select.predicate = Expr::And({Expr::Cmp(a_, CmpOp::kLe, 100),
                                Expr::Cmp(b_, CmpOp::kLe, 20),
                                Expr::IsNotNull(k_)});
  Job job = MakeJob(
      PlanNode::Make(select, {PlanNode::Make(join, {Scan(0), Scan(1)})}));

  Optimizer optimizer(&catalog_);
  Result<CompiledPlan> base = optimizer.Compile(job, RuleConfig::Default());
  ASSERT_TRUE(base.ok());
  std::map<double, int> distinct_costs;
  ++distinct_costs[base.value().est_cost];
  for (RuleId rule : {95, 87, 83, 101, 102}) {
    RuleConfig config = RuleConfig::Default();
    config.Disable(rule);
    Result<CompiledPlan> plan = optimizer.Compile(job, config);
    if (plan.ok()) ++distinct_costs[plan.value().est_cost];
  }
  EXPECT_GE(distinct_costs.size(), 2u);
}

}  // namespace
}  // namespace qsteer
