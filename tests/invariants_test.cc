// Cross-cutting optimizer invariants, property-tested over a sweep of
// (workload, template, configuration) combinations:
//   1. signature ⊆ enabled rules ∪ required rules — a disabled rule can
//      never contribute to a plan;
//   2. every physical operator in an emitted plan has a positive DOP;
//   3. exchanges/sorts appear exactly where property mismatches demand them;
//   4. compilation and simulation are bit-stable.
#include <gtest/gtest.h>

#include <cmath>

#include "core/span.h"
#include "core/config_search.h"
#include "exec/simulator.h"
#include "optimizer/optimizer.h"
#include "workload/generator.h"

namespace qsteer {
namespace {

struct SweepParam {
  uint64_t seed;
  int template_id;
};

class InvariantTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  static WorkloadSpec Spec(uint64_t seed) {
    WorkloadSpec spec;
    spec.name = "I";
    spec.seed = seed;
    spec.num_templates = 24;
    spec.num_stream_sets = 18;
    return spec;
  }
};

TEST_P(InvariantTest, SignatureOnlyContainsEnabledOrRequiredRules) {
  Workload workload(Spec(GetParam().seed));
  Optimizer optimizer(&workload.catalog());
  Job job = workload.MakeJob(GetParam().template_id, 2);

  std::vector<RuleConfig> configs = {RuleConfig::Default(), RuleConfig::AllEnabled()};
  SpanResult span = ComputeJobSpan(optimizer, job);
  ConfigSearchOptions search;
  search.max_configs = 8;
  search.seed = GetParam().seed;
  for (const RuleConfig& c : GenerateCandidateConfigs(span.span, search)) {
    configs.push_back(c);
  }

  for (const RuleConfig& config : configs) {
    Result<CompiledPlan> plan = optimizer.Compile(job, config);
    if (!plan.ok()) continue;
    for (int id : plan.value().signature.ToIndices()) {
      bool allowed = config.IsEnabled(id) || CategoryOfRule(id) == RuleCategory::kRequired;
      EXPECT_TRUE(allowed) << "disabled rule " << id << " in signature";
    }
  }
}

TEST_P(InvariantTest, PhysicalPlansAreWellFormed) {
  Workload workload(Spec(GetParam().seed));
  Optimizer optimizer(&workload.catalog());
  Job job = workload.MakeJob(GetParam().template_id, 2);
  Result<CompiledPlan> plan = optimizer.Compile(job, RuleConfig::Default());
  ASSERT_TRUE(plan.ok());
  VisitPlan(plan.value().root, [&](const PlanNode& node) {
    // Only physical operators in the final plan.
    EXPECT_TRUE(node.op.IsPhysical()) << node.op.ToString();
    EXPECT_GE(node.op.dop, 1) << node.op.ToString();
    // Scans carry valid stream references.
    if (node.op.kind == OpKind::kRangeScan) {
      EXPECT_GE(node.op.stream_id, 0);
      EXPECT_LT(node.op.stream_id, workload.catalog().num_streams());
    }
    // Arity sanity.
    switch (node.op.kind) {
      case OpKind::kRangeScan:
        EXPECT_TRUE(node.children.empty());
        break;
      case OpKind::kHashJoin:
      case OpKind::kBroadcastHashJoin:
      case OpKind::kMergeJoin:
      case OpKind::kLoopJoin:
        EXPECT_EQ(node.children.size(), 2u);
        break;
      case OpKind::kIndexApplyJoin:
        EXPECT_EQ(node.children.size(), 1u);
        break;
      case OpKind::kPhysicalUnionAll:
      case OpKind::kVirtualDataset:
        EXPECT_GE(node.children.size(), 2u);
        break;
      default:
        EXPECT_EQ(node.children.size(), 1u) << node.op.ToString();
        break;
    }
  });
}

TEST_P(InvariantTest, MergeJoinInputsAreSortedByEnforcers) {
  // Force merge joins: whenever one appears in a plan, each input subtree
  // must contain a Sort or an order-preserving chain below it.
  Workload workload(Spec(GetParam().seed));
  Optimizer optimizer(&workload.catalog());
  Job job = workload.MakeJob(GetParam().template_id, 2);
  RuleConfig merge_only = RuleConfig::Default();
  for (RuleId id : {224, 225, 226, 227, 229, 232, 233, 234}) merge_only.Disable(id);
  Result<CompiledPlan> plan = optimizer.Compile(job, merge_only);
  if (!plan.ok()) return;  // jobs without compatible joins may fail: fine
  int merge_joins = 0, sorts = 0;
  VisitPlan(plan.value().root, [&](const PlanNode& node) {
    if (node.op.kind == OpKind::kMergeJoin) ++merge_joins;
    if (node.op.kind == OpKind::kSort) ++sorts;
  });
  // Merge joins require sorted inputs; scans deliver unsorted data, so any
  // merge join in the plan forces at least one Sort enforcer somewhere.
  if (merge_joins > 0) {
    EXPECT_GT(sorts, 0);
    EXPECT_TRUE(plan.value().signature.Test(rules::kEnforceSort));
  }
  ExecutionSimulator simulator(&workload.catalog());
  EXPECT_GT(simulator.Execute(job, plan.value().root).runtime, 0.0);
}

TEST_P(InvariantTest, CompileAndSimulateAreDeterministic) {
  Workload workload(Spec(GetParam().seed));
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());
  Job job1 = workload.MakeJob(GetParam().template_id, 2);
  Job job2 = workload.MakeJob(GetParam().template_id, 2);
  Result<CompiledPlan> a = optimizer.Compile(job1, RuleConfig::AllEnabled());
  Result<CompiledPlan> b = optimizer.Compile(job2, RuleConfig::AllEnabled());
  ASSERT_EQ(a.ok(), b.ok());
  if (!a.ok()) return;
  EXPECT_DOUBLE_EQ(a.value().est_cost, b.value().est_cost);
  EXPECT_EQ(a.value().signature, b.value().signature);
  EXPECT_DOUBLE_EQ(simulator.Execute(job1, a.value().root, 5).runtime,
                   simulator.Execute(job2, b.value().root, 5).runtime);
}

TEST_P(InvariantTest, EstimatedCostPositiveAndFiniteAcrossConfigs) {
  Workload workload(Spec(GetParam().seed));
  Optimizer optimizer(&workload.catalog());
  Job job = workload.MakeJob(GetParam().template_id, 2);
  SpanResult span = ComputeJobSpan(optimizer, job);
  ConfigSearchOptions search;
  search.max_configs = 10;
  search.seed = GetParam().seed + 1;
  for (const RuleConfig& config : GenerateCandidateConfigs(span.span, search)) {
    Result<CompiledPlan> plan = optimizer.Compile(job, config);
    if (!plan.ok()) continue;
    EXPECT_GT(plan.value().est_cost, 0.0);
    EXPECT_TRUE(std::isfinite(plan.value().est_cost));
    EXPECT_GT(plan.value().signature.Count(), 0);
  }
}

std::vector<SweepParam> SweepParams() {
  std::vector<SweepParam> params;
  for (uint64_t seed : {11ULL, 22ULL}) {
    for (int t = 0; t < 12; ++t) params.push_back({seed, t});
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Sweep, InvariantTest, ::testing::ValuesIn(SweepParams()),
                         [](const ::testing::TestParamInfo<SweepParam>& info) {
                           return "s" + std::to_string(info.param.seed) + "_t" +
                                  std::to_string(info.param.template_id);
                         });

}  // namespace
}  // namespace qsteer
