// Semantic-correctness property tests: any plan the optimizer produces for a
// job — under ANY rule configuration — must return exactly the rows the
// original logical plan returns on the same (materialized) data. This is the
// ground truth that every transformation and implementation rule is
// results-preserving.
#include <gtest/gtest.h>

#include "core/config_search.h"
#include "core/span.h"
#include "exec/reference_executor.h"
#include "optimizer/optimizer.h"
#include "workload/generator.h"

namespace qsteer {
namespace {

struct CorrectnessParam {
  uint64_t workload_seed;
  int template_id;
  int day;
};

class RuleCorrectnessTest : public ::testing::TestWithParam<CorrectnessParam> {
 protected:
  static WorkloadSpec SpecFor(uint64_t seed) {
    WorkloadSpec spec;
    spec.name = "X";
    spec.seed = seed;
    spec.num_templates = 32;
    spec.num_stream_sets = 20;
    spec.log_set_fraction = 0.5;
    return spec;
  }

  /// Columns to compare: full output unless the plan contains a Top (whose
  /// non-key columns are tie-dependent), in which case only the outermost
  /// Top's sort keys (whose result multiset is unique for any valid
  /// tie-breaking).
  static std::vector<ColumnId> RestrictionFor(const Job& job) {
    std::vector<ColumnId> restrict_to;
    VisitPlan(job.root, [&](const PlanNode& node) {
      if (node.op.kind == OpKind::kTop) restrict_to = node.op.sort_keys;
    });
    return restrict_to;
  }
};

TEST_P(RuleCorrectnessTest, AllConfigurationsPreserveResults) {
  CorrectnessParam param = GetParam();
  Workload workload(SpecFor(param.workload_seed));
  Optimizer optimizer(&workload.catalog());
  ReferenceExecutor executor(&workload.catalog());

  Job job = workload.MakeJob(param.template_id, param.day);
  std::vector<ColumnId> restriction = RestrictionFor(job);

  Relation reference = executor.Execute(job, job.root);
  std::string expected = reference.Fingerprint(restriction);

  // Default configuration.
  Result<CompiledPlan> default_plan = optimizer.Compile(job, RuleConfig::Default());
  ASSERT_TRUE(default_plan.ok()) << default_plan.status().ToString();
  Relation default_result = executor.Execute(job, default_plan.value().root);
  EXPECT_EQ(default_result.Fingerprint(restriction), expected)
      << "default plan changed results:\n"
      << PlanToString(default_plan.value().root);

  // Everything enabled (all off-by-default rules active).
  Result<CompiledPlan> all_plan = optimizer.Compile(job, RuleConfig::AllEnabled());
  ASSERT_TRUE(all_plan.ok());
  EXPECT_EQ(executor.Execute(job, all_plan.value().root).Fingerprint(restriction), expected)
      << "all-enabled plan changed results:\n"
      << PlanToString(all_plan.value().root);

  // Random candidate configurations from the job's span.
  SpanResult span = ComputeJobSpan(optimizer, job);
  ConfigSearchOptions search;
  search.max_configs = 12;
  search.seed = param.workload_seed * 1000 + param.template_id;
  int verified = 0;
  for (const RuleConfig& config : GenerateCandidateConfigs(span.span, search)) {
    Result<CompiledPlan> plan = optimizer.Compile(job, config);
    if (!plan.ok()) continue;  // non-compiling configurations are expected
    Relation result = executor.Execute(job, plan.value().root);
    ASSERT_EQ(result.Fingerprint(restriction), expected)
        << "configuration changed results; disabled rules vs default: "
        << config.DisabledVsDefault().size() << "\n"
        << PlanToString(plan.value().root);
    ++verified;
  }
  EXPECT_GT(verified, 0);
}

std::vector<CorrectnessParam> MakeParams() {
  std::vector<CorrectnessParam> params;
  for (uint64_t seed : {101ULL, 202ULL}) {
    for (int t = 0; t < 16; ++t) {
      params.push_back({seed, t, 2});
    }
  }
  // A few day-variations for template stability.
  params.push_back({101, 0, 5});
  params.push_back({101, 3, 9});
  params.push_back({202, 7, 4});
  return params;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RuleCorrectnessTest, ::testing::ValuesIn(MakeParams()),
                         [](const ::testing::TestParamInfo<CorrectnessParam>& info) {
                           return "w" + std::to_string(info.param.workload_seed) + "_t" +
                                  std::to_string(info.param.template_id) + "_d" +
                                  std::to_string(info.param.day);
                         });

}  // namespace
}  // namespace qsteer
