// Chaos soak for the sharded discovery orchestrator: kill the run at EVERY
// crash window of the commit/merge protocol — one kill per scenario, plus
// hashed multi-kill schedules and torn-write variants — then resume and
// require the two invariants that make the protocol crash-safe:
//
//   1. No lost work: every shard whose manifest was committed before the
//      kill is reused by the resume, never recomputed.
//   2. No damaged merge: the final merged store and rule-diff table are
//      bit-identical to an uninterrupted unsharded run, no matter where
//      the kill landed or what torn bytes it left behind.
//
// The single-kill sweep is exhaustive over window indices (the window
// count is discovered by a probe run), so a new crash window added to the
// orchestrator is automatically covered. Runs under TSan in CI.
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "discovery/manifest.h"
#include "discovery/orchestrator.h"
#include "workload/generator.h"

namespace qsteer {
namespace {

class TempDir {
 public:
  TempDir() {
    dir_ = std::filesystem::temp_directory_path() /
           ("qsteer_shard_chaos_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() { std::filesystem::remove_all(dir_); }
  std::string path() const { return dir_.string(); }
  std::string File(const std::string& name) const { return (dir_ / name).string(); }

 private:
  static inline int counter_ = 0;
  std::filesystem::path dir_;
};

WorkloadSpec ChaosSpec() {
  WorkloadSpec spec;
  spec.name = "X";
  spec.seed = 90210;
  spec.num_templates = 10;
  spec.num_stream_sets = 8;
  return spec;
}

DiscoveryOptions ChaosOptions(const std::string& dir) {
  DiscoveryOptions options;
  options.dir = dir;
  options.num_shards = 3;
  options.num_workers = 2;
  options.max_jobs = 12;
  options.pipeline.max_candidate_configs = 20;
  options.pipeline.configs_to_execute = 3;
  return options;
}

class ShardChaosTest : public ::testing::Test {
 protected:
  ShardChaosTest() : workload_(ChaosSpec()) {}

  /// The uninterrupted ground truth (computed once per fixture instance).
  UnshardedDiscovery Reference() {
    Result<UnshardedDiscovery> reference =
        DiscoverUnsharded(&workload_, kDay, ChaosOptions(""));
    EXPECT_TRUE(reference.ok()) << reference.status().ToString();
    return reference.value();
  }

  DiscoveryResult Run(DiscoveryOptions options) {
    ShardOrchestrator orchestrator(&workload_, kDay, std::move(options));
    Result<DiscoveryResult> run = orchestrator.Run();
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    return run.value();
  }

  /// Number of crash windows a clean full run visits.
  int64_t ProbeWindowCount() {
    TempDir dir;
    DiscoveryResult probe = Run(ChaosOptions(dir.path()));
    EXPECT_TRUE(probe.completed);
    return probe.counters.crash_windows;
  }

  /// Manifests committed on disk at this moment.
  int CommittedManifests(const TempDir& dir, int num_shards) {
    int committed = 0;
    for (int s = 0; s < num_shards; ++s) {
      if (std::filesystem::exists(dir.File(ShardManifestName(s)))) ++committed;
    }
    return committed;
  }

  static constexpr int kDay = 2;
  Workload workload_;
};

TEST_F(ShardChaosTest, KillAtEveryWindowLosesNoCommittedShardAndMergesIdentically) {
  UnshardedDiscovery reference = Reference();
  int64_t windows = ProbeWindowCount();
  ASSERT_GT(windows, 0);

  for (int64_t kill = 0; kill < windows; ++kill) {
    TempDir dir;
    DiscoveryOptions options = ChaosOptions(dir.path());
    options.crash_hook_for_testing = [kill](const DiscoveryCrashPoint& point) {
      DiscoveryCrashDecision decision;
      decision.crash = point.index == kill;
      return decision;
    };
    DiscoveryResult killed = Run(options);
    if (killed.completed) {
      // A kill index past the last window (can't happen inside the sweep)
      // would silently weaken the test.
      FAIL() << "kill at window " << kill << " did not fire";
    }
    int committed = CommittedManifests(dir, options.num_shards);

    options.crash_hook_for_testing = nullptr;
    options.resume = true;
    DiscoveryResult resumed = Run(options);
    ASSERT_TRUE(resumed.completed) << "kill at window " << kill;
    // Invariant 1: zero lost completed shards — everything committed at
    // the kill is trusted by the resume (nothing damaged: the kill is a
    // clean process death between writes, both files of a committed pair
    // are atomic and intact).
    EXPECT_EQ(resumed.counters.shards_reused, committed) << "kill at window " << kill;
    EXPECT_EQ(resumed.counters.shards_quarantined, 0) << "kill at window " << kill;
    // Invariant 2: the merge is bit-identical to the unsharded truth.
    EXPECT_EQ(resumed.merged_store, reference.store) << "kill at window " << kill;
    EXPECT_EQ(resumed.merged_diff_table, reference.diff_table)
        << "kill at window " << kill;
  }
}

TEST_F(ShardChaosTest, HashedMultiKillScheduleConvergesWithMonotoneProgress) {
  // A soak closer to production reality: the orchestrator dies over and
  // over, at a window chosen by a hash of the restart ordinal. Progress
  // must be monotone (committed manifests never go backwards) and the
  // final merge identical to the truth.
  UnshardedDiscovery reference = Reference();
  TempDir dir;
  DiscoveryOptions options = ChaosOptions(dir.path());
  int committed_floor = 0;
  bool completed = false;
  for (int restart = 0; restart < 64 && !completed; ++restart) {
    // Window 0..8 of each execution, hashed; every 4th restart runs clean
    // so the schedule cannot starve completion.
    const bool run_clean = restart % 4 == 3;
    const int64_t kill_window =
        static_cast<int64_t>(Mix64(HashCombine(0xc4a05ull, restart)) % 9);
    options.crash_hook_for_testing = nullptr;
    if (!run_clean) {
      options.crash_hook_for_testing = [kill_window](const DiscoveryCrashPoint& point) {
        DiscoveryCrashDecision decision;
        decision.crash = point.index == kill_window;
        return decision;
      };
    }
    DiscoveryResult result = Run(options);
    completed = result.completed;
    int committed = CommittedManifests(dir, options.num_shards);
    EXPECT_GE(committed, committed_floor) << "restart " << restart;
    committed_floor = committed;
    options.resume = true;
    if (completed) {
      EXPECT_EQ(result.counters.shards_quarantined, 0);
      EXPECT_EQ(result.merged_store, reference.store);
      EXPECT_EQ(result.merged_diff_table, reference.diff_table);
    }
  }
  EXPECT_TRUE(completed) << "soak never converged";
}

TEST_F(ShardChaosTest, TornArtifactWritesAtEveryCommitWindowAreNeverTrusted) {
  // The hostile variant: the dying process leaves a TORN artifact at its
  // final path (modeling a non-atomic filesystem at the pre-artifact
  // window, and post-commit bit rot at the post-manifest window). Resume
  // must classify without guessing: no manifest -> plain recompute;
  // valid manifest + mismatching bytes -> quarantine + recompute. Either
  // way the merge must come out exact.
  UnshardedDiscovery reference = Reference();
  struct Case {
    const char* window;
    bool expect_quarantine;
  };
  for (const Case& c : {Case{"pre-artifact", false}, Case{"post-manifest", true}}) {
    TempDir dir;
    DiscoveryOptions options = ChaosOptions(dir.path());
    std::string window = c.window;
    options.crash_hook_for_testing = [window](const DiscoveryCrashPoint& point) {
      DiscoveryCrashDecision decision;
      if (point.window == window && point.shard_index >= 0) {
        decision.crash = true;
        decision.tear_artifact = true;
      }
      return decision;
    };
    DiscoveryResult killed = Run(options);
    ASSERT_FALSE(killed.completed) << c.window;
    ASSERT_GE(killed.crash_shard, 0);
    std::string artifact = dir.File(ShardArtifactName(killed.crash_shard));
    ASSERT_TRUE(std::filesystem::exists(artifact)) << "tear left no file";

    options.crash_hook_for_testing = nullptr;
    options.resume = true;
    DiscoveryResult resumed = Run(options);
    ASSERT_TRUE(resumed.completed) << c.window;
    if (c.expect_quarantine) {
      EXPECT_EQ(resumed.counters.shards_quarantined, 1) << c.window;
      EXPECT_TRUE(std::filesystem::exists(artifact + ".quarantined")) << c.window;
    } else {
      EXPECT_EQ(resumed.counters.shards_quarantined, 0) << c.window;
    }
    EXPECT_EQ(resumed.merged_store, reference.store) << c.window;
    EXPECT_EQ(resumed.merged_diff_table, reference.diff_table) << c.window;
  }
}

TEST_F(ShardChaosTest, KillDuringMergeNeverDamagesShardArtifacts) {
  // The merge windows come after every shard is durable: a kill there must
  // resume straight to a full-reuse merge with zero recomputation.
  UnshardedDiscovery reference = Reference();
  for (const char* window : {"pre-merge", "post-merge"}) {
    TempDir dir;
    DiscoveryOptions options = ChaosOptions(dir.path());
    std::string target = window;
    options.crash_hook_for_testing = [target](const DiscoveryCrashPoint& point) {
      DiscoveryCrashDecision decision;
      decision.crash = point.window == target;
      return decision;
    };
    DiscoveryResult killed = Run(options);
    // post-merge fires after result assembly: the run reports incomplete
    // (the summary may be missing) but all shards are committed either way.
    ASSERT_FALSE(killed.completed) << window;

    options.crash_hook_for_testing = nullptr;
    options.resume = true;
    DiscoveryResult resumed = Run(options);
    ASSERT_TRUE(resumed.completed) << window;
    EXPECT_EQ(resumed.counters.shards_reused, options.num_shards) << window;
    EXPECT_EQ(resumed.counters.shards_recomputed, 0) << window;
    EXPECT_EQ(resumed.counters.jobs_analyzed, 0) << window;
    EXPECT_EQ(resumed.merged_store, reference.store) << window;
    EXPECT_EQ(resumed.merged_diff_table, reference.diff_table) << window;
  }
}

}  // namespace
}  // namespace qsteer
