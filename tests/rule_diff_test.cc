#include "core/rule_diff.h"

#include <gtest/gtest.h>

#include "core/job_groups.h"
#include "optimizer/rule_registry.h"

namespace qsteer {
namespace {

TEST(RuleDiff, IdenticalSignaturesAreEmpty) {
  RuleSignature sig = BitVector256::FromIndices({1, 2, 224});
  RuleDiff diff = ComputeRuleDiff(sig, sig);
  EXPECT_TRUE(diff.Empty());
  EXPECT_EQ(diff.ToString(), "only in default plan: - | only in new plan: -");
}

TEST(RuleDiff, PartitionsChangedRules) {
  RuleSignature default_sig = BitVector256::FromIndices({1, 2, 224, 240});
  RuleSignature new_sig = BitVector256::FromIndices({1, 2, 228, 241});
  RuleDiff diff = ComputeRuleDiff(default_sig, new_sig);
  EXPECT_EQ(diff.only_in_default, (std::vector<RuleId>{224, 240}));
  EXPECT_EQ(diff.only_in_new, (std::vector<RuleId>{228, 241}));
  EXPECT_FALSE(diff.Empty());
}

TEST(RuleDiff, PaperTable4Example) {
  // Q_B2 style: JoinImpl2 only in default, HashJoinImpl1 only in best.
  const RuleRegistry& registry = RuleRegistry::Instance();
  RuleId impl2 = registry.FindByName("HashJoinImpl2");
  RuleId impl1 = registry.FindByName("HashJoinImpl1");
  ASSERT_GE(impl1, 0);
  ASSERT_GE(impl2, 0);
  RuleSignature default_sig = BitVector256::FromIndices({1, impl2});
  RuleSignature best_sig = BitVector256::FromIndices({1, impl1});
  RuleDiff diff = ComputeRuleDiff(default_sig, best_sig);
  std::string text = diff.ToString();
  EXPECT_NE(text.find("HashJoinImpl2"), std::string::npos);
  EXPECT_NE(text.find("HashJoinImpl1"), std::string::npos);
}

TEST(RuleDiff, FeatureVectorEncoding) {
  RuleSignature default_sig = BitVector256::FromIndices({5, 10});
  RuleSignature new_sig = BitVector256::FromIndices({5, 20});
  std::vector<double> features = ComputeRuleDiff(default_sig, new_sig).ToFeatureVector();
  ASSERT_EQ(features.size(), 256u);
  EXPECT_DOUBLE_EQ(features[10], -1.0);
  EXPECT_DOUBLE_EQ(features[20], 1.0);
  EXPECT_DOUBLE_EQ(features[5], 0.0);
}

TEST(JobGroupIndex, GroupsBySignature) {
  JobGroupIndex index;
  RuleSignature a = BitVector256::FromIndices({1, 2});
  RuleSignature b = BitVector256::FromIndices({1, 3});
  EXPECT_EQ(index.Add(a), 0);
  EXPECT_EQ(index.Add(b), 1);
  EXPECT_EQ(index.Add(a), 0);
  EXPECT_EQ(index.Add(a), 0);
  EXPECT_EQ(index.num_groups(), 2);
  EXPECT_EQ(index.num_jobs(), 4);
  EXPECT_EQ(index.group_size(0), 3);
  EXPECT_EQ(index.group_size(1), 1);
  EXPECT_EQ(index.Find(a), 0);
  EXPECT_EQ(index.Find(BitVector256::FromIndices({9})), -1);
  EXPECT_EQ(index.SizesDescending(), (std::vector<int>{3, 1}));
}

}  // namespace
}  // namespace qsteer
