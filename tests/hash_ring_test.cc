// Consistent-hash ring: uniform spread, minimal key movement on replica
// add/remove, and process-stable placement (the properties the replicated
// serving tier's router depends on).
#include "common/hash_ring.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/hash.h"

namespace qsteer {
namespace {

uint64_t Key(int i) { return HashString("key-" + std::to_string(i)); }

TEST(HashRingTest, EmptyRingRoutesNowhere) {
  ConsistentHashRing ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.num_replicas(), 0);
  EXPECT_EQ(ring.RouteFor(Key(1)), ConsistentHashRing::kNoReplica);
  EXPECT_TRUE(ring.PreferenceFor(Key(1), 3).empty());
}

TEST(HashRingTest, SingleReplicaRoutesEverything) {
  ConsistentHashRing ring;
  ring.AddReplica(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ring.RouteFor(Key(i)), 7u);
}

TEST(HashRingTest, UniformSpread) {
  // With 64 vnodes per replica the per-replica share of a large keyspace
  // should be within a factor ~2 of uniform — loose, but fails badly when
  // placement degenerates (e.g. all keys on one replica).
  const int kReplicas = 5;
  const int kKeys = 20000;
  ConsistentHashRing ring;
  for (int r = 0; r < kReplicas; ++r) ring.AddReplica(static_cast<uint32_t>(r));
  std::map<uint32_t, int> load;
  for (int i = 0; i < kKeys; ++i) load[ring.RouteFor(Key(i))]++;
  ASSERT_EQ(static_cast<int>(load.size()), kReplicas);
  for (const auto& [replica, count] : load) {
    EXPECT_GT(count, kKeys / kReplicas / 2) << "replica " << replica << " starved";
    EXPECT_LT(count, kKeys / kReplicas * 2) << "replica " << replica << " overloaded";
  }
}

TEST(HashRingTest, MinimalMovementOnAdd) {
  // Adding a replica moves only the keys the new replica claims: every
  // moved key must route to the newcomer, and nowhere near a reshuffle.
  const int kKeys = 10000;
  ConsistentHashRing ring;
  for (uint32_t r = 0; r < 4; ++r) ring.AddReplica(r);
  std::vector<uint32_t> before(kKeys);
  for (int i = 0; i < kKeys; ++i) before[i] = ring.RouteFor(Key(i));
  ring.AddReplica(4);
  int moved = 0;
  for (int i = 0; i < kKeys; ++i) {
    uint32_t now = ring.RouteFor(Key(i));
    if (now != before[i]) {
      ++moved;
      EXPECT_EQ(now, 4u) << "key " << i << " moved to a pre-existing replica";
    }
  }
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, kKeys / 2);
}

TEST(HashRingTest, MinimalMovementOnRemove) {
  // Removing a replica moves only the keys it owned.
  const int kKeys = 10000;
  ConsistentHashRing ring;
  for (uint32_t r = 0; r < 5; ++r) ring.AddReplica(r);
  std::vector<uint32_t> before(kKeys);
  for (int i = 0; i < kKeys; ++i) before[i] = ring.RouteFor(Key(i));
  ring.RemoveReplica(2);
  for (int i = 0; i < kKeys; ++i) {
    uint32_t now = ring.RouteFor(Key(i));
    if (before[i] != 2) {
      EXPECT_EQ(now, before[i]) << "key " << i << " moved without cause";
    } else {
      EXPECT_NE(now, 2u);
    }
  }
}

TEST(HashRingTest, AddRemoveRoundTripRestoresPlacement) {
  const int kKeys = 5000;
  ConsistentHashRing ring;
  for (uint32_t r = 0; r < 4; ++r) ring.AddReplica(r);
  std::vector<uint32_t> before(kKeys);
  for (int i = 0; i < kKeys; ++i) before[i] = ring.RouteFor(Key(i));
  ring.RemoveReplica(1);
  ring.AddReplica(1);
  for (int i = 0; i < kKeys; ++i) EXPECT_EQ(ring.RouteFor(Key(i)), before[i]);
}

TEST(HashRingTest, DeterministicAcrossBuildOrder) {
  // Placement is a pure function of the replica-id and key bits: two rings
  // built in different insertion orders route identically. (QL004: no
  // pointer values or per-process salts may leak into the ring points.)
  ConsistentHashRing forward, backward;
  for (uint32_t r = 0; r < 6; ++r) forward.AddReplica(r);
  for (int r = 5; r >= 0; --r) backward.AddReplica(static_cast<uint32_t>(r));
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(forward.RouteFor(Key(i)), backward.RouteFor(Key(i)));
  }
}

TEST(HashRingTest, PinnedGoldenRoutes) {
  // Frozen cross-process expectations: these values must reproduce on any
  // machine, any run — they are pure functions of Fnv1a64/Mix64 over the
  // replica-id and key bits. A drift here means persisted placement
  // assumptions silently broke.
  ConsistentHashRing ring;
  for (uint32_t r = 0; r < 3; ++r) ring.AddReplica(r);
  const uint32_t kGolden[8] = {2u, 1u, 2u, 2u, 1u, 2u, 0u, 1u};
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(ring.RouteFor(Key(i)), kGolden[i]) << "key " << i;
  }
}

TEST(HashRingTest, PreferenceListIsDistinctAndCapped) {
  ConsistentHashRing ring;
  for (uint32_t r = 0; r < 4; ++r) ring.AddReplica(r);
  for (int i = 0; i < 500; ++i) {
    std::vector<uint32_t> preference = ring.PreferenceFor(Key(i), 4);
    ASSERT_EQ(preference.size(), 4u);
    EXPECT_EQ(preference[0], ring.RouteFor(Key(i)));
    std::map<uint32_t, int> seen;
    for (uint32_t id : preference) seen[id]++;
    EXPECT_EQ(seen.size(), 4u);  // distinct replicas throughout
    EXPECT_EQ(ring.PreferenceFor(Key(i), 9).size(), 4u);  // capped at fleet size
  }
}

TEST(HashRingTest, IdempotentMembership) {
  ConsistentHashRing ring;
  ring.AddReplica(3);
  ring.AddReplica(3);
  EXPECT_EQ(ring.num_replicas(), 1);
  EXPECT_TRUE(ring.Contains(3));
  ring.RemoveReplica(9);  // absent: no-op
  ring.RemoveReplica(3);
  ring.RemoveReplica(3);
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace qsteer
