// Histogram and HistogramStatsModel invariants: deterministic construction,
// equi-depth mass, the staleness knob, serialization round-trips, and the
// out-of-domain cliff.
#include "catalog/stats_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/zipf.h"

namespace qsteer {
namespace {

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

TEST(Histogram, ConstructionIsDeterministic) {
  for (double skew : {0.0, 0.6, 1.3}) {
    Histogram a = Histogram::BuildEquiDepth(100000, skew, 32);
    Histogram b = Histogram::BuildEquiDepth(100000, skew, 32);
    EXPECT_EQ(a.Serialize(), b.Serialize()) << "skew " << skew;
  }
}

TEST(Histogram, BucketsPartitionTheDomain) {
  Histogram h = Histogram::BuildEquiDepth(5000, 1.0, 32);
  int64_t expected_lo = 1;
  double total_mass = 0.0;
  for (const HistogramBucket& b : h.buckets()) {
    EXPECT_EQ(b.lo, expected_lo);
    EXPECT_GE(b.hi, b.lo);
    EXPECT_DOUBLE_EQ(b.ndv, static_cast<double>(b.hi - b.lo + 1));
    total_mass += b.row_fraction;
    expected_lo = b.hi + 1;
  }
  EXPECT_EQ(expected_lo, 5001);  // last bucket ends at the domain edge
  EXPECT_NEAR(total_mass, 1.0, 1e-9);
}

TEST(Histogram, EquiDepthMassPerBucket) {
  // With mild skew every bucket spans several values, so the per-bucket mass
  // lands close to the 1/B ideal (bucket edges round to whole values).
  const int kBuckets = 16;
  Histogram h = Histogram::BuildEquiDepth(1000000, 0.4, kBuckets);
  ASSERT_EQ(h.num_buckets(), kBuckets);
  for (const HistogramBucket& b : h.buckets()) {
    EXPECT_GT(b.row_fraction, 0.5 / kBuckets);
    EXPECT_LT(b.row_fraction, 2.0 / kBuckets);
  }
}

TEST(Histogram, HeavySkewIsolatesHotValues) {
  // Under zipf(1.2), rank 1 alone carries more than 1/32 of the mass, so the
  // first equi-depth bucket must degenerate to the singleton [1, 1] — the
  // hot value is captured exactly.
  Histogram h = Histogram::BuildEquiDepth(100000, 1.2, 32);
  ASSERT_GE(h.num_buckets(), 1);
  EXPECT_EQ(h.buckets()[0].lo, 1);
  EXPECT_EQ(h.buckets()[0].hi, 1);
  EXPECT_NEAR(h.buckets()[0].row_fraction, ZipfPmf(1, 100000, 1.2), 1e-9);
  EXPECT_NEAR(h.TopValueShare(), ZipfPmf(1, 100000, 1.2), 1e-12);
}

TEST(Histogram, TinyDomainClampsBucketCount) {
  Histogram h = Histogram::BuildEquiDepth(5, 0.9, 32);
  EXPECT_LE(h.num_buckets(), 5);
  double mass = 0.0;
  for (const HistogramBucket& b : h.buckets()) mass += b.row_fraction;
  EXPECT_NEAR(mass, 1.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Selectivity math
// ---------------------------------------------------------------------------

TEST(Histogram, CdfMatchesZipfAtBucketBoundaries) {
  const int64_t kDomain = 200000;
  const double kSkew = 0.9;
  Histogram h = Histogram::BuildEquiDepth(kDomain, kSkew, 32);
  for (const HistogramBucket& b : h.buckets()) {
    EXPECT_NEAR(h.CdfLe(static_cast<double>(b.hi)),
                ZipfCdf(static_cast<double>(b.hi), static_cast<double>(kDomain), kSkew), 1e-9);
  }
  EXPECT_DOUBLE_EQ(h.CdfLe(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.CdfLe(static_cast<double>(kDomain)), 1.0);
}

TEST(Histogram, CdfIsMonotone) {
  Histogram h = Histogram::BuildEquiDepth(10000, 1.1, 24);
  double prev = 0.0;
  for (int64_t v = 1; v <= 10000; v += 37) {
    double cur = h.CdfLe(static_cast<double>(v));
    EXPECT_GE(cur, prev) << "at " << v;
    prev = cur;
  }
}

TEST(Histogram, OutOfDomainEqualitySelectivityIsZero) {
  // The cliff: a histogram has no mass beyond its build-day domain and is
  // *confidently* wrong about values born later.
  Histogram h = Histogram::BuildEquiDepth(1000, 0.8, 16);
  EXPECT_GT(h.EqSelectivity(1.0), 0.0);
  EXPECT_GT(h.EqSelectivity(1000.0), 0.0);
  EXPECT_DOUBLE_EQ(h.EqSelectivity(1001.0), 0.0);
  EXPECT_DOUBLE_EQ(h.EqSelectivity(5000.0), 0.0);
  EXPECT_DOUBLE_EQ(h.EqSelectivity(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.CdfLe(5000.0), 1.0);  // ranges saturate instead
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

TEST(Histogram, SerializationRoundTrips) {
  Histogram h = Histogram::BuildEquiDepth(123456, 0.77, 32);
  std::string text = h.Serialize();
  Histogram back;
  ASSERT_TRUE(Histogram::Deserialize(text, &back));
  EXPECT_EQ(back.domain(), h.domain());
  EXPECT_DOUBLE_EQ(back.skew(), h.skew());
  EXPECT_DOUBLE_EQ(back.TopValueShare(), h.TopValueShare());
  ASSERT_EQ(back.num_buckets(), h.num_buckets());
  for (int i = 0; i < h.num_buckets(); ++i) {
    const HistogramBucket& a = h.buckets()[static_cast<size_t>(i)];
    const HistogramBucket& b = back.buckets()[static_cast<size_t>(i)];
    EXPECT_EQ(a.lo, b.lo);
    EXPECT_EQ(a.hi, b.hi);
    EXPECT_DOUBLE_EQ(a.row_fraction, b.row_fraction);
    EXPECT_DOUBLE_EQ(a.ndv, b.ndv);
  }
  // Byte-stable: re-serializing the round-tripped histogram reproduces the
  // original text exactly (%.17g keeps doubles lossless).
  EXPECT_EQ(back.Serialize(), text);
}

TEST(Histogram, DeserializeRejectsGarbage) {
  Histogram out;
  EXPECT_FALSE(Histogram::Deserialize("", &out));
  EXPECT_FALSE(Histogram::Deserialize("not a histogram", &out));
  EXPECT_FALSE(Histogram::Deserialize("qsteer-histogram v1 domain=10 skew=0 top=0 n=3\n1 5 0.5 5\n",
                                      &out));  // truncated bucket list
  EXPECT_FALSE(Histogram::Deserialize("qsteer-histogram v1 domain=-4 skew=0 top=0 n=0\n", &out));
}

// ---------------------------------------------------------------------------
// HistogramStatsModel: the staleness knob
// ---------------------------------------------------------------------------

class HistogramModelTest : public ::testing::Test {
 protected:
  HistogramModelTest() {
    StreamSet set;
    set.name = "g";
    set.columns = {
        {.name = "key", .distinct_count = 10000, .zipf_skew = 0.8, .domain_growth = 0.2},
    };
    int id = catalog_.AddStreamSet(std::move(set));
    EXPECT_TRUE(catalog_.AddStream(id, "g_d0", 100000, 8).ok());
  }

  Catalog catalog_;
};

TEST_F(HistogramModelTest, SameBuildDayServesIdenticalHistograms) {
  HistogramStatsModel::Options options;
  options.staleness_days = 3;
  HistogramStatsModel model_a(options);
  HistogramStatsModel model_b(options);
  // Independent model instances (separate caches) and any serve day mapping
  // to the same build day must produce byte-identical histograms.
  std::string day5 = model_a.ColumnHistogram(catalog_, 0, 0, 5)->Serialize();
  EXPECT_EQ(day5, model_b.ColumnHistogram(catalog_, 0, 0, 5)->Serialize());
  // Serve days 3 and 0 both clamp/build at days 0 and 0 respectively.
  EXPECT_EQ(model_a.ColumnHistogram(catalog_, 0, 0, 3)->Serialize(),
            model_a.ColumnHistogram(catalog_, 0, 0, 0)->Serialize());
}

TEST_F(HistogramModelTest, StalenessKnobIsMonotone) {
  // The true domain grows every day, so a staler model (larger k) sees an
  // older, smaller domain: served-domain must be non-increasing in k.
  const int kServeDay = 8;
  int64_t prev_domain = std::numeric_limits<int64_t>::max();
  for (int k : {0, 2, 4, 8}) {
    HistogramStatsModel::Options options;
    options.staleness_days = k;
    HistogramStatsModel model(options);
    int64_t domain = model.ColumnHistogram(catalog_, 0, 0, kServeDay)->domain();
    EXPECT_LE(domain, prev_domain) << "staleness " << k;
    prev_domain = domain;
  }
  // And strictly: a fresh model sees day 8's grown domain, a fully stale one
  // the day-0 domain.
  HistogramStatsModel fresh;  // default staleness 3 < 8
  HistogramStatsModel::Options stale_options;
  stale_options.staleness_days = 8;
  HistogramStatsModel stale(stale_options);
  EXPECT_GT(fresh.ColumnHistogram(catalog_, 0, 0, kServeDay)->domain(),
            stale.ColumnHistogram(catalog_, 0, 0, kServeDay)->domain());
  EXPECT_EQ(stale.ColumnHistogram(catalog_, 0, 0, kServeDay)->domain(),
            catalog_.TrueDistinctCount(0, 0, 0));
}

TEST_F(HistogramModelTest, StaleHistogramMissesNewValues) {
  HistogramStatsModel::Options options;
  options.staleness_days = 4;
  HistogramStatsModel model(options);
  const int kServeDay = 4;  // built at day 0
  std::shared_ptr<const Histogram> h = model.ColumnHistogram(catalog_, 0, 0, kServeDay);
  int64_t stale_domain = h->domain();
  int64_t true_domain = catalog_.TrueDistinctCount(0, 0, kServeDay);
  ASSERT_GT(true_domain, stale_domain);
  // A literal probing today's newest values falls off the cliff.
  EXPECT_DOUBLE_EQ(h->EqSelectivity(static_cast<double>(true_domain)), 0.0);
}

TEST_F(HistogramModelTest, SummaryCarriesHistogram) {
  HistogramStatsModel model;
  ColumnSummary summary = model.Summarize(catalog_, 0, 0, 5);
  ASSERT_NE(summary.histogram, nullptr);
  EXPECT_DOUBLE_EQ(summary.ndv, static_cast<double>(summary.histogram->domain()));
  ScalarStatsModel scalar;
  EXPECT_EQ(scalar.Summarize(catalog_, 0, 0, 5).histogram, nullptr);
}

}  // namespace
}  // namespace qsteer
