#include "plan/expr.h"

#include <gtest/gtest.h>

#include <map>

#include "catalog/datagen.h"
#include "optimizer/stats.h"

namespace qsteer {
namespace {

/// Test accessor over a fixed column->value map.
class MapRow : public RowAccessor {
 public:
  explicit MapRow(std::map<ColumnId, int64_t> values) : values_(std::move(values)) {}
  int64_t Get(ColumnId column) const override {
    auto it = values_.find(column);
    return it == values_.end() ? kNullValue : it->second;
  }

 private:
  std::map<ColumnId, int64_t> values_;
};

TEST(Expr, CompareEvaluation) {
  MapRow row(std::map<ColumnId, int64_t>{{0, 5}, {1, 10}});
  EXPECT_TRUE(Expr::Cmp(0, CmpOp::kEq, 5)->EvalPredicate(row));
  EXPECT_FALSE(Expr::Cmp(0, CmpOp::kEq, 6)->EvalPredicate(row));
  EXPECT_TRUE(Expr::Cmp(0, CmpOp::kLt, 6)->EvalPredicate(row));
  EXPECT_FALSE(Expr::Cmp(0, CmpOp::kLt, 5)->EvalPredicate(row));
  EXPECT_TRUE(Expr::Cmp(0, CmpOp::kLe, 5)->EvalPredicate(row));
  EXPECT_TRUE(Expr::Cmp(1, CmpOp::kGt, 5)->EvalPredicate(row));
  EXPECT_TRUE(Expr::Cmp(1, CmpOp::kGe, 10)->EvalPredicate(row));
  EXPECT_TRUE(Expr::Cmp(1, CmpOp::kNe, 5)->EvalPredicate(row));
  EXPECT_TRUE(
      Expr::Compare(CmpOp::kLt, Expr::Column(0), Expr::Column(1))->EvalPredicate(row));
}

TEST(Expr, NullComparisonsAreFalse) {
  MapRow row(std::map<ColumnId, int64_t>{{0, kNullValue}});
  EXPECT_FALSE(Expr::Cmp(0, CmpOp::kEq, 1)->EvalPredicate(row));
  EXPECT_FALSE(Expr::Cmp(0, CmpOp::kNe, 1)->EvalPredicate(row));
  EXPECT_FALSE(Expr::Cmp(0, CmpOp::kLt, 1)->EvalPredicate(row));
  EXPECT_FALSE(Expr::IsNotNull(0)->EvalPredicate(row));
  MapRow present(std::map<ColumnId, int64_t>{{0, 3}});
  EXPECT_TRUE(Expr::IsNotNull(0)->EvalPredicate(present));
}

TEST(Expr, BooleanConnectives) {
  MapRow row(std::map<ColumnId, int64_t>{{0, 5}});
  ExprPtr t = Expr::Cmp(0, CmpOp::kEq, 5);
  ExprPtr f = Expr::Cmp(0, CmpOp::kEq, 6);
  EXPECT_TRUE(Expr::And({t, t})->EvalPredicate(row));
  EXPECT_FALSE(Expr::And({t, f})->EvalPredicate(row));
  EXPECT_TRUE(Expr::Or({f, t})->EvalPredicate(row));
  EXPECT_FALSE(Expr::Or({f, f})->EvalPredicate(row));
  EXPECT_TRUE(Expr::Not(f)->EvalPredicate(row));
  EXPECT_TRUE(Expr::True()->EvalPredicate(row));
}

TEST(Expr, AndOrOfOneChildCollapses) {
  ExprPtr atom = Expr::Cmp(0, CmpOp::kEq, 1);
  EXPECT_EQ(Expr::And({atom}), atom);
  EXPECT_EQ(Expr::Or({atom}), atom);
  EXPECT_EQ(Expr::And({})->kind(), ExprKind::kTrue);
}

TEST(Expr, SplitAndRebuildConjuncts) {
  ExprPtr a = Expr::Cmp(0, CmpOp::kEq, 1);
  ExprPtr b = Expr::Cmp(1, CmpOp::kLt, 5);
  ExprPtr c = Expr::Cmp(2, CmpOp::kGt, 7);
  ExprPtr nested = Expr::And({a, Expr::And({b, c})});
  std::vector<ExprPtr> conjuncts = SplitConjuncts(nested);
  ASSERT_EQ(conjuncts.size(), 3u);
  EXPECT_EQ(conjuncts[0], a);
  EXPECT_EQ(conjuncts[1], b);
  EXPECT_EQ(conjuncts[2], c);
  EXPECT_EQ(MakeConjunction({})->kind(), ExprKind::kTrue);
  EXPECT_EQ(MakeConjunction({a}), a);
  EXPECT_TRUE(SplitConjuncts(Expr::True()).empty());
}

TEST(Expr, CollectColumnsAndBoundBy) {
  ExprPtr e = Expr::And({Expr::Cmp(3, CmpOp::kEq, 1),
                         Expr::Compare(CmpOp::kLt, Expr::Column(5), Expr::Column(7))});
  std::vector<ColumnId> cols;
  e->CollectColumns(&cols);
  EXPECT_EQ(cols, (std::vector<ColumnId>{3, 5, 7}));
  EXPECT_TRUE(e->BoundBy({3, 5, 7, 9}));
  EXPECT_FALSE(e->BoundBy({3, 5}));
}

TEST(Expr, TemplateHashIgnoresLiterals) {
  ExprPtr a = Expr::Cmp(0, CmpOp::kEq, 100);
  ExprPtr b = Expr::Cmp(0, CmpOp::kEq, 999);
  EXPECT_EQ(a->Hash(true), b->Hash(true));
  EXPECT_NE(a->Hash(false), b->Hash(false));
  // Different column or op changes the template hash too.
  EXPECT_NE(a->Hash(true), Expr::Cmp(1, CmpOp::kEq, 100)->Hash(true));
  EXPECT_NE(a->Hash(true), Expr::Cmp(0, CmpOp::kLt, 100)->Hash(true));
}

TEST(Expr, CountAtoms) {
  ExprPtr e = Expr::And({Expr::Cmp(0, CmpOp::kEq, 1),
                         Expr::Or({Expr::Cmp(1, CmpOp::kLt, 5), Expr::IsNotNull(2)})});
  EXPECT_EQ(e->CountAtoms(), 3);
  EXPECT_EQ(Expr::True()->CountAtoms(), 0);
}

TEST(Expr, UdfPredicateEmpiricalRateMatchesAnalytic) {
  // The per-row UDF decision must average out to UdfTrueSelectivity(name).
  std::string name = "udf_test_42";
  ExprPtr udf = Expr::UdfPredicate(name, /*selectivity_guess=*/0.5, /*input=*/0);
  int passes = 0;
  constexpr int kN = 20000;
  for (int v = 1; v <= kN; ++v) {
    MapRow row(std::map<ColumnId, int64_t>{{0, v}});
    if (udf->EvalPredicate(row)) ++passes;
  }
  double rate = static_cast<double>(passes) / kN;
  EXPECT_NEAR(rate, UdfTrueSelectivity(name), 0.02);
  // Deterministic per value.
  MapRow row(std::map<ColumnId, int64_t>{{0, 7}});
  EXPECT_EQ(udf->EvalPredicate(row), udf->EvalPredicate(row));
}

TEST(Expr, ToStringReadable) {
  ExprPtr e = Expr::And({Expr::Cmp(0, CmpOp::kLe, 4), Expr::IsNotNull(1)});
  EXPECT_EQ(e->ToString(), "((c0 <= 4) AND c1 IS NOT NULL)");
}

}  // namespace
}  // namespace qsteer
