// Ranked, compile-budgeted candidate generation: the CandidateRanker's
// deterministic-training and persistence contracts, the SteeringPipeline's
// budget/filter semantics (ranking off or budget unlimited => bit-identical
// to the unbudgeted pipeline), and the sharded-vs-unsharded ranker-byte
// parity of the discovery orchestrator.
#include "ml/ranker.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "discovery/orchestrator.h"
#include "workload/generator.h"

namespace qsteer {
namespace {

class TempDir {
 public:
  TempDir() {
    dir_ = std::filesystem::temp_directory_path() /
           ("qsteer_ranker_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() { std::filesystem::remove_all(dir_); }
  std::string path() const { return dir_.string(); }
  std::string File(const std::string& name) const { return (dir_ / name).string(); }

 private:
  static inline int counter_ = 0;
  std::filesystem::path dir_;
};

// qsteer-lint: allow(crc-before-trust) test helper reads bytes to corrupt or inspect them; verification is the code under test
std::string RawRead(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void RawWrite(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

// ------------------------------------------------------------- scaler/mlp

TEST(MinMaxScaler, FitRejectsRaggedRows) {
  MinMaxScaler scaler;
  std::vector<std::vector<double>> ragged = {{1.0, 2.0, 3.0}, {4.0, 5.0}};
  Status status = scaler.Fit(ragged);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << status.ToString();
  EXPECT_FALSE(scaler.fitted());

  // A rectangular fit afterwards still works.
  std::vector<std::vector<double>> rows = {{0.0, 0.0}, {2.0, 4.0}};
  ASSERT_TRUE(scaler.Fit(rows).ok());
  EXPECT_TRUE(scaler.fitted());
  EXPECT_EQ(scaler.width(), 2);
}

TEST(MinMaxScaler, UpdateRejectsWidthMismatchAfterFirstRow) {
  MinMaxScaler scaler;
  ASSERT_TRUE(scaler.Update({1.0, 2.0}).ok());
  EXPECT_FALSE(scaler.Update({1.0, 2.0, 3.0}).ok());
  EXPECT_EQ(scaler.width(), 2);
}

TEST(Mlp, SerializeRoundTripsExactBytesAndBehavior) {
  Mlp model(4, 8, 2, /*seed=*/17);
  // Exercise Adam state so the serialization covers the full trajectory.
  for (int i = 0; i < 20; ++i) model.TrainStep({0.1, 0.9, 0.4, 0.2}, {1.0, 0.0}, 1e-2);

  std::string bytes = model.Serialize();
  Result<Mlp> restored = Mlp::Deserialize(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().Serialize(), bytes);
  EXPECT_EQ(restored.value().Forward({0.3, 0.3, 0.3, 0.3}),
            model.Forward({0.3, 0.3, 0.3, 0.3}));

  // Continuing training from the restored state replays the original
  // trajectory exactly.
  Mlp continued = std::move(restored.value());
  double a = model.TrainStep({0.5, 0.5, 0.5, 0.5}, {0.0, 1.0}, 1e-2);
  double b = continued.TrainStep({0.5, 0.5, 0.5, 0.5}, {0.0, 1.0}, 1e-2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(continued.Serialize(), model.Serialize());
}

TEST(Mlp, DeserializeRejectsDamage) {
  Mlp model(3, 4, 1, 5);
  std::string bytes = model.Serialize();
  EXPECT_FALSE(Mlp::Deserialize("").ok());
  EXPECT_FALSE(Mlp::Deserialize("not an mlp").ok());
  // Truncation loses vector lines.
  EXPECT_FALSE(Mlp::Deserialize(bytes.substr(0, bytes.size() / 2)).ok());
}

// ----------------------------------------------------------------- ranker

RankerJobContext SyntheticContext() {
  RankerJobContext ctx;
  for (int r : {40, 41, 90, 91, 120, 230}) ctx.span.Set(r);
  ctx.default_signature.Set(90);
  ctx.default_signature.Set(120);
  ctx.default_est_cost = 1234.5;
  return ctx;
}

std::vector<RankerExample> SyntheticExamples(const CandidateRanker& ranker, int n) {
  RankerJobContext ctx = SyntheticContext();
  std::vector<RankerExample> examples;
  for (int i = 0; i < n; ++i) {
    RuleConfig config = RuleConfig::Default();
    if (i % 2 == 0) config.Disable(90 + (i % 3));
    if (i % 3 == 0) config.Enable(40 + (i % 2));
    if (i % 5 == 0) config.Disable(230);
    RankerExample example = ranker.MakeExample(ctx, config);
    // Deterministic synthetic label: candidates toggling rule 90 "help".
    example.label = config.IsEnabled(90) ? 0.05 : 0.6;
    examples.push_back(std::move(example));
  }
  return examples;
}

TEST(CandidateRanker, FeatureRowsAreWellFormed) {
  CandidateRanker ranker;
  RankerJobContext ctx = SyntheticContext();
  RuleConfig config = RuleConfig::Default();
  config.Disable(90);
  config.Enable(41);
  RankerExample example = ranker.MakeExample(ctx, config);
  ASSERT_EQ(example.features.size(),
            static_cast<size_t>(CandidateRanker::kNumFeatures));
  EXPECT_EQ(example.config_hash, config.Hash());
  EXPECT_EQ(example.toggled_rules, (std::vector<int>{41, 90}));
  for (double f : example.features) {
    EXPECT_TRUE(std::isfinite(f));
  }
  // Bias feature.
  EXPECT_EQ(example.features.back(), 1.0);
}

TEST(CandidateRanker, TrainingIsDeterministic) {
  CandidateRanker a, b;
  std::vector<RankerExample> batch = SyntheticExamples(a, 120);
  a.Train(batch);
  b.Train(batch);
  EXPECT_EQ(a.examples_trained(), 120);
  EXPECT_EQ(a.Serialize(), b.Serialize());

  // Scores agree and are a pure function of state + features.
  for (const RankerExample& example : batch) {
    EXPECT_EQ(a.Score(example.features), b.Score(example.features));
  }

  // Chunked training is deterministic too: the same stream split at the
  // same batch boundaries replays to identical bytes. (Different boundaries
  // legitimately differ — the MLP's epoch passes are per-batch — which is
  // why the pipeline trains at fixed, worker-independent batch points.)
  CandidateRanker c, d;
  for (CandidateRanker* r : {&c, &d}) {
    r->Train(std::vector<RankerExample>(batch.begin(), batch.begin() + 50));
    r->Train(std::vector<RankerExample>(batch.begin() + 50, batch.end()));
  }
  EXPECT_EQ(c.Serialize(), d.Serialize());
  EXPECT_EQ(c.examples_trained(), 120);
}

TEST(CandidateRanker, LearnsToPreferHistoricallyGoodToggles) {
  CandidateRanker ranker;
  std::vector<RankerExample> batch = SyntheticExamples(ranker, 200);
  ranker.Train(batch);
  RankerJobContext ctx = SyntheticContext();
  RuleConfig good = RuleConfig::Default();
  good.Disable(90);  // labeled 0.6 in the synthetic stream
  RuleConfig bad = RuleConfig::Default();
  bad.Disable(91);  // stays enabled-90, labeled 0.05
  double good_score = ranker.Score(ranker.MakeExample(ctx, good).features);
  double bad_score = ranker.Score(ranker.MakeExample(ctx, bad).features);
  EXPECT_GT(good_score, bad_score);
}

TEST(CandidateRanker, SaveLoadRoundTripAndCorruptionRejectsWholeFile) {
  TempDir dir;
  CandidateRanker trained;
  trained.Train(SyntheticExamples(trained, 90));
  std::string path = dir.File("ranker.qrk");
  ASSERT_TRUE(trained.SaveToFile(path).ok());

  CandidateRanker loaded;
  ASSERT_TRUE(loaded.WarmFromFile(path).ok());
  EXPECT_EQ(loaded.Serialize(), trained.Serialize());
  EXPECT_EQ(loaded.examples_trained(), trained.examples_trained());

  // Flip one byte: the checksum no longer matches, the load is rejected,
  // and the target ranker is untouched (cold, never wrong).
  std::string bytes = RawRead(path);
  ASSERT_GT(bytes.size(), 40u);
  bytes[bytes.size() / 2] ^= 0x01;
  RawWrite(path, bytes);
  CandidateRanker other;
  other.Train(SyntheticExamples(other, 10));
  std::string before = other.Serialize();
  EXPECT_FALSE(other.WarmFromFile(path).ok());
  EXPECT_EQ(other.Serialize(), before);

  // A checksum-less file (raw Serialize bytes) is also rejected.
  RawWrite(path, trained.Serialize());
  EXPECT_FALSE(other.WarmFromFile(path).ok());
  EXPECT_EQ(other.Serialize(), before);

  // Missing file.
  EXPECT_FALSE(other.WarmFromFile(dir.File("absent.qrk")).ok());
}

// --------------------------------------------------------------- pipeline

WorkloadSpec PipelineSpec() {
  WorkloadSpec spec;
  spec.name = "RK";
  spec.seed = 6502;
  spec.num_templates = 12;
  spec.num_stream_sets = 10;
  return spec;
}

PipelineOptions BaseOptions(int num_threads) {
  PipelineOptions options;
  options.max_candidate_configs = 60;
  options.configs_to_execute = 6;
  options.num_threads = num_threads;
  return options;
}

void ExpectOutcomesEqual(const JobAnalysis& a, const JobAnalysis& b) {
  ASSERT_EQ(a.executed.size(), b.executed.size());
  for (size_t i = 0; i < a.executed.size(); ++i) {
    EXPECT_TRUE(a.executed[i].config == b.executed[i].config);
    EXPECT_EQ(a.executed[i].plan.est_cost, b.executed[i].plan.est_cost);
    EXPECT_EQ(a.executed[i].metrics.runtime, b.executed[i].metrics.runtime);
  }
  EXPECT_EQ(a.candidate_costs, b.candidate_costs);
  EXPECT_EQ(a.recompiled_ok, b.recompiled_ok);
  EXPECT_EQ(a.cheaper_than_default, b.cheaper_than_default);
  EXPECT_EQ(a.BestRuntimeChangePct(), b.BestRuntimeChangePct());
}

TEST(PipelineRanking, UnlimitedBudgetRankedEqualsUnranked) {
  // Selection is a filter, never a reorder: with the budget unlimited the
  // ranked pipeline compiles the identical stream and must produce a
  // bit-identical analysis.
  Workload workload(PipelineSpec());
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());

  SteeringPipeline unranked(&optimizer, &simulator, BaseOptions(0));
  PipelineOptions ranked_options = BaseOptions(0);
  ranked_options.rank_candidates = true;
  ranked_options.compile_budget = 0;  // unlimited
  SteeringPipeline ranked(&optimizer, &simulator, ranked_options);

  for (int t = 0; t < 4; ++t) {
    Job job = workload.MakeJob(t, /*day=*/1);
    SCOPED_TRACE(testing::Message() << "job=" << job.name);
    JobAnalysis a = unranked.AnalyzeJob(job);
    JobAnalysis b = ranked.AnalyzeJob(job);
    ExpectOutcomesEqual(a, b);
    EXPECT_EQ(b.candidates_scored, b.candidates_generated);
    EXPECT_EQ(b.budget_skipped, 0);
  }
}

TEST(PipelineRanking, UnrankedBudgetCompilesTheStreamPrefix) {
  Workload workload(PipelineSpec());
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());

  SteeringPipeline full(&optimizer, &simulator, BaseOptions(0));
  PipelineOptions budgeted_options = BaseOptions(0);
  budgeted_options.compile_budget = 15;
  SteeringPipeline budgeted(&optimizer, &simulator, budgeted_options);

  Job job = workload.MakeJob(1, /*day=*/2);
  JobAnalysis all = full.AnalyzeJob(job);
  JobAnalysis capped = budgeted.AnalyzeJob(job);
  EXPECT_EQ(capped.candidates_generated, all.candidates_generated);
  EXPECT_EQ(capped.candidates_compiled, 15);
  EXPECT_EQ(capped.budget_skipped, capped.candidates_generated - 15);
  EXPECT_EQ(capped.candidates_scored, 0) << "no ranker => nothing scored";
  // The compiled slice is the first 15 candidates of the full stream.
  ASSERT_LE(capped.candidate_costs.size(), all.candidate_costs.size());
  for (size_t i = 0; i < capped.candidate_costs.size(); ++i) {
    EXPECT_EQ(capped.candidate_costs[i], all.candidate_costs[i]);
  }
}

TEST(PipelineRanking, BudgetedRankedAnalysisIsDeterministicAcrossWorkerCounts) {
  // The headline determinism contract with ranking + budget on: analyses
  // and the trained ranker bytes are identical for 0, 1, 2 and 8 workers.
  Workload workload(PipelineSpec());
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());

  std::vector<Job> jobs;
  for (int t = 0; t < 6; ++t) jobs.push_back(workload.MakeJob(t, /*day=*/3));

  auto options_for = [](int workers) {
    PipelineOptions options = BaseOptions(workers);
    options.rank_candidates = true;
    options.compile_budget = 12;
    return options;
  };

  SteeringPipeline serial(&optimizer, &simulator, options_for(0));
  std::vector<JobAnalysis> reference = serial.AnalyzeJobs(jobs);
  std::string reference_bytes = serial.SerializeRanker();
  ASSERT_FALSE(reference_bytes.empty());

  for (int workers : {1, 2, 8}) {
    SteeringPipeline parallel(&optimizer, &simulator, options_for(workers));
    std::vector<JobAnalysis> batch = parallel.AnalyzeJobs(jobs);
    ASSERT_EQ(batch.size(), reference.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      SCOPED_TRACE(testing::Message() << "workers=" << workers << " job index " << i);
      ExpectOutcomesEqual(reference[i], batch[i]);
      EXPECT_EQ(reference[i].candidates_compiled, batch[i].candidates_compiled);
      EXPECT_EQ(reference[i].budget_skipped, batch[i].budget_skipped);
    }
    EXPECT_EQ(parallel.SerializeRanker(), reference_bytes) << "workers=" << workers;
  }

  // Two identical serial runs produce identical ranker bytes (run-to-run
  // determinism, not just worker-count independence).
  SteeringPipeline repeat(&optimizer, &simulator, options_for(0));
  repeat.AnalyzeJobs(jobs);
  EXPECT_EQ(repeat.SerializeRanker(), reference_bytes);
}

TEST(PipelineRanking, BudgetCountersAndStatsAreConsistent) {
  Workload workload(PipelineSpec());
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());
  PipelineOptions options = BaseOptions(0);
  options.rank_candidates = true;
  options.compile_budget = 10;
  SteeringPipeline pipeline(&optimizer, &simulator, options);

  std::vector<Job> jobs;
  for (int t = 0; t < 4; ++t) jobs.push_back(workload.MakeJob(t, /*day=*/5));
  std::vector<JobAnalysis> analyses = pipeline.AnalyzeJobs(jobs);

  int64_t scored = 0, compiled = 0, skipped = 0;
  for (const JobAnalysis& analysis : analyses) {
    EXPECT_EQ(analysis.candidates_scored, analysis.candidates_generated);
    EXPECT_LE(analysis.candidates_compiled, 10);
    EXPECT_EQ(analysis.candidates_compiled + analysis.budget_skipped,
              analysis.candidates_generated);
    scored += analysis.candidates_scored;
    compiled += analysis.candidates_compiled;
    skipped += analysis.budget_skipped;
  }
  SteeringPipeline::BudgetStats stats = pipeline.budget_stats();
  EXPECT_EQ(stats.candidates_scored, scored);
  EXPECT_EQ(stats.candidates_compiled, compiled);
  EXPECT_EQ(stats.budget_skipped, skipped);
  EXPECT_GT(stats.ranker_examples_trained, 0);
}

TEST(PipelineRanking, RankerPersistenceEndpointsRequireRanking) {
  Workload workload(PipelineSpec());
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());
  SteeringPipeline off(&optimizer, &simulator, BaseOptions(0));
  EXPECT_EQ(off.SaveRanker("/tmp/unused.qrk").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(off.WarmRanker("/tmp/unused.qrk").code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(off.SerializeRanker().empty());
  EXPECT_EQ(off.TrainRanker({}), 0);
}

TEST(PipelineRanking, SaveAndWarmRoundTripThroughThePipeline) {
  TempDir dir;
  Workload workload(PipelineSpec());
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());
  PipelineOptions options = BaseOptions(0);
  options.rank_candidates = true;
  options.compile_budget = 12;

  SteeringPipeline trained(&optimizer, &simulator, options);
  std::vector<Job> jobs;
  for (int t = 0; t < 4; ++t) jobs.push_back(workload.MakeJob(t, /*day=*/6));
  trained.AnalyzeJobs(jobs);
  std::string path = dir.File("pipeline_ranker.qrk");
  ASSERT_TRUE(trained.SaveRanker(path).ok());

  SteeringPipeline warmed(&optimizer, &simulator, options);
  ASSERT_TRUE(warmed.WarmRanker(path).ok());
  EXPECT_EQ(warmed.SerializeRanker(), trained.SerializeRanker());
}

// -------------------------------------------------------------- discovery

TEST(DiscoveryRanking, ShardedRankerBytesMatchUnsharded) {
  WorkloadSpec spec;
  spec.name = "DR";
  spec.seed = 9091;
  spec.num_templates = 12;
  spec.num_stream_sets = 10;
  Workload workload(spec);

  DiscoveryOptions options;
  options.num_shards = 4;
  options.max_jobs = 12;
  options.pipeline.max_candidate_configs = 24;
  options.pipeline.configs_to_execute = 4;
  options.pipeline.rank_candidates = true;
  options.fleet_compile_budget = 12 * 8;  // ~8 compiles per job

  Result<UnshardedDiscovery> reference = DiscoverUnsharded(&workload, 3, options);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_FALSE(reference.value().ranker_bytes.empty());

  for (int workers : {0, 4}) {
    TempDir dir;
    DiscoveryOptions run_options = options;
    run_options.dir = dir.path();
    run_options.num_workers = workers;
    ShardOrchestrator orchestrator(&workload, 3, run_options);
    Result<DiscoveryResult> run = orchestrator.Run();
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    ASSERT_TRUE(run.value().completed);
    EXPECT_EQ(run.value().merged_store, reference.value().store)
        << "workers=" << workers;
    EXPECT_EQ(run.value().merged_diff_table, reference.value().diff_table)
        << "workers=" << workers;
    EXPECT_EQ(run.value().ranker_bytes, reference.value().ranker_bytes)
        << "workers=" << workers;
    EXPECT_GT(run.value().counters.candidates_compiled, 0);
    EXPECT_GT(run.value().counters.budget_skipped, 0);
    EXPECT_EQ(run.value().counters.ranker_warm_loaded, 0);
  }
}

TEST(DiscoveryRanking, RankerPersistsAcrossRunsAndRejectsDamage) {
  WorkloadSpec spec;
  spec.name = "DR";
  spec.seed = 9091;
  spec.num_templates = 12;
  spec.num_stream_sets = 10;
  Workload workload(spec);

  TempDir dir;
  DiscoveryOptions options;
  options.dir = dir.File("run1");
  options.num_shards = 2;
  options.max_jobs = 8;
  options.pipeline.max_candidate_configs = 20;
  options.pipeline.configs_to_execute = 4;
  options.pipeline.rank_candidates = true;
  options.fleet_compile_budget = 40;
  options.ranker_out = dir.File("ranker.qrk");

  ShardOrchestrator first(&workload, 2, options);
  Result<DiscoveryResult> day2 = first.Run();
  ASSERT_TRUE(day2.ok()) << day2.status().ToString();
  ASSERT_TRUE(day2.value().completed);
  ASSERT_TRUE(std::filesystem::exists(options.ranker_out));

  // Day 3 warms from day 2's ranker.
  DiscoveryOptions warm_options = options;
  warm_options.dir = dir.File("run2");
  warm_options.ranker_in = options.ranker_out;
  warm_options.ranker_out.clear();
  ShardOrchestrator second(&workload, 3, warm_options);
  Result<DiscoveryResult> day3 = second.Run();
  ASSERT_TRUE(day3.ok()) << day3.status().ToString();
  ASSERT_TRUE(day3.value().completed);
  EXPECT_EQ(day3.value().counters.ranker_warm_loaded, 1);
  EXPECT_EQ(day3.value().counters.ranker_warm_rejected, 0);

  // Damage the artifact: the warm load is rejected and the run proceeds
  // cold (non-fatal), flagged in the counters.
  std::string bytes = RawRead(options.ranker_out);
  ASSERT_GT(bytes.size(), 20u);
  bytes[bytes.size() - 3] ^= 0x01;
  RawWrite(options.ranker_out, bytes);
  DiscoveryOptions damaged_options = warm_options;
  damaged_options.dir = dir.File("run3");
  ShardOrchestrator third(&workload, 3, damaged_options);
  Result<DiscoveryResult> cold = third.Run();
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_TRUE(cold.value().completed);
  EXPECT_EQ(cold.value().counters.ranker_warm_loaded, 0);
  EXPECT_EQ(cold.value().counters.ranker_warm_rejected, 1);
}

}  // namespace
}  // namespace qsteer
