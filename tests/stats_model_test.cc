#include "optimizer/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "catalog/datagen.h"

namespace qsteer {
namespace {

TEST(ZipfMath, GenHarmonicExactForSmallK) {
  EXPECT_NEAR(GenHarmonic(1, 1.0), 1.0, 1e-12);
  EXPECT_NEAR(GenHarmonic(3, 1.0), 1.0 + 0.5 + 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(GenHarmonic(4, 2.0), 1.0 + 0.25 + 1.0 / 9.0 + 1.0 / 16.0, 1e-12);
  EXPECT_DOUBLE_EQ(GenHarmonic(0, 1.0), 0.0);
}

TEST(ZipfMath, GenHarmonicApproximationAccurate) {
  // Compare the Euler–Maclaurin tail against a direct sum.
  for (double s : {0.5, 1.0, 1.5}) {
    double exact = 0.0;
    for (int i = 1; i <= 100000; ++i) exact += std::pow(i, -s);
    EXPECT_NEAR(GenHarmonic(100000, s) / exact, 1.0, 0.01) << s;
  }
}

TEST(ZipfMath, CdfUniformWhenNoSkew) {
  EXPECT_NEAR(ZipfCdf(25, 100, 0.0), 0.25, 1e-12);
  EXPECT_NEAR(ZipfCdf(100, 100, 0.0), 1.0, 1e-12);
  EXPECT_NEAR(ZipfCdf(0, 100, 0.0), 0.0, 1e-12);
}

TEST(ZipfMath, SkewedCdfFrontLoaded) {
  // Under zipf(1.0) over 1000 values, the first 10 values carry far more
  // than 1% of the mass.
  double mass = ZipfCdf(10, 1000, 1.0);
  EXPECT_GT(mass, 0.3);
  EXPECT_LT(mass, 0.6);
  EXPECT_NEAR(ZipfCdf(1000, 1000, 1.0), 1.0, 1e-9);
}

TEST(ZipfMath, PmfSumsToOne) {
  double total = 0.0;
  for (int k = 1; k <= 50; ++k) total += ZipfPmf(k, 50, 1.2);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(ZipfPmf(1, 50, 1.2), ZipfPmf(50, 50, 1.2));
}

TEST(ZipfMath, JoinMatchProbabilityUniformReducesToMaxNdv) {
  EXPECT_NEAR(ZipfJoinMatchProbability(100, 0, 1000, 0), 1.0 / 1000.0, 1e-12);
  EXPECT_NEAR(ZipfJoinMatchProbability(1000, 0, 100, 0), 1.0 / 1000.0, 1e-12);
}

TEST(ZipfMath, SkewedJoinsMatchMoreOften) {
  double uniform = ZipfJoinMatchProbability(1000, 0, 1000, 0);
  double skewed = ZipfJoinMatchProbability(1000, 1.0, 1000, 1.0);
  EXPECT_GT(skewed, uniform * 5);
}

// ---------------------------------------------------------------------------
// Selectivity under both views against materialized data
// ---------------------------------------------------------------------------

class StatsViewTest : public ::testing::Test {
 protected:
  StatsViewTest() {
    StreamSet set;
    set.name = "s";
    set.columns = {
        {.name = "key", .distinct_count = 200, .zipf_skew = 1.0},
        {.name = "uid", .distinct_count = 100},
        {.name = "flag", .distinct_count = 10},
    };
    set.correlations = {{.column_a = 1, .column_b = 2, .strength = 0.9}};
    int id = catalog_.AddStreamSet(std::move(set));
    EXPECT_TRUE(catalog_.AddStream(id, "s_d0", 50000, 8).ok());

    job_.name = "test";
    job_.day = 0;
    job_.columns = std::make_shared<ColumnUniverse>();
    key_ = job_.columns->GetOrAddBaseColumn(0, 0, "key");
    uid_ = job_.columns->GetOrAddBaseColumn(0, 1, "uid");
    flag_ = job_.columns->GetOrAddBaseColumn(0, 2, "flag");
  }

  double EmpiricalSelectivity(const ExprPtr& predicate, int64_t rows = 4000) {
    RowBatch batch = MaterializeStream(catalog_, 0, 0, rows);
    struct BatchRow : RowAccessor {
      const RowBatch* batch;
      int64_t row;
      int64_t Get(ColumnId column) const override {
        return batch->columns[static_cast<size_t>(column)][static_cast<size_t>(row)];
      }
    } accessor;
    accessor.batch = &batch;
    int pass = 0;
    for (int64_t r = 0; r < batch.num_rows(); ++r) {
      accessor.row = r;
      if (predicate->EvalPredicate(accessor)) ++pass;
    }
    return static_cast<double>(pass) / static_cast<double>(batch.num_rows());
  }

  Catalog catalog_;
  Job job_;
  ColumnId key_, uid_, flag_;
};

TEST_F(StatsViewTest, TrueRangeSelectivityMatchesData) {
  TrueStatsView truth(&catalog_, &job_);
  // key <= 5 under zipf(1.0) on 200 values: heavily front-loaded.
  ExprPtr pred = Expr::Cmp(key_, CmpOp::kLe, 5);
  double analytic = PredicateSelectivity(pred, truth);
  double empirical = EmpiricalSelectivity(pred);
  EXPECT_NEAR(analytic, empirical, 0.05);
  EXPECT_GT(analytic, 0.3);  // far from the uniform 2.5%
}

TEST_F(StatsViewTest, EstimatedRangeSelectivityAssumesUniform) {
  EstimatedStatsView est(&catalog_, job_.columns.get(), 0);
  ExprPtr pred = Expr::Cmp(key_, CmpOp::kLe, 5);
  double estimated = PredicateSelectivity(pred, est);
  // The uniform assumption puts this near 5/200, far below the skewed truth.
  EXPECT_LT(estimated, 0.08);
}

TEST_F(StatsViewTest, TrueConjunctionUsesCorrelation) {
  TrueStatsView truth(&catalog_, &job_);
  ExprPtr a = Expr::Cmp(uid_, CmpOp::kLe, 50);
  ExprPtr b = Expr::Cmp(flag_, CmpOp::kLe, 5);
  double sel_a = PredicateSelectivity(a, truth);
  double sel_b = PredicateSelectivity(b, truth);
  double joint = PredicateSelectivity(Expr::And({a, b}), truth);
  // uid and flag are 0.9-correlated: the joint selectivity must be well
  // above the independence product.
  EXPECT_GT(joint, sel_a * sel_b * 1.5);
  EXPECT_LE(joint, std::max(sel_a, sel_b) + 0.05);
}

TEST_F(StatsViewTest, EstimatorBackoffIsShapeSensitive) {
  EstimatedStatsView est(&catalog_, job_.columns.get(), 0);
  ExprPtr a = Expr::Cmp(uid_, CmpOp::kLe, 20);
  ExprPtr b = Expr::Cmp(flag_, CmpOp::kLe, 3);
  double combined = PredicateSelectivity(Expr::And({a, b}), est);
  double product = PredicateSelectivity(a, est) * PredicateSelectivity(b, est);
  // Exponential backoff: combined conjunction estimates HIGHER than the
  // independence product — this is the paper §5.3 shape-sensitivity.
  EXPECT_GT(combined, product * 1.2);
}

TEST_F(StatsViewTest, UdfSelectivityDiffersBetweenViews) {
  TrueStatsView truth(&catalog_, &job_);
  EstimatedStatsView est(&catalog_, job_.columns.get(), 0);
  ExprPtr udf = Expr::UdfPredicate("udf_x", 0.5, uid_);
  EXPECT_DOUBLE_EQ(PredicateSelectivity(udf, est), 0.5);
  double true_sel = PredicateSelectivity(udf, truth);
  EXPECT_DOUBLE_EQ(true_sel, UdfTrueSelectivity("udf_x"));
}

TEST_F(StatsViewTest, DeriveStatsScanSelectGroupBy) {
  TrueStatsView truth(&catalog_, &job_);
  Operator get;
  get.kind = OpKind::kGet;
  get.stream_id = 0;
  get.stream_set_id = 0;
  get.scan_columns = {key_, uid_, flag_};
  LogicalStats scan = DeriveStats(get, {}, truth);
  EXPECT_NEAR(scan.rows, static_cast<double>(catalog_.TrueRowCount(0, 0)), scan.rows * 0.01);
  EXPECT_NEAR(scan.NdvOf(key_), 200.0, 1.0);

  Operator select;
  select.kind = OpKind::kSelect;
  select.predicate = Expr::Cmp(flag_, CmpOp::kEq, 1);
  LogicalStats filtered = DeriveStats(select, {&scan}, truth);
  EXPECT_LT(filtered.rows, scan.rows);
  EXPECT_GT(filtered.rows, 0.0);

  Operator gb;
  gb.kind = OpKind::kGroupBy;
  gb.group_keys = {flag_};
  gb.aggs = {AggExpr{AggFunc::kCount, kInvalidColumn, 100}};
  job_.columns->AddDerivedColumn("pad", 10);  // ids below 100 unaffected
  LogicalStats grouped = DeriveStats(gb, {&scan}, truth);
  EXPECT_LE(grouped.rows, 10.5);  // flag has 10 distinct values
}

TEST_F(StatsViewTest, GroupByJointNdvShrinksUnderCorrelation) {
  TrueStatsView truth(&catalog_, &job_);
  EstimatedStatsView est(&catalog_, job_.columns.get(), 0);
  Operator get;
  get.kind = OpKind::kGet;
  get.stream_id = 0;
  get.stream_set_id = 0;
  get.scan_columns = {key_, uid_, flag_};
  LogicalStats scan_true = DeriveStats(get, {}, truth);
  LogicalStats scan_est = DeriveStats(get, {}, est);

  Operator gb;
  gb.kind = OpKind::kGroupBy;
  gb.group_keys = {uid_, flag_};
  LogicalStats true_groups = DeriveStats(gb, {&scan_true}, truth);
  LogicalStats est_groups = DeriveStats(gb, {&scan_est}, est);
  // uid determines flag with 0.9 strength: the true joint NDV is much
  // smaller than the independence product 100 * 10 = 1000.
  EXPECT_LT(true_groups.rows, 350.0);
  // The estimator applies no correlation discount: its joint NDV is the
  // full product of its believed per-column NDVs.
  double est_product = scan_est.NdvOf(uid_) * scan_est.NdvOf(flag_);
  EXPECT_NEAR(est_groups.rows, std::min(est_product, scan_est.rows), est_product * 0.01);
}

TEST_F(StatsViewTest, JoinCardinalityWithSkewInflation) {
  TrueStatsView truth(&catalog_, &job_);
  Operator get;
  get.kind = OpKind::kGet;
  get.stream_id = 0;
  get.stream_set_id = 0;
  get.scan_columns = {key_, uid_, flag_};
  LogicalStats side = DeriveStats(get, {}, truth);

  Operator join;
  join.kind = OpKind::kJoin;
  join.join_type = JoinType::kInner;
  join.left_keys = {key_};
  join.right_keys = {key_};
  LogicalStats joined = DeriveStats(join, {&side, &side}, truth);
  double uniform_expect = side.rows * side.rows / 200.0;
  // Both sides zipf(1.0): matches inflate well beyond the uniform estimate.
  EXPECT_GT(joined.rows, uniform_expect * 3);
}

TEST_F(StatsViewTest, UnionAndTopAndProcess) {
  TrueStatsView truth(&catalog_, &job_);
  Operator get;
  get.kind = OpKind::kGet;
  get.stream_id = 0;
  get.stream_set_id = 0;
  get.scan_columns = {key_, uid_, flag_};
  LogicalStats scan = DeriveStats(get, {}, truth);

  Operator u;
  u.kind = OpKind::kUnionAll;
  LogicalStats unioned = DeriveStats(u, {&scan, &scan, &scan}, truth);
  EXPECT_NEAR(unioned.rows, 3 * scan.rows, 1.0);

  Operator top;
  top.kind = OpKind::kTop;
  top.limit = 10;
  top.sort_keys = {key_};
  EXPECT_DOUBLE_EQ(DeriveStats(top, {&unioned}, truth).rows, 10.0);

  Operator process;
  process.kind = OpKind::kProcess;
  process.udo_name = "udo_y";
  process.udo_selectivity_guess = 1.0;
  LogicalStats processed = DeriveStats(process, {&scan}, truth);
  EXPECT_LT(processed.rows, scan.rows * 1.01);
  EXPECT_GT(processed.rows, 0.0);
}

// ---------------------------------------------------------------------------
// StatsModel seam: scalar parity and histogram-grade refinement
// ---------------------------------------------------------------------------

TEST_F(StatsViewTest, ScalarModelIsBitIdenticalToDefaultView) {
  // The estimator parity contract: an explicit ScalarStatsModel, the
  // catalog's default model, and the pre-seam formulas all serve the same
  // bits for every estimate the optimizer consumes.
  ScalarStatsModel scalar;
  EstimatedStatsView with_model(&catalog_, job_.columns.get(), 0, &scalar);
  EstimatedStatsView default_view(&catalog_, job_.columns.get(), 0);

  EXPECT_DOUBLE_EQ(with_model.StreamRows(0), default_view.StreamRows(0));
  EXPECT_DOUBLE_EQ(with_model.StreamWidth(0), default_view.StreamWidth(0));
  for (ColumnId col : {key_, uid_, flag_}) {
    ColumnDistribution a = with_model.ColumnDist(col);
    ColumnDistribution b = default_view.ColumnDist(col);
    EXPECT_DOUBLE_EQ(a.ndv, b.ndv);
    EXPECT_DOUBLE_EQ(a.domain, b.domain);
    EXPECT_DOUBLE_EQ(a.null_fraction, b.null_fraction);
    EXPECT_EQ(a.histogram, nullptr);
    EXPECT_DOUBLE_EQ(with_model.TopValueShare(col), 0.0);
  }
  // The pre-seam closed forms, reproduced literally: NDV from the first
  // stream's sampled stats, range selectivity from uniformity.
  OptimizerStreamStats raw = catalog_.GetOptimizerStats(0, 0);
  EXPECT_DOUBLE_EQ(with_model.ColumnDist(key_).ndv, std::max(1.0, raw.distinct_counts[0]));
  ExprPtr range = Expr::Cmp(key_, CmpOp::kLe, 5);
  EXPECT_DOUBLE_EQ(PredicateSelectivity(range, with_model),
                   PredicateSelectivity(range, default_view));
  ExprPtr eq = Expr::Cmp(uid_, CmpOp::kEq, 7);
  EXPECT_DOUBLE_EQ(PredicateSelectivity(eq, with_model),
                   PredicateSelectivity(eq, default_view));
}

TEST_F(StatsViewTest, HistogramModelBeatsScalarOnSkewedRange) {
  // key is zipf(1.0) over 200 values: truth for key <= 5 is ~40%, scalar
  // uniformity says 2.5%. The histogram view must land far closer.
  HistogramStatsModel histogram_model;
  EstimatedStatsView histogram_view(&catalog_, job_.columns.get(), 0, &histogram_model);
  EstimatedStatsView scalar_view(&catalog_, job_.columns.get(), 0);
  TrueStatsView truth(&catalog_, &job_);

  ExprPtr pred = Expr::Cmp(key_, CmpOp::kLe, 5);
  double true_sel = PredicateSelectivity(pred, truth);
  double scalar_sel = PredicateSelectivity(pred, scalar_view);
  double histogram_sel = PredicateSelectivity(pred, histogram_view);
  auto q_error = [](double est, double tru) {
    return std::max(est / tru, tru / est);
  };
  EXPECT_LT(q_error(histogram_sel, true_sel), q_error(scalar_sel, true_sel) / 2.0);
  EXPECT_NEAR(histogram_sel, true_sel, 0.05);

  // Hot-value equality: the histogram knows value 1 is hot; scalar says
  // 1/ndv for every value.
  ExprPtr hot = Expr::Cmp(key_, CmpOp::kEq, 1);
  double true_hot = PredicateSelectivity(hot, truth);
  EXPECT_LT(q_error(PredicateSelectivity(hot, histogram_view), true_hot),
            q_error(PredicateSelectivity(hot, scalar_view), true_hot));
  EXPECT_GT(histogram_view.TopValueShare(key_), 0.05);
}

TEST_F(StatsViewTest, CatalogActiveModelFlowsIntoDefaultViewCtor) {
  // Installing a model on the catalog changes what the 3-arg view serves;
  // the explicit 4-arg override still wins.
  catalog_.set_stats_model(std::make_shared<HistogramStatsModel>());
  EstimatedStatsView view(&catalog_, job_.columns.get(), 0);
  EXPECT_NE(view.ColumnDist(key_).histogram, nullptr);
  ScalarStatsModel scalar;
  EstimatedStatsView overridden(&catalog_, job_.columns.get(), 0, &scalar);
  EXPECT_EQ(overridden.ColumnDist(key_).histogram, nullptr);
  catalog_.set_stats_model(nullptr);  // restore the default for other tests
}

TEST_F(StatsViewTest, HistogramJoinMatchProbabilityMatchesZipfForm) {
  // Two uniform histograms reduce to the 1/max(ndv) containment bound, like
  // the scalar Zipf formula at skew 0.
  Histogram a = Histogram::BuildEquiDepth(100, 0.0, 16);
  Histogram b = Histogram::BuildEquiDepth(1000, 0.0, 16);
  EXPECT_NEAR(HistogramJoinMatchProbability(a, b), 1.0 / 1000.0, 1e-6);
  // Skewed sides: hot values align, matches inflate beyond uniform.
  Histogram sa = Histogram::BuildEquiDepth(1000, 1.0, 32);
  double skewed = HistogramJoinMatchProbability(sa, sa);
  double uniform = HistogramJoinMatchProbability(
      Histogram::BuildEquiDepth(1000, 0.0, 32), Histogram::BuildEquiDepth(1000, 0.0, 32));
  EXPECT_GT(skewed, uniform * 5);
}

}  // namespace
}  // namespace qsteer
