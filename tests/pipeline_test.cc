// End-to-end tests of the discovery pipeline (§5-§6): recompilation,
// cheapest-plan selection, A/B execution, and the job-selection heuristics.
#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "workload/generator.h"

namespace qsteer {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest()
      : workload_(Spec()),
        optimizer_(&workload_.catalog()),
        simulator_(&workload_.catalog()),
        pipeline_(&optimizer_, &simulator_, Options()) {}

  static WorkloadSpec Spec() {
    WorkloadSpec spec;
    spec.name = "P";
    spec.seed = 2024;
    spec.num_templates = 24;
    spec.num_stream_sets = 18;
    return spec;
  }

  static PipelineOptions Options() {
    PipelineOptions options;
    options.max_candidate_configs = 60;
    options.configs_to_execute = 8;
    return options;
  }

  Workload workload_;
  Optimizer optimizer_;
  ExecutionSimulator simulator_;
  SteeringPipeline pipeline_;
};

TEST_F(PipelineTest, RecompileProducesDistinctExecutablePlans) {
  Job job = workload_.MakeJob(0, 1);
  JobAnalysis analysis = pipeline_.Recompile(job);
  ASSERT_NE(analysis.default_plan.root, nullptr);
  EXPECT_GT(analysis.candidates_generated, 10);
  EXPECT_GT(analysis.recompiled_ok, 5);
  EXPECT_LE(static_cast<int>(analysis.executed.size()), 8);
  EXPECT_GE(static_cast<int>(analysis.executed.size()), 1);
  // Executed plans are distinct from the default and from each other.
  std::set<uint64_t> hashes = {PlanHash(analysis.default_plan.root, false)};
  for (const ConfigOutcome& outcome : analysis.executed) {
    EXPECT_TRUE(hashes.insert(PlanHash(outcome.plan.root, false)).second);
    EXPECT_FALSE(outcome.executed);  // Recompile() does not execute
  }
}

TEST_F(PipelineTest, ExecutedOutcomesAreCheapestFirst) {
  JobAnalysis analysis = pipeline_.Recompile(workload_.MakeJob(1, 1));
  for (size_t i = 1; i < analysis.executed.size(); ++i) {
    EXPECT_LE(analysis.executed[i - 1].plan.est_cost, analysis.executed[i].plan.est_cost);
  }
}

TEST_F(PipelineTest, AnalyzeJobExecutesAndFindsImprovements) {
  int improved = 0, jobs = 0;
  for (int t = 0; t < 10; ++t) {
    JobAnalysis analysis = pipeline_.AnalyzeJob(workload_.MakeJob(t, 1));
    if (analysis.default_plan.root == nullptr) continue;
    ++jobs;
    EXPECT_GT(analysis.default_metrics.runtime, 0.0);
    for (const ConfigOutcome& outcome : analysis.executed) {
      EXPECT_TRUE(outcome.executed);
      EXPECT_GT(outcome.metrics.runtime, 0.0);
    }
    if (analysis.BestRuntimeChangePct() < -3.0) ++improved;
  }
  ASSERT_EQ(jobs, 10);
  // Paper §6.2: at least one alternative improves runtimes for a majority
  // of analyzed jobs.
  EXPECT_GE(improved, 5);
}

TEST_F(PipelineTest, RuleDiffOnlyReflectsActualPlanChanges) {
  JobAnalysis analysis = pipeline_.Recompile(workload_.MakeJob(2, 1));
  for (const ConfigOutcome& outcome : analysis.executed) {
    // Executed alternatives have distinct plans, so their signatures must
    // differ from the default in at least one direction.
    EXPECT_FALSE(outcome.diff_vs_default.Empty())
        << "distinct plan with empty RuleDiff";
    // Every "only in default" rule is genuinely in the default signature.
    for (RuleId id : outcome.diff_vs_default.only_in_default) {
      EXPECT_TRUE(analysis.default_plan.signature.Test(id));
      EXPECT_FALSE(outcome.plan.signature.Test(id));
    }
    for (RuleId id : outcome.diff_vs_default.only_in_new) {
      EXPECT_TRUE(outcome.plan.signature.Test(id));
      EXPECT_FALSE(analysis.default_plan.signature.Test(id));
    }
  }
}

TEST_F(PipelineTest, JobWindowSelection) {
  std::vector<double> runtimes = {10.0, 400.0, 3000.0, 5000.0, 299.0, 3601.0};
  std::vector<int> selected = pipeline_.SelectJobsInWindow(runtimes);
  EXPECT_EQ(selected, (std::vector<int>{1, 2}));
}

TEST_F(PipelineTest, LowCostHighRuntimeCorner) {
  // Costs ascending with runtimes mostly following, plus one anomaly: cheap
  // estimate but huge runtime (index 1).
  std::vector<double> costs = {1.0, 2.0, 3.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0};
  std::vector<double> runtimes = {5.0, 900.0, 15.0, 40.0, 80.0, 120.0, 160.0, 200.0,
                                  240.0, 280.0};
  std::vector<int> corner = pipeline_.SelectLowCostHighRuntime(costs, runtimes);
  ASSERT_EQ(corner.size(), 1u);
  EXPECT_EQ(corner[0], 1);
}

TEST_F(PipelineTest, ExhaustedRetryBudgetDegradesToDefaultPlan) {
  // Every execution fails (job_failure_prob = 1), so the retry budget is
  // exhausted on the default run and on every executed alternative. The
  // pipeline must degrade — keep the default plan, report no best outcome —
  // rather than return an error, and the failure counters must account for
  // exactly the injected faults.
  SimulatorOptions sim_options;
  sim_options.fault_profile.job_failure_prob = 1.0;
  ExecutionSimulator faulty(&workload_.catalog(), sim_options);
  PipelineOptions options = Options();
  options.retry.max_attempts = 3;
  SteeringPipeline pipeline(&optimizer_, &faulty, options);

  JobAnalysis analysis = pipeline.AnalyzeJob(workload_.MakeJob(0, 1));
  ASSERT_NE(analysis.default_plan.root, nullptr) << "compilation is unaffected by faults";
  EXPECT_TRUE(analysis.default_metrics.failed);
  EXPECT_EQ(analysis.BestBy(Metric::kRuntime), nullptr);
  EXPECT_DOUBLE_EQ(analysis.BestRuntimeChangePct(), 0.0) << "default plan is kept";
  EXPECT_GE(analysis.executed.size(), 1u);
  for (const ConfigOutcome& outcome : analysis.executed) {
    EXPECT_TRUE(outcome.metrics.failed);
  }
  // Counter accounting: the default run + every executed alternative failed
  // terminally, each after (max_attempts - 1) retries. Nothing else ran.
  int runs = 1 + static_cast<int>(analysis.executed.size());
  EXPECT_EQ(analysis.exec_failures, static_cast<int>(analysis.executed.size()));
  PipelineFailureStats stats = pipeline.failure_stats();
  EXPECT_EQ(stats.exec_failures, runs);
  EXPECT_EQ(stats.exec_retries, static_cast<int64_t>(options.retry.max_attempts - 1) * runs);
  EXPECT_EQ(stats.fallbacks, static_cast<int64_t>(analysis.executed.size()));
}

TEST_F(PipelineTest, AnalysisIsDeterministic) {
  JobAnalysis a = pipeline_.AnalyzeJob(workload_.MakeJob(3, 2));
  JobAnalysis b = pipeline_.AnalyzeJob(workload_.MakeJob(3, 2));
  EXPECT_EQ(a.executed.size(), b.executed.size());
  EXPECT_DOUBLE_EQ(a.default_metrics.runtime, b.default_metrics.runtime);
  EXPECT_DOUBLE_EQ(a.BestRuntimeChangePct(), b.BestRuntimeChangePct());
}

TEST_F(PipelineTest, UnavailableCompileTierIsRetriedTransiently) {
  // A remote compile tier answering kUnavailable on the first two attempts
  // of every compile: the transient classification (common/status.h
  // IsTransient) must retry with backoff until the tier recovers, and the
  // analysis must come out bit-identical to a fault-free run — transient
  // infrastructure flaps may cost retries, never results.
  PipelineOptions options = Options();
  options.retry.max_attempts = 3;
  options.compile_fault_for_testing = [](const Job&, int attempt) {
    return attempt <= 2 ? Status::Unavailable("compile tier over capacity")
                        : Status::OK();
  };
  SteeringPipeline flaky(&optimizer_, &simulator_, options);
  JobAnalysis faulted = flaky.AnalyzeJob(workload_.MakeJob(2, 3));
  JobAnalysis clean = pipeline_.AnalyzeJob(workload_.MakeJob(2, 3));

  ASSERT_NE(faulted.default_plan.root, nullptr);
  EXPECT_EQ(faulted.default_plan.signature, clean.default_plan.signature);
  EXPECT_DOUBLE_EQ(faulted.default_plan.est_cost, clean.default_plan.est_cost);
  ASSERT_EQ(faulted.executed.size(), clean.executed.size());
  for (size_t i = 0; i < faulted.executed.size(); ++i) {
    EXPECT_EQ(faulted.executed[i].config, clean.executed[i].config);
    EXPECT_DOUBLE_EQ(faulted.executed[i].metrics.runtime,
                     clean.executed[i].metrics.runtime);
  }
  EXPECT_DOUBLE_EQ(faulted.BestRuntimeChangePct(), clean.BestRuntimeChangePct());

  PipelineFailureStats stats = flaky.failure_stats();
  EXPECT_EQ(stats.compile_unavailable, 0) << "every compile recovered within budget";
  EXPECT_GT(stats.compile_retries, 0);
  EXPECT_GT(stats.retry_backoff_s, 0.0) << "backoff is accounted, not slept";
}

TEST_F(PipelineTest, UnavailableExhaustionFailsStopNeverWrongPlans) {
  // The tier never recovers: after the retry budget the compile must
  // surface as kUnavailable — a missing default plan, counted in
  // compile_unavailable — rather than being mistaken for a permanent
  // property of the configuration (compile_failures) or, worse, producing
  // a plan from nothing.
  PipelineOptions options = Options();
  options.retry.max_attempts = 3;
  options.compile_fault_for_testing = [](const Job&, int) {
    return Status::Unavailable("compile tier down");
  };
  SteeringPipeline down(&optimizer_, &simulator_, options);
  JobAnalysis analysis = down.AnalyzeJob(workload_.MakeJob(2, 3));

  EXPECT_EQ(analysis.default_plan.root, nullptr);
  EXPECT_TRUE(analysis.executed.empty());
  PipelineFailureStats stats = down.failure_stats();
  EXPECT_EQ(stats.compile_unavailable, 1) << "the default compile, once, post-retries";
  EXPECT_EQ(stats.compile_retries, 2);
  EXPECT_EQ(stats.compile_failures, 0) << "kUnavailable is not a permanent failure";
}

}  // namespace
}  // namespace qsteer
