#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace qsteer {
namespace {

TEST(Pcg32, DeterministicForSeed) {
  Pcg32 a(123, 7);
  Pcg32 b(123, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU32(), b.NextU32());
}

TEST(Pcg32, DifferentSeedsDiffer) {
  Pcg32 a(1, 7);
  Pcg32 b(2, 7);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32, NextDoubleInUnitInterval) {
  Pcg32 rng(99);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Pcg32, UniformIntRespectsBoundsAndCoversRange) {
  Pcg32 rng(5);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(rng.UniformInt(4, 4), 4);
}

TEST(Pcg32, GaussianMomentsApproximatelyStandard) {
  Pcg32 rng(77);
  double sum = 0.0, sumsq = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sumsq += v * v;
  }
  double mean = sum / kN;
  double var = sumsq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Pcg32, LogNormalIsPositiveWithRightMedian) {
  Pcg32 rng(31);
  std::vector<double> values;
  for (int i = 0; i < 20001; ++i) {
    double v = rng.NextLogNormal(1.0, 0.5);
    EXPECT_GT(v, 0.0);
    values.push_back(v);
  }
  std::sort(values.begin(), values.end());
  EXPECT_NEAR(values[values.size() / 2], std::exp(1.0), 0.1);
}

TEST(Pcg32, SampleWithoutReplacementIsDistinctAndBounded) {
  Pcg32 rng(13);
  std::vector<int> sample = rng.SampleWithoutReplacement(100, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
  // k > n clamps.
  EXPECT_EQ(rng.SampleWithoutReplacement(5, 50).size(), 5u);
  EXPECT_TRUE(rng.SampleWithoutReplacement(0, 3).empty());
}

TEST(Pcg32, ShuffleIsPermutation) {
  Pcg32 rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(ZipfSampler, UniformWhenSkewHandledByPmf) {
  ZipfSampler z(10, 1.0);
  // Rank 1 strictly more likely than rank 10.
  EXPECT_GT(z.Pmf(1), z.Pmf(10));
  double total = 0.0;
  for (int k = 1; k <= 10; ++k) total += z.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(z.Pmf(0), 0.0);
  EXPECT_EQ(z.Pmf(11), 0.0);
}

TEST(ZipfSampler, EmpiricalFrequenciesMatchPmf) {
  ZipfSampler z(50, 1.2);
  Pcg32 rng(7);
  std::vector<int> counts(51, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    int k = z.Sample(&rng);
    ASSERT_GE(k, 1);
    ASSERT_LE(k, 50);
    ++counts[static_cast<size_t>(k)];
  }
  for (int k : {1, 2, 5, 10}) {
    double expected = z.Pmf(k) * kN;
    EXPECT_NEAR(counts[static_cast<size_t>(k)], expected, expected * 0.12 + 30) << k;
  }
}

}  // namespace
}  // namespace qsteer
