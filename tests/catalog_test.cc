#include "catalog/catalog.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "catalog/datagen.h"

namespace qsteer {
namespace {

Catalog MakeCatalog() {
  Catalog catalog;
  StreamSet set;
  set.name = "logs";
  set.columns = {
      {.name = "key", .distinct_count = 1000, .zipf_skew = 1.0},
      {.name = "uid", .distinct_count = 500},
      {.name = "region", .distinct_count = 50, .null_fraction = 0.1},
  };
  set.correlations = {{.column_a = 0, .column_b = 1, .strength = 0.9}};
  set.daily_growth = 0.02;
  int id = catalog.AddStreamSet(std::move(set));
  EXPECT_TRUE(catalog.AddStream(id, "logs_d0", 100000, 16).ok());
  EXPECT_TRUE(catalog.AddStream(id, "logs_d1", 120000, 16).ok());
  return catalog;
}

TEST(Catalog, LookupByName) {
  Catalog catalog = MakeCatalog();
  EXPECT_NE(catalog.FindStreamSet("logs"), nullptr);
  EXPECT_EQ(catalog.FindStreamSet("nope"), nullptr);
  const Stream* s = catalog.FindStream("logs_d1");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->variant_index, 1);
  EXPECT_EQ(catalog.FindStream("bogus"), nullptr);
}

TEST(Catalog, DuplicateStreamNameRejected) {
  Catalog catalog = MakeCatalog();
  Result<int> dup = catalog.AddStream(0, "logs_d0", 5, 4);
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kInvalidArgument);
  Result<int> bad_set = catalog.AddStream(99, "x", 5, 4);
  EXPECT_FALSE(bad_set.ok());
}

TEST(Catalog, TrueRowCountGrowsWithDays) {
  Catalog catalog = MakeCatalog();
  double day0 = static_cast<double>(catalog.TrueRowCount(0, 0));
  double day30 = static_cast<double>(catalog.TrueRowCount(0, 30));
  // 2% daily growth over 30 days ≈ 1.81x, modulo jitter.
  EXPECT_GT(day30 / day0, 1.3);
  EXPECT_LT(day30 / day0, 2.6);
  // Deterministic.
  EXPECT_EQ(catalog.TrueRowCount(0, 30), catalog.TrueRowCount(0, 30));
}

TEST(Catalog, OptimizerStatsAreStaleForGrowingStreams) {
  Catalog catalog = MakeCatalog();
  StatsErrorModel model;
  model.staleness_days = 5;
  model.rowcount_error_sigma = 0.0;
  catalog.set_stats_error_model(model);
  int day = 40;
  OptimizerStreamStats stats = catalog.GetOptimizerStats(0, day);
  int64_t true_rows = catalog.TrueRowCount(0, day);
  int64_t stale_truth = catalog.TrueRowCount(0, day - 5);
  EXPECT_EQ(stats.row_count, stale_truth);
  EXPECT_NE(stats.row_count, true_rows);
}

TEST(Catalog, OptimizerNdvHasBoundedError) {
  Catalog catalog = MakeCatalog();
  OptimizerStreamStats stats = catalog.GetOptimizerStats(0, 3);
  ASSERT_EQ(stats.distinct_counts.size(), 3u);
  for (size_t c = 0; c < 3; ++c) {
    double believed = stats.distinct_counts[c];
    double truth = static_cast<double>(catalog.stream_set(0).columns[c].distinct_count);
    EXPECT_GT(believed, 0.0);
    // Error is lognormal(0.6): within e^{±3 sigma} almost surely.
    EXPECT_LT(std::abs(std::log(believed / truth)), 2.0) << c;
  }
}

TEST(Catalog, CorrelationLookupIsSymmetric) {
  Catalog catalog = MakeCatalog();
  const StreamSet& set = catalog.stream_set(0);
  EXPECT_DOUBLE_EQ(set.CorrelationBetween(0, 1), 0.9);
  EXPECT_DOUBLE_EQ(set.CorrelationBetween(1, 0), 0.9);
  EXPECT_DOUBLE_EQ(set.CorrelationBetween(0, 2), 0.0);
}

TEST(Datagen, MaterializeRespectsRowCapAndDomains) {
  Catalog catalog = MakeCatalog();
  RowBatch batch = MaterializeStream(catalog, 0, /*day=*/1, /*max_rows=*/500);
  EXPECT_EQ(batch.num_rows(), 500);
  ASSERT_EQ(batch.columns.size(), 3u);
  for (int64_t v : batch.columns[0]) {
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 1000);
  }
}

TEST(Datagen, NullFractionApproximatelyRespected) {
  Catalog catalog = MakeCatalog();
  RowBatch batch = MaterializeStream(catalog, 0, 1, 4000);
  int nulls = 0;
  for (int64_t v : batch.columns[2]) {
    if (v == kNullValue) ++nulls;
  }
  double frac = static_cast<double>(nulls) / static_cast<double>(batch.num_rows());
  EXPECT_NEAR(frac, 0.1, 0.03);
}

TEST(Datagen, SkewedColumnHasHotValues) {
  Catalog catalog = MakeCatalog();
  RowBatch batch = MaterializeStream(catalog, 0, 1, 4000);
  // With zipf 1.0 over 1000 values, rank 1 should carry far more than the
  // uniform share.
  int hot = 0;
  for (int64_t v : batch.columns[0]) {
    if (v == 1) ++hot;
  }
  EXPECT_GT(hot, 4000 / 1000 * 20);
}

TEST(Datagen, CorrelatedColumnFollowsDriver) {
  Catalog catalog = MakeCatalog();
  RowBatch batch = MaterializeStream(catalog, 0, 1, 4000);
  // column 1 is 90%-determined by column 0: group rows by column-0 value and
  // check the dominant column-1 value covers most of each group.
  std::map<int64_t, std::map<int64_t, int>> groups;
  for (int64_t r = 0; r < batch.num_rows(); ++r) {
    int64_t a = batch.columns[0][static_cast<size_t>(r)];
    int64_t b = batch.columns[1][static_cast<size_t>(r)];
    if (a == kNullValue || b == kNullValue) continue;
    groups[a][b]++;
  }
  int big_groups = 0, dominated = 0;
  for (const auto& [a, dist] : groups) {
    int total = 0, best = 0;
    for (const auto& [b, count] : dist) {
      total += count;
      best = std::max(best, count);
    }
    if (total >= 20) {
      ++big_groups;
      if (best >= static_cast<int>(0.7 * total)) ++dominated;
    }
  }
  ASSERT_GT(big_groups, 3);
  EXPECT_GE(dominated, big_groups * 2 / 3);
}

TEST(Datagen, DeterministicPerStreamAndDay) {
  Catalog catalog = MakeCatalog();
  RowBatch a = MaterializeStream(catalog, 0, 2, 100);
  RowBatch b = MaterializeStream(catalog, 0, 2, 100);
  EXPECT_EQ(a.columns, b.columns);
  RowBatch other_day = MaterializeStream(catalog, 0, 3, 100);
  EXPECT_NE(a.columns, other_day.columns);
}

}  // namespace
}  // namespace qsteer
