// Chaos tests of the replicated serving tier: kill/restart churn,
// deterministic failover, tail vs. snapshot catch-up, staleness shedding,
// wire corruption, and concurrent serving during churn (TSan coverage).
#include "service/replication.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "common/hash_ring.h"

namespace qsteer {
namespace {

class TempDir {
 public:
  TempDir() {
    dir_ = std::filesystem::temp_directory_path() /
           ("qsteer_fleet_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() { std::filesystem::remove_all(dir_); }
  std::string path() const { return dir_.string(); }

 private:
  static inline int counter_ = 0;
  std::filesystem::path dir_;
};

RuleSignature Sig(int bit) {
  RuleSignature s;
  s.Set(bit);
  return s;
}

RuleConfig AltConfig(int n) {
  RuleConfig def = RuleConfig::Default();
  std::vector<int> toggleable;
  for (int id = 0; id < 256; ++id) {
    RuleConfig config = def;
    if (config.IsEnabled(id)) {
      config.Disable(id);
    } else {
      config.Enable(id);
    }
    if (config != def) toggleable.push_back(id);
  }
  RuleConfig config = def;
  int id = toggleable[static_cast<size_t>(n) % toggleable.size()];
  if (config.IsEnabled(id)) {
    config.Disable(id);
  } else {
    config.Enable(id);
  }
  return config;
}

SteeringRecommender::CandidateObservation Candidate(int sig_bit, int config_n,
                                                    double improvement) {
  SteeringRecommender::CandidateObservation observation;
  observation.signature = Sig(sig_bit);
  observation.config = AltConfig(config_n);
  observation.improvement_pct = improvement;
  return observation;
}

FleetOptions Options(const std::string& dir, int replicas = 3) {
  FleetOptions options;
  options.dir = dir;
  options.num_replicas = replicas;
  options.snapshot_interval = 16;
  options.sync = false;
  options.staleness_bound = 8;
  return options;
}

/// Acked-mutation journal: what golden replay reconstructs from.
struct AckedOp {
  int sig_bit;
  int config_n;
  double value;
  char type;  // 'L' learn, 'O' outcome, 'V' validation
};

void ApplyAcked(DurableRecommenderStore& store, const AckedOp& op) {
  switch (op.type) {
    case 'L':
      store.LearnCandidate(Candidate(op.sig_bit, op.config_n, op.value));
      break;
    case 'V':
      store.ObserveValidation(Sig(op.sig_bit), op.value);
      break;
    default:
      store.ObserveOutcome(Sig(op.sig_bit), op.value);
      break;
  }
}

/// Replays the acked-op journal into a fresh ephemeral store: the ground
/// truth every surviving replica must match bit-for-bit.
std::string GoldenState(const std::vector<AckedOp>& acked) {
  DurableRecommenderStore store;
  EXPECT_TRUE(store.Open().ok());
  for (const AckedOp& op : acked) ApplyAcked(store, op);
  return store.SerializeState();
}

TEST(FleetTest, MutationsReplicateToAllFollowers) {
  TempDir dir;
  ReplicationFleet fleet(Options(dir.path()));
  ASSERT_TRUE(fleet.Start().ok());
  EXPECT_EQ(fleet.leader_id(), 0u);
  EXPECT_EQ(fleet.epoch(), 1u);
  bool learned = false;
  ASSERT_TRUE(fleet.LearnCandidate(Candidate(1, 0, -10.0), &learned).ok());
  EXPECT_TRUE(learned);
  ASSERT_TRUE(fleet.ObserveValidation(Sig(1), -9.0).ok());
  for (int i = 0; i < fleet.num_replicas(); ++i) {
    EXPECT_EQ(fleet.replica_store(static_cast<uint32_t>(i))->applied_seq(), 2u)
        << "replica " << i;
  }
  EXPECT_TRUE(fleet.CheckConvergence().ok());
}

TEST(FleetTest, ServingRoutesMatchAStandaloneRing) {
  // The fleet's routing must be exactly the documented consistent-hash
  // placement — a test ring built independently predicts which replica
  // serves each signature.
  TempDir dir;
  FleetOptions options = Options(dir.path());
  ReplicationFleet fleet(options);
  ASSERT_TRUE(fleet.Start().ok());
  ASSERT_TRUE(fleet.LearnCandidate(Candidate(3, 0, -10.0)).ok());
  ConsistentHashRing ring(options.ring_vnodes);
  for (uint32_t r = 0; r < 3; ++r) ring.AddReplica(r);
  for (int bit = 0; bit < 64; ++bit) {
    ReplicationFleet::ServeResult result;
    ASSERT_TRUE(fleet.Serve(Sig(bit), &result).ok());
    EXPECT_EQ(result.replica, ring.RouteFor(ReplicationFleet::RouteKey(Sig(bit))))
        << "bit " << bit;
    EXPECT_FALSE(result.rerouted);
  }
}

TEST(FleetTest, FollowerKillRestartCatchesUpByTail) {
  TempDir dir;
  ReplicationFleet fleet(Options(dir.path()));
  ASSERT_TRUE(fleet.Start().ok());
  ASSERT_TRUE(fleet.LearnCandidate(Candidate(1, 0, -10.0)).ok());
  ASSERT_TRUE(fleet.Kill(2).ok());
  // Mutations continue while replica 2 is down (still acked: 2 is dead,
  // not reachable).
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(fleet.ObserveOutcome(Sig(1), -8.0).ok());
  uint64_t leader_mark = fleet.replica_store(fleet.leader_id())->applied_seq();
  ASSERT_TRUE(fleet.Restart(2).ok());
  std::shared_ptr<DurableRecommenderStore> follower = fleet.replica_store(2);
  // Disk recovery + tail catch-up from the `# seq N` watermark — no
  // snapshot install needed for a clean follower restart.
  EXPECT_EQ(follower->snapshot_installs(), 0);
  EXPECT_GT(follower->replicated_applied(), 0);
  EXPECT_EQ(follower->applied_seq(), leader_mark);
  EXPECT_TRUE(fleet.CheckConvergence().ok());
  EXPECT_EQ(fleet.epoch(), 1u);  // no election happened
}

TEST(FleetTest, LeaderKillElectsDeterministicallyAndLosesNothing) {
  TempDir dir;
  ReplicationFleet fleet(Options(dir.path()));
  ASSERT_TRUE(fleet.Start().ok());
  std::vector<AckedOp> acked;
  auto learn = [&](int bit, int cfg, double v) {
    ASSERT_TRUE(fleet.LearnCandidate(Candidate(bit, cfg, v)).ok());
    acked.push_back({bit, cfg, v, 'L'});
  };
  auto outcome = [&](int bit, double v) {
    ASSERT_TRUE(fleet.ObserveOutcome(Sig(bit), v).ok());
    acked.push_back({bit, 0, v, 'O'});
  };
  learn(1, 0, -10.0);
  learn(2, 1, -12.0);
  outcome(1, -9.0);
  ASSERT_EQ(fleet.leader_id(), 0u);
  ASSERT_TRUE(fleet.Kill(0).ok());
  // All survivors share the max watermark; the tie breaks to the lowest
  // id — replica 1, on any machine, every run.
  EXPECT_EQ(fleet.leader_id(), 1u);
  EXPECT_EQ(fleet.epoch(), 2u);
  // Every acked mutation survived the failover.
  std::string golden = GoldenState(acked);
  EXPECT_EQ(fleet.replica_store(1)->SerializeState(), golden);
  EXPECT_EQ(fleet.replica_store(2)->SerializeState(), golden);
  // The fleet keeps accepting mutations under the new leader.
  outcome(2, -11.0);
  EXPECT_TRUE(fleet.CheckConvergence().ok());
  EXPECT_EQ(fleet.replica_store(2)->SerializeState(), GoldenState(acked));
}

TEST(FleetTest, RejoiningExLeaderDiscardsDivergentSuffixViaInstall) {
  TempDir dir;
  ReplicationFleet fleet(Options(dir.path()));
  ASSERT_TRUE(fleet.Start().ok());
  std::vector<AckedOp> acked;
  ASSERT_TRUE(fleet.LearnCandidate(Candidate(1, 0, -10.0)).ok());
  acked.push_back({1, 0, -10.0, 'L'});
  ASSERT_TRUE(fleet.Kill(0).ok());
  ASSERT_EQ(fleet.leader_id(), 1u);
  // History moves on without replica 0; the new leader reuses sequence
  // numbers replica 0 may have journaled differently.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(fleet.ObserveOutcome(Sig(1), -7.0).ok());
    acked.push_back({1, 0, -7.0, 'O'});
  }
  ASSERT_TRUE(fleet.Restart(0).ok());
  // An ex-leader always snapshot-installs on rejoin: its unacknowledged
  // suffix (if any) must never be tailed on top of the new history.
  EXPECT_GE(fleet.replica_store(0)->snapshot_installs(), 1);
  EXPECT_EQ(fleet.replica_store(0)->SerializeState(), GoldenState(acked));
  EXPECT_TRUE(fleet.CheckConvergence().ok());
  // Replica 0 rejoined as a follower; leadership did not revert.
  EXPECT_EQ(fleet.leader_id(), 1u);
}

TEST(FleetTest, PartitionedFollowerShedsStaleReadsThenHeals) {
  TempDir dir;
  FleetOptions options = Options(dir.path());
  options.staleness_bound = 4;
  ReplicationFleet fleet(options);
  ASSERT_TRUE(fleet.Start().ok());
  ASSERT_TRUE(fleet.LearnCandidate(Candidate(1, 0, -10.0)).ok());

  // Find a signature whose primary is a follower (not the leader).
  ConsistentHashRing ring(options.ring_vnodes);
  for (uint32_t r = 0; r < 3; ++r) ring.AddReplica(r);
  int follower_bit = -1;
  uint32_t follower_id = 0;
  for (int bit = 0; bit < 256; ++bit) {
    uint32_t primary = ring.RouteFor(ReplicationFleet::RouteKey(Sig(bit)));
    if (primary != fleet.leader_id()) {
      follower_bit = bit;
      follower_id = primary;
      break;
    }
  }
  ASSERT_GE(follower_bit, 0);

  // Partition that follower and push the leader past the staleness bound.
  fleet.SetPartitioned(follower_id, true);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(fleet.ObserveOutcome(Sig(1), -6.0).ok());

  ReplicationFleet::ServeResult result;
  ASSERT_TRUE(fleet.Serve(Sig(follower_bit), &result).ok());
  EXPECT_TRUE(result.shed_stale);
  EXPECT_EQ(result.replica, fleet.leader_id());

  // Heal: the follower catches up and serves its keys again.
  fleet.SetPartitioned(follower_id, false);
  ASSERT_TRUE(fleet.CatchUpAll().ok());
  ASSERT_TRUE(fleet.Serve(Sig(follower_bit), &result).ok());
  EXPECT_FALSE(result.shed_stale);
  EXPECT_EQ(result.replica, follower_id);
  EXPECT_TRUE(fleet.CheckConvergence().ok());
}

TEST(FleetTest, DeadPrimaryReroutesDownPreferenceList) {
  TempDir dir;
  FleetOptions options = Options(dir.path());
  ReplicationFleet fleet(options);
  ASSERT_TRUE(fleet.Start().ok());
  ASSERT_TRUE(fleet.LearnCandidate(Candidate(1, 0, -10.0)).ok());
  ConsistentHashRing ring(options.ring_vnodes);
  for (uint32_t r = 0; r < 3; ++r) ring.AddReplica(r);
  // A signature primarily owned by follower 2 (kill target).
  int bit = -1;
  for (int b = 0; b < 256; ++b) {
    if (ring.RouteFor(ReplicationFleet::RouteKey(Sig(b))) == 2u && fleet.leader_id() != 2u) {
      bit = b;
      break;
    }
  }
  ASSERT_GE(bit, 0);
  ASSERT_TRUE(fleet.Kill(2).ok());
  ReplicationFleet::ServeResult result;
  ASSERT_TRUE(fleet.Serve(Sig(bit), &result).ok());
  EXPECT_TRUE(result.rerouted);
  EXPECT_NE(result.replica, 2u);
  ASSERT_TRUE(fleet.Restart(2).ok());
  ASSERT_TRUE(fleet.Serve(Sig(bit), &result).ok());
  EXPECT_EQ(result.replica, 2u);  // ownership returns with the replica
}

TEST(FleetTest, CorruptedFrameIsDetectedAndConvergesAnyway) {
  TempDir dir;
  ReplicationFleet fleet(Options(dir.path()));
  ASSERT_TRUE(fleet.Start().ok());
  ASSERT_TRUE(fleet.LearnCandidate(Candidate(1, 0, -10.0)).ok());
  int64_t before = fleet.transport().checksum_failures();
  fleet.transport().CorruptNextDelivery(1);
  // The corrupted shipment is rejected by the receiver-side crc; the
  // leader immediately re-derives the catch-up, so the mutation still
  // lands everywhere before the call returns.
  ASSERT_TRUE(fleet.ObserveOutcome(Sig(1), -5.0).ok());
  EXPECT_EQ(fleet.transport().checksum_failures(), before + 1);
  EXPECT_EQ(fleet.replica_store(1)->applied_seq(),
            fleet.replica_store(fleet.leader_id())->applied_seq());
  EXPECT_TRUE(fleet.CheckConvergence().ok());
}

TEST(FleetTest, EphemeralFleetRestartInstallsSnapshot) {
  // Without a durable dir a restarted replica recovers nothing from disk:
  // catch-up must fall back to a snapshot install (watermark 0 is outside
  // any bounded tail buffer once history is long enough).
  FleetOptions options = Options("");
  options.replication_log_cap = 4;
  ReplicationFleet fleet(options);
  ASSERT_TRUE(fleet.Start().ok());
  ASSERT_TRUE(fleet.LearnCandidate(Candidate(1, 0, -10.0)).ok());
  ASSERT_TRUE(fleet.Kill(2).ok());
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(fleet.ObserveOutcome(Sig(1), -5.0).ok());
  ASSERT_TRUE(fleet.Restart(2).ok());
  EXPECT_GE(fleet.replica_store(2)->snapshot_installs(), 1);
  EXPECT_TRUE(fleet.CheckConvergence().ok());
}

TEST(FleetTest, WholeFleetRestartRecoversFromDisk) {
  TempDir dir;
  std::vector<AckedOp> acked;
  {
    ReplicationFleet fleet(Options(dir.path()));
    ASSERT_TRUE(fleet.Start().ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(fleet.LearnCandidate(Candidate(i, i, -10.0 - i)).ok());
      acked.push_back({i, i, -10.0 - i, 'L'});
    }
  }  // every replica "crashes" (no clean shutdown snapshot beyond interval)
  ReplicationFleet fleet(Options(dir.path()));
  ASSERT_TRUE(fleet.Start().ok());
  std::string golden = GoldenState(acked);
  for (int i = 0; i < fleet.num_replicas(); ++i) {
    EXPECT_EQ(fleet.replica_store(static_cast<uint32_t>(i))->SerializeState(), golden)
        << "replica " << i;
  }
  EXPECT_TRUE(fleet.CheckConvergence().ok());
}

TEST(FleetTest, ServeRetriesTransientUnavailableWithBackoff) {
  // A fully-dead fleet answers Serve with kUnavailable — a transient code
  // (common/status.h IsTransient) — so the serve wrapper must burn its
  // retry budget with accounted backoff, surface kUnavailable (never a
  // wrong answer), and recover as soon as a replica restarts.
  TempDir dir;
  FleetOptions options = Options(dir.path());
  options.serve_retry.max_attempts = 3;
  ReplicationFleet fleet(options);
  ASSERT_TRUE(fleet.Start().ok());
  ASSERT_TRUE(fleet.LearnCandidate(Candidate(1, 0, -10.0)).ok());
  for (uint32_t r = 0; r < 3; ++r) ASSERT_TRUE(fleet.Kill(r).ok());

  ReplicationFleet::ServeResult result;
  Status status = fleet.Serve(Sig(1), &result);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  FleetStatus snapshot = fleet.status();
  EXPECT_EQ(snapshot.unavailable_retries, 2) << "max_attempts - 1 retries";
  EXPECT_GT(snapshot.retry_backoff_s, 0.0) << "backoff accounted, never slept";

  for (uint32_t r = 0; r < 3; ++r) ASSERT_TRUE(fleet.Restart(r).ok());
  ASSERT_TRUE(fleet.Serve(Sig(1), &result).ok());
  EXPECT_EQ(fleet.status().unavailable_retries, 2)
      << "a healthy serve consumes no retries";
}

TEST(FleetTest, ConcurrentServesSurviveChurn) {
  // Serving threads hammer the fleet while the main thread kills and
  // restarts replicas — the lock-free read path and the topology mutex
  // must coexist without races (this is the TSan target).
  TempDir dir;
  ReplicationFleet fleet(Options(dir.path()));
  ASSERT_TRUE(fleet.Start().ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(fleet.LearnCandidate(Candidate(i, i, -12.0)).ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<int64_t> served{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      uint64_t state = 0x9e3779b97f4a7c15ull * static_cast<uint64_t>(t + 1);
      while (!stop.load(std::memory_order_acquire)) {
        state = Mix64(state);
        ReplicationFleet::ServeResult result;
        if (fleet.Serve(Sig(static_cast<int>(state % 256)), &result).ok()) {
          served.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int round = 0; round < 6; ++round) {
    uint32_t victim = static_cast<uint32_t>(Mix64(round) % 3);
    if (fleet.Kill(victim).ok()) {
      // qsteer-lint: allow(unchecked-status) chaos window; a dead leader drops the outcome by design
      (void)fleet.ObserveOutcome(Sig(0), -5.0);
      ASSERT_TRUE(fleet.Restart(victim).ok());
    }
    // qsteer-lint: allow(unchecked-status) chaos window; a dead leader drops the outcome by design
    (void)fleet.ObserveOutcome(Sig(1), -4.0);
  }
  // On a loaded single-core machine the churn loop can finish before any
  // reader thread is ever scheduled; keep serving until at least one read
  // lands so the assertion probes fleet behaviour, not OS scheduling.
  for (int spin = 0; spin < 100000 && served.load() == 0; ++spin) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(served.load(), 0);
  ASSERT_TRUE(fleet.CatchUpAll().ok());
  EXPECT_TRUE(fleet.CheckConvergence().ok());
}

}  // namespace
}  // namespace qsteer
