// Per-rule unit tests: each transformation/implementation rule fires exactly
// on its pattern (and produces the documented shape) and refuses invalid or
// out-of-window matches. The semantic correctness of the produced plans is
// covered separately by correctness_test.cc; these tests pin the matchers.
#include <gtest/gtest.h>

#include "optimizer/rule_registry.h"
#include "optimizer/rules.h"

namespace qsteer {
namespace {

class RulesTest : public ::testing::Test {
 protected:
  RulesTest() {
    ctx_.memo = &memo_;
    ctx_.universe = &universe_;
    // Two stream sets: a 3-column log (set 0) and a 2-column dim (set 1).
    for (int c = 0; c < 3; ++c) {
      log_cols_.push_back(universe_.GetOrAddBaseColumn(0, c, "l" + std::to_string(c)));
    }
    for (int c = 0; c < 2; ++c) {
      dim_cols_.push_back(universe_.GetOrAddBaseColumn(1, c, "d" + std::to_string(c)));
    }
  }

  GroupId AddScan(int set, int stream, const std::vector<ColumnId>& cols) {
    Operator op;
    op.kind = OpKind::kGet;
    op.stream_set_id = set;
    op.stream_id = stream;
    op.scan_columns = cols;
    return GroupOf(memo_.AddExpr(op, {}, kInvalidGroup, -1, kInvalidExpr));
  }

  GroupId AddSelect(GroupId child, ExprPtr pred) {
    Operator op;
    op.kind = OpKind::kSelect;
    op.predicate = std::move(pred);
    return GroupOf(memo_.AddExpr(op, {child}, kInvalidGroup, -1, kInvalidExpr));
  }

  GroupId AddUnion(std::vector<GroupId> children) {
    Operator op;
    op.kind = OpKind::kUnionAll;
    return GroupOf(memo_.AddExpr(op, std::move(children), kInvalidGroup, -1, kInvalidExpr));
  }

  GroupId AddJoin(GroupId left, GroupId right, JoinType type, ColumnId lk, ColumnId rk) {
    Operator op;
    op.kind = OpKind::kJoin;
    op.join_type = type;
    op.left_keys = {lk};
    op.right_keys = {rk};
    return GroupOf(memo_.AddExpr(op, {left, right}, kInvalidGroup, -1, kInvalidExpr));
  }

  GroupId GroupOf(ExprId id) { return memo_.expr(id).group; }
  const GroupExpr& Top(GroupId g) { return memo_.expr(memo_.group(g).exprs.front()); }

  std::vector<OpTree> Apply(const Rule& rule, GroupId group) {
    std::vector<OpTree> out;
    rule.Apply(ctx_, Top(group), &out);
    return out;
  }

  Memo memo_;
  ColumnUniverse universe_;
  RuleContext ctx_;
  std::vector<ColumnId> log_cols_;
  std::vector<ColumnId> dim_cols_;
};

TEST_F(RulesTest, CollapseSelectsWindows) {
  GroupId scan = AddScan(0, 0, log_cols_);
  GroupId inner = AddSelect(scan, Expr::Cmp(log_cols_[0], CmpOp::kEq, 1));
  GroupId outer = AddSelect(inner, Expr::Cmp(log_cols_[1], CmpOp::kLt, 5));

  CollapseSelectsRule pair(83, "t", IntWindow{2, 2});
  std::vector<OpTree> out = Apply(pair, outer);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].op.kind, OpKind::kSelect);
  EXPECT_EQ(out[0].op.predicate->CountAtoms(), 2);
  ASSERT_EQ(out[0].children.size(), 1u);
  EXPECT_EQ(out[0].children[0].leaf_group, scan);

  // Window {3, inf} requires a deeper stack.
  CollapseSelectsRule deep(84, "t2", IntWindow{3, 1 << 30});
  EXPECT_TRUE(Apply(deep, outer).empty());
  GroupId third = AddSelect(outer, Expr::Cmp(log_cols_[2], CmpOp::kGe, 2));
  EXPECT_EQ(Apply(deep, third).size(), 1u);
  // Non-select expressions never match.
  EXPECT_TRUE(Apply(pair, scan).empty());
}

TEST_F(RulesTest, SelectOnTrueAliasesChild) {
  GroupId scan = AddScan(0, 0, log_cols_);
  GroupId noop = AddSelect(scan, Expr::True());
  SelectOnTrueRule rule(85, "t");
  std::vector<OpTree> out = Apply(rule, noop);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].is_leaf);
  EXPECT_EQ(out[0].leaf_group, scan);
  GroupId real = AddSelect(scan, Expr::Cmp(log_cols_[0], CmpOp::kEq, 1));
  EXPECT_TRUE(Apply(rule, real).empty());
}

TEST_F(RulesTest, SelectSplitConjunctionWindow) {
  GroupId scan = AddScan(0, 0, log_cols_);
  GroupId both = AddSelect(scan, Expr::And({Expr::Cmp(log_cols_[0], CmpOp::kEq, 1),
                                            Expr::Cmp(log_cols_[1], CmpOp::kLt, 9)}));
  SelectSplitConjunctionRule rule(86, "t", IntWindow{2, 3});
  std::vector<OpTree> out = Apply(rule, both);
  ASSERT_EQ(out.size(), 1u);
  // A stack of two single-conjunct selects.
  EXPECT_EQ(out[0].op.kind, OpKind::kSelect);
  EXPECT_EQ(out[0].op.predicate->CountAtoms(), 1);
  ASSERT_EQ(out[0].children.size(), 1u);
  EXPECT_EQ(out[0].children[0].op.kind, OpKind::kSelect);
  // Single-conjunct selects are not split.
  GroupId single = AddSelect(scan, Expr::Cmp(log_cols_[0], CmpOp::kEq, 3));
  EXPECT_TRUE(Apply(rule, single).empty());
}

TEST_F(RulesTest, SelectPredNormalizeOnlyWhenUnsorted) {
  GroupId scan = AddScan(0, 0, log_cols_);
  ExprPtr a = Expr::Cmp(log_cols_[0], CmpOp::kEq, 1);
  ExprPtr b = Expr::Cmp(log_cols_[1], CmpOp::kLt, 9);
  bool a_first = a->Hash(true) < b->Hash(true);
  GroupId sorted_sel = AddSelect(scan, a_first ? Expr::And({a, b}) : Expr::And({b, a}));
  GroupId unsorted_sel = AddSelect(scan, a_first ? Expr::And({b, a}) : Expr::And({a, b}));
  SelectPredNormalizeRule rule(87, "t");
  EXPECT_TRUE(Apply(rule, sorted_sel).empty());
  EXPECT_EQ(Apply(rule, unsorted_sel).size(), 1u);
}

TEST_F(RulesTest, PushSelectBelowJoinSidesAndOuterGuard) {
  GroupId log = AddScan(0, 0, log_cols_);
  GroupId dim = AddScan(1, 10, dim_cols_);
  GroupId inner = AddJoin(log, dim, JoinType::kInner, log_cols_[0], dim_cols_[0]);
  ExprPtr left_pred = Expr::Cmp(log_cols_[1], CmpOp::kLt, 5);
  ExprPtr right_pred = Expr::Cmp(dim_cols_[1], CmpOp::kEq, 2);
  GroupId sel = AddSelect(inner, Expr::And({left_pred, right_pred}));

  PushSelectBelowJoinRule both(98, "t", 2, IntWindow{2, 1 << 30});
  std::vector<OpTree> out = Apply(both, sel);
  ASSERT_EQ(out.size(), 1u);
  // Both conjuncts pushed: root is the join, each side wrapped in a select.
  EXPECT_EQ(out[0].op.kind, OpKind::kJoin);
  EXPECT_EQ(out[0].children[0].op.kind, OpKind::kSelect);
  EXPECT_EQ(out[0].children[1].op.kind, OpKind::kSelect);

  PushSelectBelowJoinRule left_only(95, "t", 0, IntWindow{2, 1 << 30});
  out = Apply(left_only, sel);
  ASSERT_EQ(out.size(), 1u);
  // Right conjunct stays above as residual select.
  EXPECT_EQ(out[0].op.kind, OpKind::kSelect);
  EXPECT_EQ(out[0].children[0].op.kind, OpKind::kJoin);

  // Outer join: the right (null-padded) side must not receive pushdowns.
  GroupId outer = AddJoin(log, dim, JoinType::kLeftOuter, log_cols_[0], dim_cols_[0]);
  GroupId outer_sel = AddSelect(outer, right_pred);
  PushSelectBelowJoinRule right_only(96, "t", 1, IntWindow{1, 1});
  EXPECT_TRUE(Apply(right_only, outer_sel).empty());
  // ...but the preserved left side may.
  GroupId outer_sel_left = AddSelect(outer, left_pred);
  PushSelectBelowJoinRule left_one(94, "t", 0, IntWindow{1, 1});
  EXPECT_EQ(Apply(left_one, outer_sel_left).size(), 1u);
}

TEST_F(RulesTest, PushSelectBelowUnionBranchWindow) {
  GroupId u = AddUnion({AddScan(0, 0, log_cols_), AddScan(0, 1, log_cols_),
                        AddScan(0, 2, log_cols_)});
  GroupId sel = AddSelect(u, Expr::Cmp(log_cols_[0], CmpOp::kEq, 7));
  PushSelectBelowUnionRule narrow(99, "t", IntWindow{2, 5});
  std::vector<OpTree> out = Apply(narrow, sel);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].op.kind, OpKind::kUnionAll);
  EXPECT_EQ(out[0].children.size(), 3u);
  for (const OpTree& branch : out[0].children) {
    EXPECT_EQ(branch.op.kind, OpKind::kSelect);
  }
  PushSelectBelowUnionRule wide(100, "t", IntWindow{6, 1 << 30});
  EXPECT_TRUE(Apply(wide, sel).empty());
}

TEST_F(RulesTest, MergeSelectIntoJoinInnerOnly) {
  GroupId log = AddScan(0, 0, log_cols_);
  GroupId dim = AddScan(1, 10, dim_cols_);
  GroupId inner = AddJoin(log, dim, JoinType::kInner, log_cols_[0], dim_cols_[0]);
  GroupId sel = AddSelect(inner, Expr::Cmp(log_cols_[1], CmpOp::kLt, 4));
  MergeSelectIntoJoinRule rule(101, "t", IntWindow{1, 8});
  std::vector<OpTree> out = Apply(rule, sel);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].op.kind, OpKind::kJoin);
  EXPECT_EQ(out[0].op.predicate->CountAtoms(), 1);

  GroupId outer = AddJoin(log, dim, JoinType::kLeftOuter, log_cols_[0], dim_cols_[0]);
  GroupId outer_sel = AddSelect(outer, Expr::Cmp(log_cols_[1], CmpOp::kLt, 4));
  EXPECT_TRUE(Apply(rule, outer_sel).empty());
}

TEST_F(RulesTest, SelectPartitionsRequiresLeadingColumnEquality) {
  GroupId scan = AddScan(0, 0, log_cols_);
  SelectPartitionsRule rule(103, "t");
  GroupId on_key = AddSelect(scan, Expr::Cmp(log_cols_[0], CmpOp::kEq, 3));
  std::vector<OpTree> out = Apply(rule, on_key);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].op.kind, OpKind::kSelect);       // the filter stays
  EXPECT_LT(out[0].children[0].op.partition_fraction, 1.0);
  // Range predicates and non-leading columns do not prune.
  GroupId range = AddSelect(scan, Expr::Cmp(log_cols_[0], CmpOp::kLt, 3));
  EXPECT_TRUE(Apply(rule, range).empty());
  GroupId other_col = AddSelect(scan, Expr::Cmp(log_cols_[1], CmpOp::kEq, 3));
  EXPECT_TRUE(Apply(rule, other_col).empty());
}

TEST_F(RulesTest, JoinCommuteWindowsAndInnerOnly) {
  GroupId log = AddScan(0, 0, log_cols_);
  GroupId dim = AddScan(1, 10, dim_cols_);
  GroupId inner = AddJoin(log, dim, JoinType::kInner, log_cols_[0], dim_cols_[0]);
  JoinCommuteRule single(104, "t", IntWindow{1, 1});
  std::vector<OpTree> out = Apply(single, inner);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].children[0].leaf_group, dim);
  EXPECT_EQ(out[0].children[1].leaf_group, log);
  EXPECT_EQ(out[0].op.left_keys[0], dim_cols_[0]);  // keys swapped

  JoinCommuteRule multi(105, "t", IntWindow{2, 8});
  EXPECT_TRUE(Apply(multi, inner).empty());
  GroupId outer = AddJoin(log, dim, JoinType::kLeftOuter, log_cols_[0], dim_cols_[0]);
  EXPECT_TRUE(Apply(single, outer).empty());
}

TEST_F(RulesTest, JoinAssocRequiresKeysBoundByMiddleInput) {
  // (A ⋈ B) ⋈ C with the outer keys on B -> A ⋈ (B ⋈ C).
  std::vector<ColumnId> a_cols, b_cols, c_cols;
  for (int c = 0; c < 2; ++c) a_cols.push_back(universe_.GetOrAddBaseColumn(2, c, "a"));
  for (int c = 0; c < 2; ++c) b_cols.push_back(universe_.GetOrAddBaseColumn(3, c, "b"));
  for (int c = 0; c < 2; ++c) c_cols.push_back(universe_.GetOrAddBaseColumn(4, c, "c"));
  GroupId a = AddScan(2, 20, a_cols);
  GroupId b = AddScan(3, 30, b_cols);
  GroupId c = AddScan(4, 40, c_cols);
  GroupId ab = AddJoin(a, b, JoinType::kInner, a_cols[0], b_cols[0]);
  GroupId ab_c_on_b = AddJoin(ab, c, JoinType::kInner, b_cols[1], c_cols[0]);
  JoinAssocRule assoc(106, "t", 0, IntWindow{1, 8});
  std::vector<OpTree> out = Apply(assoc, ab_c_on_b);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].children[0].leaf_group, a);
  EXPECT_EQ(out[0].children[1].op.kind, OpKind::kJoin);
  EXPECT_EQ(out[0].children[1].children[0].leaf_group, b);
  EXPECT_EQ(out[0].children[1].children[1].leaf_group, c);

  // Outer keys on A: this associativity direction is invalid.
  GroupId ab_c_on_a = AddJoin(ab, c, JoinType::kInner, a_cols[1], c_cols[0]);
  EXPECT_TRUE(Apply(assoc, ab_c_on_a).empty());
}

TEST_F(RulesTest, GroupByBelowUnionReaggregatesCount) {
  GroupId u = AddUnion({AddScan(0, 0, log_cols_), AddScan(0, 1, log_cols_)});
  Operator gb;
  gb.kind = OpKind::kGroupBy;
  gb.group_keys = {log_cols_[0]};
  gb.aggs = {AggExpr{AggFunc::kCount, kInvalidColumn,
                     universe_.AddDerivedColumn("cnt", 100)},
             AggExpr{AggFunc::kMin, log_cols_[1], universe_.AddDerivedColumn("mn", 100)}};
  GroupId agg = GroupOf(memo_.AddExpr(gb, {u}, kInvalidGroup, -1, kInvalidExpr));
  PushGroupByBelowUnionRule rule(108, "t", IntWindow{2, 5});
  std::vector<OpTree> out = Apply(rule, agg);
  ASSERT_EQ(out.size(), 1u);
  // Final GroupBy over union of per-branch GroupBys; COUNT re-aggregates as
  // SUM, MIN stays MIN.
  EXPECT_EQ(out[0].op.kind, OpKind::kGroupBy);
  EXPECT_EQ(out[0].op.aggs[0].func, AggFunc::kSum);
  EXPECT_EQ(out[0].op.aggs[1].func, AggFunc::kMin);
  EXPECT_EQ(out[0].children[0].op.kind, OpKind::kUnionAll);
  EXPECT_EQ(out[0].children[0].children[0].op.kind, OpKind::kGroupBy);
  EXPECT_EQ(out[0].children[0].children[0].op.aggs[0].func, AggFunc::kCount);
}

TEST_F(RulesTest, EagerAggregationOnlyForDuplicateInsensitiveAggs) {
  GroupId log = AddScan(0, 0, log_cols_);
  GroupId dim = AddScan(1, 10, dim_cols_);
  GroupId join = AddJoin(log, dim, JoinType::kInner, log_cols_[0], dim_cols_[0]);
  Operator gb;
  gb.kind = OpKind::kGroupBy;
  gb.group_keys = {dim_cols_[1]};
  gb.aggs = {AggExpr{AggFunc::kMax, log_cols_[1], universe_.AddDerivedColumn("mx", 100)}};
  GroupId agg = GroupOf(memo_.AddExpr(gb, {join}, kInvalidGroup, -1, kInvalidExpr));
  PushGroupByBelowJoinRule left(43, "t", 0);
  std::vector<OpTree> out = Apply(left, agg);
  ASSERT_EQ(out.size(), 1u);
  // Outer GroupBy over Join over (inner GroupBy(left), dim).
  EXPECT_EQ(out[0].op.kind, OpKind::kGroupBy);
  EXPECT_EQ(out[0].children[0].op.kind, OpKind::kJoin);
  EXPECT_EQ(out[0].children[0].children[0].op.kind, OpKind::kGroupBy);
  // The inner keys contain the join key.
  const Operator& inner = out[0].children[0].children[0].op;
  EXPECT_NE(std::find(inner.group_keys.begin(), inner.group_keys.end(), log_cols_[0]),
            inner.group_keys.end());

  // COUNT is duplicate-sensitive under join fan-out: must not fire.
  Operator gb_count = gb;
  gb_count.aggs = {AggExpr{AggFunc::kCount, kInvalidColumn,
                           universe_.AddDerivedColumn("c2", 100)}};
  GroupId agg_count =
      GroupOf(memo_.AddExpr(gb_count, {join}, kInvalidGroup, -1, kInvalidExpr));
  EXPECT_TRUE(Apply(left, agg_count).empty());
}

TEST_F(RulesTest, PartialAggregationSplitsAndReaggregates) {
  GroupId scan = AddScan(0, 0, log_cols_);
  Operator gb;
  gb.kind = OpKind::kGroupBy;
  gb.group_keys = {log_cols_[0]};
  gb.aggs = {AggExpr{AggFunc::kSum, log_cols_[1], universe_.AddDerivedColumn("s", 100)}};
  GroupId agg = GroupOf(memo_.AddExpr(gb, {scan}, kInvalidGroup, -1, kInvalidExpr));
  PartialAggregationRule rule(121, "t", IntWindow{1, 1});
  std::vector<OpTree> out = Apply(rule, agg);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].op.partial_agg);
  EXPECT_TRUE(out[0].children[0].op.partial_agg);
  // Re-running on the partial half must not recurse.
  GroupId partial = GroupOf(memo_.AddExpr(out[0].children[0].op, {scan}, kInvalidGroup, -1,
                                          kInvalidExpr));
  EXPECT_TRUE(Apply(rule, partial).empty());
}

TEST_F(RulesTest, PushJoinBelowUnionVariants) {
  GroupId u = AddUnion({AddScan(0, 0, log_cols_), AddScan(0, 1, log_cols_)});
  GroupId dim = AddScan(1, 10, dim_cols_);
  GroupId join = AddJoin(u, dim, JoinType::kInner, log_cols_[0], dim_cols_[0]);

  PushJoinBelowUnionRule left_union(37, "t", 0, JoinType::kInner);
  std::vector<OpTree> out = Apply(left_union, join);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].op.kind, OpKind::kUnionAll);
  EXPECT_EQ(out[0].children.size(), 2u);
  EXPECT_EQ(out[0].children[0].op.kind, OpKind::kJoin);

  // The union is on the left: the right-side variant must not fire.
  PushJoinBelowUnionRule right_union(38, "t", 1, JoinType::kInner);
  EXPECT_TRUE(Apply(right_union, join).empty());
  // Join-type-restricted variants.
  PushJoinBelowUnionRule semi_only(40, "t", 0, JoinType::kLeftSemi);
  EXPECT_TRUE(Apply(semi_only, join).empty());
  GroupId semi = AddJoin(u, dim, JoinType::kLeftSemi, log_cols_[0], dim_cols_[0]);
  EXPECT_EQ(Apply(semi_only, semi).size(), 1u);
  // Branch-count cap.
  PushJoinBelowUnionRule capped(39, "t", 0, JoinType::kInner, /*max_branches=*/1);
  EXPECT_TRUE(Apply(capped, join).empty());
}

TEST_F(RulesTest, UnionFlattenSplicesNestedUnions) {
  GroupId inner = AddUnion({AddScan(0, 0, log_cols_), AddScan(0, 1, log_cols_)});
  GroupId outer = AddUnion({inner, AddScan(0, 2, log_cols_)});
  UnionFlattenRule rule(123, "t");
  std::vector<OpTree> out = Apply(rule, outer);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].children.size(), 3u);
  // Already-flat unions do not fire.
  EXPECT_TRUE(Apply(rule, inner).empty());
}

TEST_F(RulesTest, TopPushdownAndSwap) {
  GroupId u = AddUnion({AddScan(0, 0, log_cols_), AddScan(0, 1, log_cols_)});
  Operator top;
  top.kind = OpKind::kTop;
  top.limit = 10;
  top.sort_keys = {log_cols_[0]};
  GroupId top_group = GroupOf(memo_.AddExpr(top, {u}, kInvalidGroup, -1, kInvalidExpr));
  PushTopBelowUnionRule rule(112, "t");
  std::vector<OpTree> out = Apply(rule, top_group);
  ASSERT_EQ(out.size(), 1u);
  // Final Top over union of per-branch Tops.
  EXPECT_EQ(out[0].op.kind, OpKind::kTop);
  EXPECT_EQ(out[0].children[0].op.kind, OpKind::kUnionAll);
  EXPECT_EQ(out[0].children[0].children[0].op.kind, OpKind::kTop);

  // Top-project swap requires pass-through sort keys.
  GroupId scan = AddScan(2, 20, {universe_.GetOrAddBaseColumn(2, 0, "x")});
  ColumnId x = universe_.GetOrAddBaseColumn(2, 0, "x");
  Operator project;
  project.kind = OpKind::kProject;
  NamedExpr pass;
  pass.output = x;
  pass.pass_through = true;
  pass.inputs = {x};
  project.projections = {pass};
  GroupId proj = GroupOf(memo_.AddExpr(project, {scan}, kInvalidGroup, -1, kInvalidExpr));
  Operator top2;
  top2.kind = OpKind::kTop;
  top2.limit = 5;
  top2.sort_keys = {x};
  GroupId top2_group = GroupOf(memo_.AddExpr(top2, {proj}, kInvalidGroup, -1, kInvalidExpr));
  TopProjectSwapRule swap(113, "t");
  std::vector<OpTree> swapped = Apply(swap, top2_group);
  ASSERT_EQ(swapped.size(), 1u);
  EXPECT_EQ(swapped[0].op.kind, OpKind::kProject);
  EXPECT_EQ(swapped[0].children[0].op.kind, OpKind::kTop);
}

TEST_F(RulesTest, PredicateInferencePushesKeyEqualityToBothSides) {
  GroupId log = AddScan(0, 0, log_cols_);
  GroupId dim = AddScan(1, 10, dim_cols_);
  GroupId join = AddJoin(log, dim, JoinType::kInner, log_cols_[0], dim_cols_[0]);
  GroupId sel = AddSelect(join, Expr::Cmp(log_cols_[0], CmpOp::kEq, 42));
  PredicateInferenceRule rule(124, "t");
  std::vector<OpTree> out = Apply(rule, sel);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].op.kind, OpKind::kJoin);
  // Both inputs filtered on their own key.
  EXPECT_EQ(out[0].children[0].op.kind, OpKind::kSelect);
  EXPECT_EQ(out[0].children[1].op.kind, OpKind::kSelect);
  std::vector<ColumnId> rcols;
  out[0].children[1].op.predicate->CollectColumns(&rcols);
  EXPECT_EQ(rcols, (std::vector<ColumnId>{dim_cols_[0]}));
  // Equality on a non-key column does not infer.
  GroupId sel_nonkey = AddSelect(join, Expr::Cmp(log_cols_[1], CmpOp::kEq, 42));
  EXPECT_TRUE(Apply(rule, sel_nonkey).empty());
}

TEST_F(RulesTest, JoinImplementationGuards) {
  GroupId log = AddScan(0, 0, log_cols_);
  GroupId dim = AddScan(1, 10, dim_cols_);
  GroupId inner = AddJoin(log, dim, JoinType::kInner, log_cols_[0], dim_cols_[0]);
  GroupId outer = AddJoin(log, dim, JoinType::kLeftOuter, log_cols_[0], dim_cols_[0]);
  GroupId semi = AddJoin(log, dim, JoinType::kLeftSemi, log_cols_[0], dim_cols_[0]);
  const RuleRegistry& registry = RuleRegistry::Instance();

  auto fires = [&](RuleId id, GroupId g) { return !Apply(*registry.rule(id), g).empty(); };
  EXPECT_TRUE(fires(rules::kHashJoinImpl1, inner));
  EXPECT_TRUE(fires(rules::kHashJoinImpl1, outer));   // build the right side
  EXPECT_FALSE(fires(rules::kHashJoinImpl1, semi));   // semi has its own impls
  EXPECT_TRUE(fires(rules::kHashJoinImpl2, inner));
  EXPECT_FALSE(fires(rules::kHashJoinImpl2, outer));  // cannot build preserved side
  EXPECT_TRUE(fires(230, semi));                      // SemiJoinHashImpl
  EXPECT_FALSE(fires(230, inner));
  EXPECT_TRUE(fires(rules::kMergeJoinImpl, inner));
  EXPECT_TRUE(fires(rules::kLoopJoinImpl, inner));
  EXPECT_FALSE(fires(rules::kLoopJoinImpl, outer));
}

TEST_F(RulesTest, IndexApplyJoinRequiresLeadingKeyDirectScan) {
  GroupId log = AddScan(0, 0, log_cols_);
  GroupId dim = AddScan(1, 10, dim_cols_);
  // Key on dim's leading column: variant 1 (scan on the right) fires.
  GroupId join = AddJoin(log, dim, JoinType::kInner, log_cols_[1], dim_cols_[0]);
  IndexApplyJoinImplRule right_scan(232, "t", 0);
  std::vector<OpTree> out = Apply(right_scan, join);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].op.kind, OpKind::kIndexApplyJoin);
  EXPECT_EQ(out[0].children.size(), 1u);  // single probe child
  EXPECT_EQ(out[0].op.stream_id, 10);

  // Key on a non-leading inner column: no index to seek.
  GroupId join_nonkey = AddJoin(log, dim, JoinType::kInner, log_cols_[1], dim_cols_[1]);
  EXPECT_TRUE(Apply(right_scan, join_nonkey).empty());
  // Inner side behind a select is not a direct scan.
  GroupId filtered_dim = AddSelect(dim, Expr::Cmp(dim_cols_[1], CmpOp::kEq, 1));
  GroupId join_filtered =
      AddJoin(log, filtered_dim, JoinType::kInner, log_cols_[1], dim_cols_[0]);
  EXPECT_TRUE(Apply(right_scan, join_filtered).empty());
}

TEST_F(RulesTest, UnionImplementationConditions) {
  GroupId raw_union = AddUnion({AddScan(0, 0, log_cols_), AddScan(0, 1, log_cols_)});
  const RuleRegistry& registry = RuleRegistry::Instance();
  EXPECT_FALSE(Apply(*registry.rule(rules::kUnionAllToUnionAll), raw_union).empty());
  EXPECT_FALSE(Apply(*registry.rule(rules::kUnionAllToVirtualDataset), raw_union).empty());

  // Filtered branches are not raw streams: virtual dataset must refuse.
  GroupId filtered = AddUnion({AddSelect(AddScan(0, 2, log_cols_),
                                         Expr::Cmp(log_cols_[0], CmpOp::kEq, 1)),
                               AddScan(0, 3, log_cols_)});
  EXPECT_TRUE(Apply(*registry.rule(rules::kUnionAllToVirtualDataset), filtered).empty());
  EXPECT_FALSE(Apply(*registry.rule(rules::kUnionAllToUnionAll), filtered).empty());

  // Mixed stream sets cannot form one virtual dataset.
  GroupId mixed = AddUnion({AddScan(0, 4, log_cols_), AddScan(1, 11, dim_cols_)});
  EXPECT_TRUE(Apply(*registry.rule(rules::kUnionAllToVirtualDataset), mixed).empty());
}

TEST_F(RulesTest, TopImplementationLimitGate) {
  GroupId scan = AddScan(0, 0, log_cols_);
  Operator top;
  top.kind = OpKind::kTop;
  top.limit = 1000000;
  top.sort_keys = {log_cols_[0]};
  GroupId big = GroupOf(memo_.AddExpr(top, {scan}, kInvalidGroup, -1, kInvalidExpr));
  TopImplRule sort_impl(244, "t", OpKind::kTopNSort);
  TopImplRule heap_impl(245, "t", OpKind::kTopNHeap, /*max_limit=*/100000);
  EXPECT_EQ(Apply(sort_impl, big).size(), 1u);
  EXPECT_TRUE(Apply(heap_impl, big).empty());  // limit above the heap gate
}

TEST_F(RulesTest, SelectOrExpansionSplitsDisjunction) {
  GroupId scan = AddScan(0, 0, log_cols_);
  ExprPtr a = Expr::Cmp(log_cols_[0], CmpOp::kEq, 1);
  ExprPtr b = Expr::Cmp(log_cols_[1], CmpOp::kLt, 9);
  GroupId sel = AddSelect(scan, Expr::And({Expr::Or({a, b}),
                                           Expr::Cmp(log_cols_[2], CmpOp::kGe, 3)}));
  SelectOrExpansionRule rule(125, "t");
  std::vector<OpTree> out = Apply(rule, sel);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].op.kind, OpKind::kUnionAll);
  ASSERT_EQ(out[0].children.size(), 2u);
  // Both branches are selects over the SAME child; the second carries the
  // disjointness guard (b AND NOT a) plus the residual conjunct.
  EXPECT_EQ(out[0].children[0].op.kind, OpKind::kSelect);
  EXPECT_EQ(out[0].children[1].op.kind, OpKind::kSelect);
  EXPECT_EQ(out[0].children[0].children[0].leaf_group, scan);
  EXPECT_EQ(out[0].children[1].children[0].leaf_group, scan);
  EXPECT_GE(out[0].children[1].op.predicate->CountAtoms(), 3);
  // Pure conjunctions do not match.
  GroupId plain = AddSelect(scan, Expr::Cmp(log_cols_[0], CmpOp::kEq, 2));
  EXPECT_TRUE(Apply(rule, plain).empty());
}

TEST_F(RulesTest, RemoveDupPredicatesDedupsExactConjuncts) {
  GroupId scan = AddScan(0, 0, log_cols_);
  ExprPtr atom = Expr::Cmp(log_cols_[0], CmpOp::kEq, 5);
  GroupId dup = AddSelect(scan, Expr::And({atom, Expr::Cmp(log_cols_[1], CmpOp::kLt, 3),
                                           atom}));
  RemoveDupPredicatesRule rule(126, "t");
  std::vector<OpTree> out = Apply(rule, dup);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].op.predicate->CountAtoms(), 2);
  // Same column, different literal is NOT a duplicate.
  GroupId similar = AddSelect(scan, Expr::And({Expr::Cmp(log_cols_[0], CmpOp::kEq, 5),
                                               Expr::Cmp(log_cols_[0], CmpOp::kEq, 6)}));
  EXPECT_TRUE(Apply(rule, similar).empty());
}

TEST_F(RulesTest, ConstantFoldingDropsTrivialTruths) {
  GroupId scan = AddScan(0, 0, log_cols_);
  GroupId sel = AddSelect(
      scan, Expr::And({Expr::Cmp(log_cols_[0], CmpOp::kEq, 5),
                       Expr::Compare(CmpOp::kEq, Expr::Literal(1), Expr::Literal(1))}));
  ConstantFoldingRule rule(127, "t");
  std::vector<OpTree> out = Apply(rule, sel);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].op.predicate->CountAtoms(), 1);
  // A trivially-false conjunct is preserved (no empty-relation operator).
  GroupId contradiction = AddSelect(
      scan, Expr::And({Expr::Cmp(log_cols_[0], CmpOp::kEq, 5),
                       Expr::Compare(CmpOp::kEq, Expr::Literal(1), Expr::Literal(2))}));
  EXPECT_TRUE(Apply(rule, contradiction).empty());
}

TEST_F(RulesTest, TopTopCollapseTakesMinLimitSameKeysOnly) {
  GroupId scan = AddScan(0, 0, log_cols_);
  Operator inner;
  inner.kind = OpKind::kTop;
  inner.limit = 100;
  inner.sort_keys = {log_cols_[0]};
  GroupId inner_group = GroupOf(memo_.AddExpr(inner, {scan}, kInvalidGroup, -1, kInvalidExpr));
  Operator outer = inner;
  outer.limit = 500;
  GroupId outer_group =
      GroupOf(memo_.AddExpr(outer, {inner_group}, kInvalidGroup, -1, kInvalidExpr));
  TopTopCollapseRule rule(128, "t");
  std::vector<OpTree> out = Apply(rule, outer_group);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].op.limit, 100);
  EXPECT_EQ(out[0].children[0].leaf_group, scan);
  // Different sort keys must not collapse (inner order defines the result).
  Operator other_keys = outer;
  other_keys.sort_keys = {log_cols_[1]};
  GroupId mismatched =
      GroupOf(memo_.AddExpr(other_keys, {inner_group}, kInvalidGroup, -1, kInvalidExpr));
  EXPECT_TRUE(Apply(rule, mismatched).empty());
}

TEST_F(RulesTest, RareShapeRulesNeverFire) {
  const RuleRegistry& registry = RuleRegistry::Instance();
  GroupId scan = AddScan(0, 0, log_cols_);
  GroupId sel = AddSelect(scan, Expr::Cmp(log_cols_[0], CmpOp::kEq, 1));
  for (RuleId id : {47, 58, 130, 200, 250, 255}) {
    EXPECT_TRUE(Apply(*registry.rule(id), scan).empty()) << id;
    EXPECT_TRUE(Apply(*registry.rule(id), sel).empty()) << id;
  }
}

}  // namespace
}  // namespace qsteer
