// Golden tests for qsteer-lint (tools/qsteer_lint_lib.h): every rule has a
// positive fixture asserting the exact rule ids and line anchors, a
// negative fixture asserting silence, and the CLI's exit-code contract is
// pinned (0 clean / 1 findings / 2 usage-or-IO error). The last test lints
// the repo's own src/ tools/ bench/ examples/ — the tree must stay clean,
// so a determinism regression fails ctest, not just CI.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "qsteer_lint_lib.h"

namespace qsteer {
namespace lint {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(QSTEER_LINT_FIXTURES_DIR) + "/" + name;
}

/// Lints one fixture and returns (rule_id, line) pairs in report order.
std::vector<std::pair<std::string, int>> LintFixture(const std::string& name) {
  std::vector<Finding> findings;
  std::string error;
  bool ok = LintPaths({FixturePath(name)}, LintOptions{}, &findings, &error);
  EXPECT_TRUE(ok) << error;
  std::vector<std::pair<std::string, int>> out;
  out.reserve(findings.size());
  for (const Finding& finding : findings) {
    EXPECT_EQ(finding.path, FixturePath(name));
    EXPECT_FALSE(finding.message.empty());
    out.emplace_back(finding.rule_id, finding.line);
  }
  return out;
}

using Anchors = std::vector<std::pair<std::string, int>>;

TEST(LintTest, RandomSourcePositive) {
  EXPECT_EQ(LintFixture("ql001_positive.cc"),
            (Anchors{{"QL001", 7}, {"QL001", 8}, {"QL001", 9}}));
}

TEST(LintTest, RandomSourceNegative) { EXPECT_EQ(LintFixture("ql001_negative.cc"), Anchors{}); }

TEST(LintTest, WallClockPositive) {
  EXPECT_EQ(LintFixture("ql002_positive.cc"),
            (Anchors{{"QL002", 7}, {"QL002", 8}, {"QL002", 9}, {"QL002", 10}, {"QL002", 12}}));
}

TEST(LintTest, WallClockNegativeJustifiedSuppressions) {
  EXPECT_EQ(LintFixture("ql002_negative.cc"), Anchors{});
}

TEST(LintTest, UnorderedIterationPositive) {
  EXPECT_EQ(LintFixture("ql003_positive.cc"), (Anchors{{"QL003", 13}}));
}

TEST(LintTest, UnorderedIterationNegativeSortAndMarker) {
  EXPECT_EQ(LintFixture("ql003_negative.cc"), Anchors{});
}

TEST(LintTest, UnorderedIterationSkipsOrderInsensitiveFiles) {
  EXPECT_EQ(LintFixture("ql003_not_order_sensitive.cc"), Anchors{});
}

TEST(LintTest, SerializingCatalogStatsFilesAreCovered) {
  // QL003 is content-triggered: serializing statistics code under
  // src/catalog (outside the QL005 layer gate) is still linted.
  EXPECT_EQ(LintFixture("src/catalog/ql003_histogram_positive.cc"),
            (Anchors{{"QL003", 20}}));
}

TEST(LintTest, OrderedHistogramCachesStaySilent) {
  // The real stats_model.cc shape: std::map cache + construction-ordered
  // bucket vector — deterministic, so no findings.
  EXPECT_EQ(LintFixture("src/catalog/ql003_histogram_negative.cc"), Anchors{});
}

TEST(LintTest, PointerOrderingPositive) {
  EXPECT_EQ(LintFixture("ql004_positive.cc"),
            (Anchors{{"QL004", 9}, {"QL004", 10}, {"QL004", 11}, {"QL004", 14}}));
}

TEST(LintTest, PointerOrderingNegative) {
  EXPECT_EQ(LintFixture("ql004_negative.cc"), Anchors{});
}

TEST(LintTest, BannedIncludePositiveInsideCoreLayer) {
  EXPECT_EQ(LintFixture("src/core/ql005_positive.cc"),
            (Anchors{{"QL005", 3}, {"QL005", 4}, {"QL005", 5}, {"QL005", 6}}));
}

TEST(LintTest, BannedIncludeNegativeOutsideLayers) {
  EXPECT_EQ(LintFixture("ql005_negative.cc"), Anchors{});
}

TEST(LintTest, BadSuppressionsFireQL006AndSuppressNothing) {
  EXPECT_EQ(LintFixture("ql006_bad_suppression.cc"),
            (Anchors{{"QL006", 6}, {"QL002", 7}, {"QL006", 8}, {"QL006", 9}}));
}

TEST(LintTest, CompanionHeaderDeclarationsAreVisibleFromCc) {
  // recommender.cc-style split: the container member lives in the header,
  // the serializing loop in the .cc. LintContent's companion parameter is
  // what LintPaths feeds from the sibling header.
  const std::string header = "struct S { std::unordered_map<int, int> store_; };\n";
  const std::string source =
      "std::string S::Serialize() const {\n"
      "  std::string out;\n"
      "  for (const auto& kv : store_) out += 'x';\n"
      "  return out;\n"
      "}\n";
  std::vector<Finding> without = LintContent("s.cc", source, LintOptions{});
  EXPECT_TRUE(without.empty());
  std::vector<Finding> with = LintContent("s.cc", source, LintOptions{}, header);
  ASSERT_EQ(with.size(), 1u);
  EXPECT_EQ(with[0].rule_id, "QL003");
  EXPECT_EQ(with[0].line, 3);
}

TEST(LintTest, SelfExemption) {
  std::vector<Finding> findings =
      LintContent("tools/qsteer_lint_lib.cc", "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_TRUE(findings.empty());
}

// ---- CLI exit-code contract ----

int RunCli(std::vector<const char*> args, std::string* out_text = nullptr) {
  args.insert(args.begin(), "qsteer_lint");
  std::ostringstream out;
  std::ostringstream err;
  int code = RunLintMain(static_cast<int>(args.size()), args.data(), out, err);
  if (out_text != nullptr) *out_text = out.str() + err.str();
  return code;
}

TEST(LintCliTest, CleanFileExitsZero) {
  std::string path = FixturePath("ql001_negative.cc");
  EXPECT_EQ(RunCli({path.c_str()}), 0);
}

TEST(LintCliTest, FindingsExitOneAndNameTheRule) {
  std::string path = FixturePath("ql001_positive.cc");
  std::string output;
  EXPECT_EQ(RunCli({path.c_str()}, &output), 1);
  EXPECT_NE(output.find("QL001"), std::string::npos);
  EXPECT_NE(output.find("ql001_positive.cc:7"), std::string::npos);
}

TEST(LintCliTest, JsonFormatIsMachineReadable) {
  std::string path = FixturePath("ql002_positive.cc");
  std::string output;
  EXPECT_EQ(RunCli({"--format=json", path.c_str()}, &output), 1);
  EXPECT_NE(output.find("\"rule\": \"QL002\""), std::string::npos);
  EXPECT_NE(output.find("\"line\": 7"), std::string::npos);
}

TEST(LintCliTest, UsageAndIoErrorsExitTwo) {
  EXPECT_EQ(RunCli({}), 2);                                   // no paths
  EXPECT_EQ(RunCli({"--bogus-flag"}), 2);                     // unknown flag
  std::string missing = FixturePath("does_not_exist.cc");
  EXPECT_EQ(RunCli({missing.c_str()}), 2);                    // unreadable path
}

TEST(LintCliTest, ListRulesExitsZero) {
  std::string output;
  EXPECT_EQ(RunCli({"--list-rules"}, &output), 0);
  for (const char* id : {"QL001", "QL002", "QL003", "QL004", "QL005", "QL006"}) {
    EXPECT_NE(output.find(id), std::string::npos) << id;
  }
}

// ---- The repo itself must lint clean ----

TEST(LintRepoTest, SourceTreeIsClean) {
  std::vector<std::string> roots;
  for (const char* dir : {"src", "tools", "bench", "examples"}) {
    roots.push_back(std::string(QSTEER_SOURCE_DIR) + "/" + dir);
  }
  std::vector<Finding> findings;
  std::string error;
  ASSERT_TRUE(LintPaths(roots, LintOptions{}, &findings, &error)) << error;
  for (const Finding& finding : findings) {
    ADD_FAILURE() << finding.path << ":" << finding.line << ": " << finding.rule_id << " "
                  << finding.message;
  }
}

}  // namespace
}  // namespace lint
}  // namespace qsteer
