// Golden tests for qsteer-lint (tools/qsteer_lint_lib.h): every rule has a
// positive fixture asserting the exact rule ids and line anchors, a
// negative fixture asserting silence, and the CLI's exit-code contract is
// pinned (0 clean / 1 findings / 2 usage-or-IO error). The last test lints
// the repo's own src/ tools/ bench/ examples/ — the tree must stay clean,
// so a determinism regression fails ctest, not just CI.
#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "qsteer_lint_lib.h"

namespace qsteer {
namespace lint {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(QSTEER_LINT_FIXTURES_DIR) + "/" + name;
}

/// Lints one fixture and returns (rule_id, line) pairs in report order.
std::vector<std::pair<std::string, int>> LintFixture(const std::string& name) {
  std::vector<Finding> findings;
  std::string error;
  bool ok = LintPaths({FixturePath(name)}, LintOptions{}, &findings, &error);
  EXPECT_TRUE(ok) << error;
  std::vector<std::pair<std::string, int>> out;
  out.reserve(findings.size());
  for (const Finding& finding : findings) {
    EXPECT_EQ(finding.path, FixturePath(name));
    EXPECT_FALSE(finding.message.empty());
    out.emplace_back(finding.rule_id, finding.line);
  }
  return out;
}

using Anchors = std::vector<std::pair<std::string, int>>;

TEST(LintTest, RandomSourcePositive) {
  EXPECT_EQ(LintFixture("ql001_positive.cc"),
            (Anchors{{"QL001", 7}, {"QL001", 8}, {"QL001", 9}}));
}

TEST(LintTest, RandomSourceNegative) { EXPECT_EQ(LintFixture("ql001_negative.cc"), Anchors{}); }

TEST(LintTest, WallClockPositive) {
  EXPECT_EQ(LintFixture("ql002_positive.cc"),
            (Anchors{{"QL002", 7}, {"QL002", 8}, {"QL002", 9}, {"QL002", 10}, {"QL002", 12}}));
}

TEST(LintTest, WallClockNegativeJustifiedSuppressions) {
  EXPECT_EQ(LintFixture("ql002_negative.cc"), Anchors{});
}

TEST(LintTest, UnorderedIterationPositive) {
  EXPECT_EQ(LintFixture("ql003_positive.cc"), (Anchors{{"QL003", 13}}));
}

TEST(LintTest, UnorderedIterationNegativeSortAndMarker) {
  EXPECT_EQ(LintFixture("ql003_negative.cc"), Anchors{});
}

TEST(LintTest, UnorderedIterationSkipsOrderInsensitiveFiles) {
  EXPECT_EQ(LintFixture("ql003_not_order_sensitive.cc"), Anchors{});
}

TEST(LintTest, SerializingCatalogStatsFilesAreCovered) {
  // QL003 is content-triggered: serializing statistics code under
  // src/catalog (outside the QL005 layer gate) is still linted.
  EXPECT_EQ(LintFixture("src/catalog/ql003_histogram_positive.cc"),
            (Anchors{{"QL003", 20}}));
}

TEST(LintTest, OrderedHistogramCachesStaySilent) {
  // The real stats_model.cc shape: std::map cache + construction-ordered
  // bucket vector — deterministic, so no findings.
  EXPECT_EQ(LintFixture("src/catalog/ql003_histogram_negative.cc"), Anchors{});
}

TEST(LintTest, PointerOrderingPositive) {
  EXPECT_EQ(LintFixture("ql004_positive.cc"),
            (Anchors{{"QL004", 9}, {"QL004", 10}, {"QL004", 11}, {"QL004", 14}}));
}

TEST(LintTest, PointerOrderingNegative) {
  EXPECT_EQ(LintFixture("ql004_negative.cc"), Anchors{});
}

TEST(LintTest, BannedIncludePositiveInsideCoreLayer) {
  EXPECT_EQ(LintFixture("src/core/ql005_positive.cc"),
            (Anchors{{"QL005", 3}, {"QL005", 4}, {"QL005", 5}, {"QL005", 6}}));
}

TEST(LintTest, BannedIncludeNegativeOutsideLayers) {
  EXPECT_EQ(LintFixture("ql005_negative.cc"), Anchors{});
}

TEST(LintTest, BadSuppressionsFireQL006AndSuppressNothing) {
  EXPECT_EQ(LintFixture("ql006_bad_suppression.cc"),
            (Anchors{{"QL006", 6}, {"QL002", 7}, {"QL006", 8}, {"QL006", 9}}));
}

TEST(LintTest, CompanionHeaderDeclarationsAreVisibleFromCc) {
  // recommender.cc-style split: the container member lives in the header,
  // the serializing loop in the .cc. LintContent's companion parameter is
  // what LintPaths feeds from the sibling header.
  const std::string header = "struct S { std::unordered_map<int, int> store_; };\n";
  const std::string source =
      "std::string S::Serialize() const {\n"
      "  std::string out;\n"
      "  for (const auto& kv : store_) out += 'x';\n"
      "  return out;\n"
      "}\n";
  std::vector<Finding> without = LintContent("s.cc", source, LintOptions{});
  EXPECT_TRUE(without.empty());
  std::vector<Finding> with = LintContent("s.cc", source, LintOptions{}, header);
  ASSERT_EQ(with.size(), 1u);
  EXPECT_EQ(with[0].rule_id, "QL003");
  EXPECT_EQ(with[0].line, 3);
}

TEST(LintTest, UncheckedStatusPositive) {
  // 12/13: bare drops; 14: (void) without a justification; 17: a directive
  // alone cannot silence a bare drop — the discard must be written out;
  // 20: a drop in an unbraced `if (...) Call();` body is still a drop.
  EXPECT_EQ(LintFixture("ql007_positive.cc"),
            (Anchors{{"QL007", 12}, {"QL007", 13}, {"QL007", 14}, {"QL007", 17},
                     {"QL007", 20}}));
}

TEST(LintTest, UncheckedStatusNegative) {
  EXPECT_EQ(LintFixture("ql007_negative.cc"), Anchors{});
}

TEST(LintTest, LockOrderCyclePositive) {
  // The seeded inversion: AB() nests a_ -> b_, BA() nests b_ -> a_. The
  // finding anchors on the acquisition that closes the cycle (line 17).
  EXPECT_EQ(LintFixture("ql008_positive.cc"), (Anchors{{"QL008", 17}}));
}

TEST(LintTest, LockOrderConsistentNegative) {
  EXPECT_EQ(LintFixture("ql008_negative.cc"), Anchors{});
}

TEST(LintTest, LockHierarchyGoldenMismatchFires) {
  // The consistent fixture extracts exactly a_ -> b_. A golden listing a
  // different edge yields two QL008s: the extracted edge is "not in the
  // golden" (anchored at the witness site) and the golden's edge is stale
  // (anchored at its own line in the golden file).
  std::vector<Finding> findings;
  std::string error;
  LintOptions options;
  options.lock_hierarchy_golden = "# comment\nEngine::b_ -> Engine::c_\n";
  options.lock_hierarchy_golden_path = "tools/lock_hierarchy.txt";
  ASSERT_TRUE(
      LintPaths({FixturePath("ql008_negative.cc")}, options, &findings, &error))
      << error;
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule_id, "QL008");
  EXPECT_EQ(findings[0].path, FixturePath("ql008_negative.cc"));
  EXPECT_NE(findings[0].message.find("Engine::a_ -> Engine::b_"), std::string::npos);
  EXPECT_EQ(findings[1].rule_id, "QL008");
  EXPECT_EQ(findings[1].path, "tools/lock_hierarchy.txt");
  EXPECT_EQ(findings[1].line, 2);
  EXPECT_NE(findings[1].message.find("stale"), std::string::npos);
}

TEST(LintTest, LockHierarchyExtractionAndFormat) {
  std::vector<Finding> findings;
  std::string error;
  std::vector<LockEdge> edges;
  ASSERT_TRUE(LintPaths({FixturePath("ql008_negative.cc")}, LintOptions{}, &findings,
                        &error, &edges))
      << error;
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].from, "Engine::a_");
  EXPECT_EQ(edges[0].to, "Engine::b_");
  std::string golden = FormatLockHierarchy(edges);
  EXPECT_NE(golden.find("Engine::a_ -> Engine::b_\n"), std::string::npos);
  // The emitted bytes are themselves a valid golden: round-trip is clean.
  LintOptions options;
  options.lock_hierarchy_golden = golden;
  findings.clear();
  ASSERT_TRUE(LintPaths({FixturePath("ql008_negative.cc")}, options, &findings, &error));
  EXPECT_TRUE(findings.empty());
}

TEST(LintTest, SerializationContractPositive) {
  EXPECT_EQ(LintFixture("ql009_positive.cc"),
            (Anchors{{"QL009", 9}, {"QL009", 10}, {"QL009", 10}, {"QL009", 13}}));
}

TEST(LintTest, SerializationContractNegative) {
  EXPECT_EQ(LintFixture("ql009_negative.cc"), Anchors{});
}

TEST(LintTest, CrcBeforeTrustPositive) {
  EXPECT_EQ(LintFixture("ql010_positive.cc"), (Anchors{{"QL010", 7}, {"QL010", 11}}));
}

TEST(LintTest, CrcBeforeTrustNegative) {
  EXPECT_EQ(LintFixture("ql010_negative.cc"), Anchors{});
}

TEST(LintTest, CuratedTestAllowlistMechanism) {
  // The curated allow-list entry for tests/.lint_allow_example.cc + QL002
  // suppresses with default options and fires with allowlists disabled —
  // the mechanism chaos tests would use for intentional nondeterminism.
  const std::string source = "double Now() { return steady_clock::now(); }\n";
  EXPECT_TRUE(LintContent("tests/.lint_allow_example.cc", source).empty());
  LintOptions strict;
  strict.builtin_allowlists = false;
  EXPECT_EQ(LintContent("tests/.lint_allow_example.cc", source, strict).size(), 1u);
}

TEST(LintTest, SelfExemption) {
  std::vector<Finding> findings =
      LintContent("tools/qsteer_lint_lib.cc", "auto t = std::chrono::steady_clock::now();\n");
  EXPECT_TRUE(findings.empty());
}

// ---- CLI exit-code contract ----

int RunCli(std::vector<const char*> args, std::string* out_text = nullptr) {
  args.insert(args.begin(), "qsteer_lint");
  std::ostringstream out;
  std::ostringstream err;
  int code = RunLintMain(static_cast<int>(args.size()), args.data(), out, err);
  if (out_text != nullptr) *out_text = out.str() + err.str();
  return code;
}

TEST(LintCliTest, CleanFileExitsZero) {
  std::string path = FixturePath("ql001_negative.cc");
  EXPECT_EQ(RunCli({path.c_str()}), 0);
}

TEST(LintCliTest, FindingsExitOneAndNameTheRule) {
  std::string path = FixturePath("ql001_positive.cc");
  std::string output;
  EXPECT_EQ(RunCli({path.c_str()}, &output), 1);
  EXPECT_NE(output.find("QL001"), std::string::npos);
  EXPECT_NE(output.find("ql001_positive.cc:7"), std::string::npos);
}

TEST(LintCliTest, JsonFormatIsMachineReadable) {
  std::string path = FixturePath("ql002_positive.cc");
  std::string output;
  EXPECT_EQ(RunCli({"--format=json", path.c_str()}, &output), 1);
  EXPECT_NE(output.find("\"rule\": \"QL002\""), std::string::npos);
  EXPECT_NE(output.find("\"line\": 7"), std::string::npos);
}

// ---- JSON round trip ----
//
// A strict parser for the linter's own output shape (an array of flat
// objects with string/number values). Any invalid escape, stray byte, or
// structural slip fails the parse — so the test proves the emitted JSON is
// machine-readable, not merely grep-able.

struct ParsedFinding {
  std::map<std::string, std::string> strings;
  std::map<std::string, int> numbers;
};

bool JsonUnescape(const std::string& in, size_t* i, std::string* out) {
  // *i points at the opening quote.
  if (in[*i] != '"') return false;
  for (++*i; *i < in.size(); ++*i) {
    char c = in[*i];
    if (c == '"') {
      ++*i;
      return true;
    }
    if (c != '\\') {
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control byte
      out->push_back(c);
      continue;
    }
    if (++*i >= in.size()) return false;
    switch (in[*i]) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/': out->push_back('/'); break;
      case 'n': out->push_back('\n'); break;
      case 't': out->push_back('\t'); break;
      case 'r': out->push_back('\r'); break;
      case 'b': out->push_back('\b'); break;
      case 'f': out->push_back('\f'); break;
      case 'u': {
        if (*i + 4 >= in.size()) return false;
        int code = 0;
        for (int k = 0; k < 4; ++k) {
          char h = in[*i + 1 + static_cast<size_t>(k)];
          int digit = (h >= '0' && h <= '9')   ? h - '0'
                      : (h >= 'a' && h <= 'f') ? h - 'a' + 10
                      : (h >= 'A' && h <= 'F') ? h - 'A' + 10
                                               : -1;
          if (digit < 0) return false;
          code = code * 16 + digit;
        }
        if (code > 0x7f) return false;  // the linter only \u-escapes controls
        out->push_back(static_cast<char>(code));
        *i += 4;
        break;
      }
      default: return false;
    }
  }
  return false;  // unterminated string
}

bool ParseFindingsJson(const std::string& text, std::vector<ParsedFinding>* out) {
  size_t i = 0;
  auto skip_ws = [&] {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\n' || text[i] == '\t' ||
                               text[i] == '\r')) {
      ++i;
    }
  };
  skip_ws();
  if (i >= text.size() || text[i] != '[') return false;
  ++i;
  skip_ws();
  if (i < text.size() && text[i] == ']') {
    ++i;
    skip_ws();
    return i == text.size();
  }
  while (true) {
    skip_ws();
    if (i >= text.size() || text[i] != '{') return false;
    ++i;
    ParsedFinding finding;
    while (true) {
      skip_ws();
      std::string key;
      if (!JsonUnescape(text, &i, &key)) return false;
      skip_ws();
      if (i >= text.size() || text[i] != ':') return false;
      ++i;
      skip_ws();
      if (i < text.size() && text[i] == '"') {
        std::string value;
        if (!JsonUnescape(text, &i, &value)) return false;
        finding.strings[key] = value;
      } else {
        size_t start = i;
        while (i < text.size() && (std::isdigit(static_cast<unsigned char>(text[i])) != 0 ||
                                   text[i] == '-')) {
          ++i;
        }
        if (i == start) return false;
        finding.numbers[key] = std::stoi(text.substr(start, i - start));
      }
      skip_ws();
      if (i < text.size() && text[i] == ',') {
        ++i;
        continue;
      }
      break;
    }
    if (i >= text.size() || text[i] != '}') return false;
    ++i;
    out->push_back(std::move(finding));
    skip_ws();
    if (i < text.size() && text[i] == ',') {
      ++i;
      continue;
    }
    break;
  }
  if (i >= text.size() || text[i] != ']') return false;
  ++i;
  skip_ws();
  return i == text.size();
}

TEST(LintCliTest, JsonRoundTripsEveryField) {
  std::string path = FixturePath("ql007_positive.cc");
  std::string output;
  EXPECT_EQ(RunCli({"--json", path.c_str()}, &output), 1);
  std::vector<ParsedFinding> parsed;
  ASSERT_TRUE(ParseFindingsJson(output, &parsed)) << output;

  std::vector<Finding> direct;
  std::string error;
  ASSERT_TRUE(LintPaths({path}, LintOptions{}, &direct, &error)) << error;
  ASSERT_EQ(parsed.size(), direct.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(parsed[i].strings["path"], direct[i].path);
    EXPECT_EQ(parsed[i].numbers["line"], direct[i].line);
    EXPECT_EQ(parsed[i].strings["rule"], direct[i].rule_id);
    EXPECT_EQ(parsed[i].strings["name"], direct[i].rule_name);
    EXPECT_EQ(parsed[i].strings["message"], direct[i].message);
    // Every QL007 message carries backticks and single quotes — bytes a
    // naive emitter mangles; exact equality above is the real check.
    EXPECT_NE(parsed[i].strings["message"].find('`'), std::string::npos);
  }
}

TEST(LintCliTest, JsonEscapesQuotesAndBackslashes) {
  // A finding whose path contains a quote and a backslash must still parse.
  std::string dir = ::testing::TempDir() + "/qsteer_lint_json";
  std::filesystem::create_directories(dir);
  std::string tricky = dir + "/we\\ird\"name.cc";
  {
    std::ofstream out(tricky, std::ios::trunc);
    out << "int Seed() { return rand(); }\n";
  }
  std::string output;
  EXPECT_EQ(RunCli({"--json", tricky.c_str()}, &output), 1);
  std::vector<ParsedFinding> parsed;
  ASSERT_TRUE(ParseFindingsJson(output, &parsed)) << output;
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].strings["path"], tricky);
  EXPECT_EQ(parsed[0].strings["rule"], "QL001");
  std::filesystem::remove_all(dir);
}

TEST(LintCliTest, JsonEmptyArrayForCleanInput) {
  std::string path = FixturePath("ql001_negative.cc");
  std::string output;
  EXPECT_EQ(RunCli({"--json", path.c_str()}, &output), 0);
  std::vector<ParsedFinding> parsed;
  ASSERT_TRUE(ParseFindingsJson(output, &parsed)) << output;
  EXPECT_TRUE(parsed.empty());
}

TEST(LintCliTest, EmitLockHierarchyPrintsGoldenBytes) {
  std::string path = FixturePath("ql008_negative.cc");
  std::string output;
  EXPECT_EQ(RunCli({"--emit-lock-hierarchy", path.c_str()}, &output), 0);
  EXPECT_NE(output.find("Engine::a_ -> Engine::b_\n"), std::string::npos);
}

TEST(LintCliTest, MissingLockHierarchyGoldenExitsTwo) {
  std::string path = FixturePath("ql008_negative.cc");
  std::string output;
  EXPECT_EQ(RunCli({"--lock-hierarchy=/nonexistent/hierarchy.txt", path.c_str()}, &output),
            2);
  EXPECT_NE(output.find("cannot open"), std::string::npos);
}

TEST(LintCliTest, UsageAndIoErrorsExitTwo) {
  EXPECT_EQ(RunCli({}), 2);                                   // no paths
  EXPECT_EQ(RunCli({"--bogus-flag"}), 2);                     // unknown flag
  std::string missing = FixturePath("does_not_exist.cc");
  EXPECT_EQ(RunCli({missing.c_str()}), 2);                    // unreadable path
}

TEST(LintCliTest, ListRulesExitsZero) {
  std::string output;
  EXPECT_EQ(RunCli({"--list-rules"}, &output), 0);
  for (const char* id : {"QL001", "QL002", "QL003", "QL004", "QL005", "QL006", "QL007",
                         "QL008", "QL009", "QL010"}) {
    EXPECT_NE(output.find(id), std::string::npos) << id;
  }
}

// ---- The repo itself must lint clean ----

TEST(LintRepoTest, SourceTreeIsClean) {
  // tests/ included: chaos-test nondeterminism goes through the curated
  // allowlist or a justified directive, never unreviewed. The lock graph is
  // checked against the committed golden, so a new nesting (or a stale
  // golden line) fails here, not just in CI.
  std::vector<std::string> roots;
  for (const char* dir : {"src", "tools", "bench", "examples", "tests"}) {
    roots.push_back(std::string(QSTEER_SOURCE_DIR) + "/" + dir);
  }
  LintOptions options;
  options.lock_hierarchy_golden_path =
      std::string(QSTEER_SOURCE_DIR) + "/tools/lock_hierarchy.txt";
  {
    std::ifstream golden(options.lock_hierarchy_golden_path);
    ASSERT_TRUE(golden.good()) << "missing " << options.lock_hierarchy_golden_path;
    std::ostringstream buffer;
    buffer << golden.rdbuf();
    options.lock_hierarchy_golden = buffer.str();
  }
  std::vector<Finding> findings;
  std::string error;
  ASSERT_TRUE(LintPaths(roots, options, &findings, &error)) << error;
  for (const Finding& finding : findings) {
    ADD_FAILURE() << finding.path << ":" << finding.line << ": " << finding.rule_id << " "
                  << finding.message;
  }
}

}  // namespace
}  // namespace lint
}  // namespace qsteer
