// Reference-executor semantics on hand-built plans over a tiny controlled
// catalog: join types with null keys, aggregate null handling, Top-N
// determinism, DAG sharing, and union alignment.
#include "exec/reference_executor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "catalog/datagen.h"

namespace qsteer {
namespace {

class RefExecTest : public ::testing::Test {
 protected:
  RefExecTest() {
    StreamSet left;
    left.name = "left";
    left.columns = {
        {.name = "k", .distinct_count = 8},
        {.name = "v", .distinct_count = 50, .null_fraction = 0.2},
    };
    int left_id = catalog_.AddStreamSet(std::move(left));
    EXPECT_TRUE(catalog_.AddStream(left_id, "left_d0", 400, 4).ok());

    StreamSet right;
    right.name = "right";
    right.columns = {
        {.name = "rk", .distinct_count = 8},
        {.name = "rv", .distinct_count = 30},
    };
    int right_id = catalog_.AddStreamSet(std::move(right));
    EXPECT_TRUE(catalog_.AddStream(right_id, "right_d0", 300, 4).ok());

    universe_ = std::make_shared<ColumnUniverse>();
    k_ = universe_->GetOrAddBaseColumn(0, 0, "k");
    v_ = universe_->GetOrAddBaseColumn(0, 1, "v");
    rk_ = universe_->GetOrAddBaseColumn(1, 0, "rk");
    rv_ = universe_->GetOrAddBaseColumn(1, 1, "rv");

    job_.name = "ref";
    job_.day = 0;
    job_.columns = universe_;
  }

  PlanNodePtr Scan(int set, const std::vector<ColumnId>& cols) {
    Operator op;
    op.kind = OpKind::kGet;
    op.stream_set_id = set;
    op.stream_id = catalog_.stream_set(set).stream_ids[0];
    op.scan_columns = cols;
    return PlanNode::Make(op, {});
  }

  Relation Run(const PlanNodePtr& root) {
    ReferenceExecutor executor(&catalog_);
    Job job = job_;
    job.root = root;
    return executor.Execute(job, root);
  }

  Catalog catalog_;
  std::shared_ptr<ColumnUniverse> universe_;
  ColumnId k_, v_, rk_, rv_;
  Job job_;
};

TEST_F(RefExecTest, ScanReturnsAllRows) {
  Relation r = Run(Scan(0, {k_, v_}));
  // True row counts carry deterministic per-day jitter around the base.
  EXPECT_EQ(r.num_rows(), catalog_.TrueRowCount(0, /*day=*/0));
  EXPECT_NEAR(static_cast<double>(r.num_rows()), 400.0, 150.0);
  EXPECT_EQ(r.columns, (std::vector<ColumnId>{k_, v_}));
}

TEST_F(RefExecTest, FilterMatchesManualCount) {
  PlanNodePtr scan = Scan(0, {k_, v_});
  Relation all = Run(scan);
  int k_idx = 0;
  int64_t expected = 0;
  for (const auto& row : all.rows) {
    if (row[static_cast<size_t>(k_idx)] != kNullValue && row[static_cast<size_t>(k_idx)] <= 4) {
      ++expected;
    }
  }
  Operator select;
  select.kind = OpKind::kSelect;
  select.predicate = Expr::Cmp(k_, CmpOp::kLe, 4);
  Relation filtered = Run(PlanNode::Make(select, {scan}));
  EXPECT_EQ(filtered.num_rows(), expected);
  EXPECT_GT(expected, 0);
  EXPECT_LT(expected, 400);
}

TEST_F(RefExecTest, InnerJoinMatchesNestedLoopOracle) {
  PlanNodePtr left = Scan(0, {k_, v_});
  PlanNodePtr right = Scan(1, {rk_, rv_});
  Relation l = Run(left), r = Run(right);
  int64_t oracle = 0;
  for (const auto& lrow : l.rows) {
    for (const auto& rrow : r.rows) {
      if (lrow[0] != kNullValue && lrow[0] == rrow[0]) ++oracle;
    }
  }
  Operator join;
  join.kind = OpKind::kJoin;
  join.join_type = JoinType::kInner;
  join.left_keys = {k_};
  join.right_keys = {rk_};
  Relation joined = Run(PlanNode::Make(join, {left, right}));
  EXPECT_EQ(joined.num_rows(), oracle);
  EXPECT_GT(oracle, 0);
  EXPECT_EQ(joined.columns, (std::vector<ColumnId>{k_, v_, rk_, rv_}));
}

TEST_F(RefExecTest, LeftOuterJoinPadsUnmatchedRows) {
  PlanNodePtr left = Scan(0, {k_, v_});
  // Filter the right side so some left keys have no match.
  Operator narrow;
  narrow.kind = OpKind::kSelect;
  narrow.predicate = Expr::Cmp(rk_, CmpOp::kLe, 3);
  PlanNodePtr right = PlanNode::Make(narrow, {Scan(1, {rk_, rv_})});

  Operator join;
  join.kind = OpKind::kJoin;
  join.join_type = JoinType::kLeftOuter;
  join.left_keys = {k_};
  join.right_keys = {rk_};
  Relation outer = Run(PlanNode::Make(join, {left, right}));
  Relation l = Run(left);
  // Every left row appears at least once.
  EXPECT_GE(outer.num_rows(), l.num_rows());
  // Unmatched rows have null right columns.
  int rv_idx = 3;
  int padded = 0;
  for (const auto& row : outer.rows) {
    if (row[static_cast<size_t>(rv_idx)] == kNullValue) ++padded;
  }
  EXPECT_GT(padded, 0);
}

TEST_F(RefExecTest, SemiJoinKeepsLeftColumnsOnly) {
  PlanNodePtr left = Scan(0, {k_, v_});
  PlanNodePtr right = Scan(1, {rk_, rv_});
  Operator join;
  join.kind = OpKind::kJoin;
  join.join_type = JoinType::kLeftSemi;
  join.left_keys = {k_};
  join.right_keys = {rk_};
  Relation semi = Run(PlanNode::Make(join, {left, right}));
  EXPECT_EQ(semi.columns, (std::vector<ColumnId>{k_, v_}));
  Relation l = Run(left);
  EXPECT_LE(semi.num_rows(), l.num_rows());
  EXPECT_GT(semi.num_rows(), 0);
  // No duplicates beyond the left multiplicity: every semi row exists in l.
  EXPECT_LE(semi.num_rows(), l.num_rows());
}

TEST_F(RefExecTest, NullKeysNeverJoin) {
  // v has 20% nulls; join left.v = right.rk and check no null-key matches.
  PlanNodePtr left = Scan(0, {k_, v_});
  PlanNodePtr right = Scan(1, {rk_, rv_});
  Operator join;
  join.kind = OpKind::kJoin;
  join.join_type = JoinType::kInner;
  join.left_keys = {v_};
  join.right_keys = {rk_};
  Relation joined = Run(PlanNode::Make(join, {left, right}));
  int v_idx = 1;
  for (const auto& row : joined.rows) {
    EXPECT_NE(row[static_cast<size_t>(v_idx)], kNullValue);
  }
}

TEST_F(RefExecTest, GroupByAggregatesWithNullSkipping) {
  PlanNodePtr scan = Scan(0, {k_, v_});
  Relation all = Run(scan);
  ColumnId cnt = universe_->AddDerivedColumn("cnt", 100);
  ColumnId mx = universe_->AddDerivedColumn("mx", 100);
  Operator gb;
  gb.kind = OpKind::kGroupBy;
  gb.group_keys = {k_};
  gb.aggs = {{AggFunc::kCount, kInvalidColumn, cnt}, {AggFunc::kMax, v_, mx}};
  Relation grouped = Run(PlanNode::Make(gb, {scan}));

  // Oracle for one key value.
  int64_t key = all.rows[0][0];
  int64_t oracle_count = 0, oracle_max = kNullValue;
  for (const auto& row : all.rows) {
    if (row[0] != key) continue;
    ++oracle_count;
    if (row[1] != kNullValue && (oracle_max == kNullValue || row[1] > oracle_max)) {
      oracle_max = row[1];
    }
  }
  int cnt_idx = static_cast<int>(
      std::lower_bound(grouped.columns.begin(), grouped.columns.end(), cnt) -
      grouped.columns.begin());
  int mx_idx = static_cast<int>(
      std::lower_bound(grouped.columns.begin(), grouped.columns.end(), mx) -
      grouped.columns.begin());
  bool found = false;
  for (const auto& row : grouped.rows) {
    if (row[0] != key) continue;
    found = true;
    EXPECT_EQ(row[static_cast<size_t>(cnt_idx)], oracle_count);
    EXPECT_EQ(row[static_cast<size_t>(mx_idx)], oracle_max);
  }
  EXPECT_TRUE(found);
  EXPECT_LE(grouped.num_rows(), 8);  // k has 8 distinct values
}

TEST_F(RefExecTest, TopNDeterministicAndOrdered) {
  PlanNodePtr scan = Scan(0, {k_, v_});
  Operator top;
  top.kind = OpKind::kTop;
  top.limit = 10;
  top.sort_keys = {k_};
  Relation a = Run(PlanNode::Make(top, {scan}));
  Relation b = Run(PlanNode::Make(top, {scan}));
  EXPECT_EQ(a.num_rows(), 10);
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  // The kept keys are the globally smallest (key multiset well-defined).
  Relation all = Run(scan);
  std::vector<int64_t> keys;
  for (const auto& row : all.rows) keys.push_back(row[0]);
  std::sort(keys.begin(), keys.end());
  std::vector<int64_t> top_keys;
  for (const auto& row : a.rows) top_keys.push_back(row[0]);
  std::sort(top_keys.begin(), top_keys.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(top_keys[static_cast<size_t>(i)], keys[static_cast<size_t>(i)]);
}

TEST_F(RefExecTest, UnionAllConcatenatesAndSharedNodesStable) {
  PlanNodePtr scan = Scan(0, {k_, v_});
  Operator u;
  u.kind = OpKind::kUnionAll;
  Relation doubled = Run(PlanNode::Make(u, {scan, scan}));
  Relation single = Run(scan);
  EXPECT_EQ(doubled.num_rows(), single.num_rows() * 2);
}

TEST_F(RefExecTest, ExchangeAndSortAreResultNeutral) {
  PlanNodePtr scan = Scan(0, {k_, v_});
  Operator exchange;
  exchange.kind = OpKind::kExchange;
  exchange.exchange = ExchangeKind::kRepartition;
  exchange.exchange_keys = {k_};
  Operator sort;
  sort.kind = OpKind::kSort;
  sort.sort_keys = {k_};
  Relation wrapped =
      Run(PlanNode::Make(sort, {PlanNode::Make(exchange, {scan})}));
  EXPECT_EQ(wrapped.Fingerprint(), Run(scan).Fingerprint());
}

TEST_F(RefExecTest, ComputedProjectionIsDeterministicPerRow) {
  PlanNodePtr scan = Scan(0, {k_, v_});
  ColumnId derived = universe_->AddDerivedColumn("d", 16);
  Operator project;
  project.kind = OpKind::kProject;
  NamedExpr pass;
  pass.output = k_;
  pass.pass_through = true;
  pass.inputs = {k_};
  NamedExpr computed;
  computed.output = derived;
  computed.pass_through = false;
  computed.inputs = {k_};
  computed.fn_seed = 0x1234;
  project.projections = {pass, computed};
  Relation a = Run(PlanNode::Make(project, {scan}));
  Relation b = Run(PlanNode::Make(project, {scan}));
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  // Same input value -> same derived value.
  std::map<int64_t, int64_t> mapping;
  for (const auto& row : a.rows) {
    auto it = mapping.find(row[0]);
    if (it == mapping.end()) {
      mapping[row[0]] = row[1];
    } else {
      EXPECT_EQ(it->second, row[1]);
    }
  }
  // Derived values live in [1, 16].
  for (const auto& row : a.rows) {
    EXPECT_GE(row[1], 1);
    EXPECT_LE(row[1], 16);
  }
}

TEST_F(RefExecTest, ProcessFiltersDeterministically) {
  PlanNodePtr scan = Scan(0, {k_, v_});
  Operator process;
  process.kind = OpKind::kProcess;
  process.udo_name = "udo_ref_test";
  Relation a = Run(PlanNode::Make(process, {scan}));
  Relation b = Run(PlanNode::Make(process, {scan}));
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  Relation base = Run(scan);
  EXPECT_LT(a.num_rows(), base.num_rows());
  EXPECT_GT(a.num_rows(), 0);
}

}  // namespace
}  // namespace qsteer
