// Tests of the span-keyed compile cache and its pipeline/service plumbing:
// bit-identity with caching on vs off (the non-negotiable invariant), LRU
// eviction under a tiny budget, span-projection candidate dedup, seed-memo
// session equivalence, concurrent access, and the durable store's lock-free
// recommendation snapshot.
#include "optimizer/compile_cache.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/file_io.h"

#include "core/config_search.h"
#include "core/pipeline.h"
#include "core/span.h"
#include "service/durable_store.h"
#include "workload/generator.h"

namespace qsteer {
namespace {

WorkloadSpec TestSpec() {
  WorkloadSpec spec;
  spec.name = "CC";
  spec.seed = 4242;
  spec.num_templates = 12;
  spec.num_stream_sets = 10;
  return spec;
}

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// Full bit-level digest of an analysis: plan identity, signature,
/// cost-model outputs, span, candidate costs, executed configs. Any
/// divergence between cached and uncached compilation shows up here.
uint64_t AnalysisDigest(const JobAnalysis& analysis) {
  uint64_t h = 0xc0ffee0ull;
  h = HashCombine(h, analysis.default_plan.root != nullptr
                         ? PlanHash(analysis.default_plan.root, /*for_template=*/false)
                         : 0);
  h = HashCombine(h, analysis.default_plan.signature.Hash());
  h = HashCombine(h, DoubleBits(analysis.default_plan.est_cost));
  h = HashCombine(h, analysis.span.span.Hash());
  h = HashCombine(h, static_cast<uint64_t>(analysis.candidates_generated));
  h = HashCombine(h, static_cast<uint64_t>(analysis.recompiled_ok));
  h = HashCombine(h, static_cast<uint64_t>(analysis.compile_failures));
  for (double cost : analysis.candidate_costs) h = HashCombine(h, DoubleBits(cost));
  for (const ConfigOutcome& outcome : analysis.executed) {
    h = HashCombine(h, outcome.config.Hash());
    h = HashCombine(h, PlanHash(outcome.plan.root, /*for_template=*/false));
    h = HashCombine(h, outcome.plan.signature.Hash());
    h = HashCombine(h, DoubleBits(outcome.plan.est_cost));
  }
  return h;
}

CompiledPlan MakePlan(int streams) {
  // A real small plan (cache byte accounting visits it).
  Operator get;
  get.kind = OpKind::kGet;
  get.stream_id = streams;
  get.stream_set_id = 0;
  get.scan_columns = {0};
  CompiledPlan plan;
  plan.root = PlanNode::Make(get, {});
  plan.est_cost = streams * 1.5;
  return plan;
}

TEST(CompileCacheUnit, HitReturnsIdenticalResultAndCountsStats) {
  CompileCache cache;
  CompileCache::Key key{/*fingerprint=*/7, RuleConfig::Default().bits()};
  EXPECT_FALSE(cache.Lookup(key).has_value());

  cache.Insert(key, Result<CompiledPlan>(MakePlan(3)));
  auto hit = cache.Lookup(key);
  ASSERT_TRUE(hit.has_value());
  ASSERT_TRUE(hit->ok());
  EXPECT_EQ(hit->value().est_cost, 4.5);

  CompileCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.inserts, 1);
  EXPECT_EQ(stats.entries, 1);
  EXPECT_GT(stats.bytes, 0);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
}

TEST(CompileCacheUnit, PermanentFailuresCachedTransientOnesNot) {
  CompileCache cache;
  CompileCache::Key failed{1, RuleConfig::Default().bits()};
  cache.Insert(failed, Result<CompiledPlan>(Status::CompilationFailed("no covering rule")));
  auto hit = cache.Lookup(failed);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->status().code(), StatusCode::kCompilationFailed);
  EXPECT_EQ(hit->status().message(), "no covering rule");

  CompileCache::Key timed_out{2, RuleConfig::Default().bits()};
  cache.Insert(timed_out, Result<CompiledPlan>(Status::DeadlineExceeded("busy")));
  EXPECT_FALSE(cache.Lookup(timed_out).has_value());
}

TEST(CompileCacheUnit, KeysDifferingOnlyInProjectionAreDistinct) {
  CompileCache cache;
  RuleConfig a = RuleConfig::AllEnabled();
  RuleConfig b = RuleConfig::AllEnabled();
  b.Disable(100);
  cache.Insert(CompileCache::Key{9, a.bits()}, Result<CompiledPlan>(MakePlan(1)));
  EXPECT_FALSE(cache.Lookup(CompileCache::Key{9, b.bits()}).has_value());
  EXPECT_FALSE(cache.Lookup(CompileCache::Key{8, a.bits()}).has_value());
  EXPECT_TRUE(cache.Lookup(CompileCache::Key{9, a.bits()}).has_value());
}

TEST(CompileCacheUnit, TinyCapacityEvictsLeastRecentlyUsed) {
  CompileCacheOptions options;
  options.shards = 1;               // deterministic LRU order
  options.capacity_bytes = 2'200;   // fits two ~900-byte single-node entries
  CompileCache cache(options);

  RuleConfig config = RuleConfig::AllEnabled();
  auto key = [&](uint64_t fp) { return CompileCache::Key{fp, config.bits()}; };
  cache.Insert(key(1), Result<CompiledPlan>(MakePlan(1)));
  cache.Insert(key(2), Result<CompiledPlan>(MakePlan(2)));
  // Touch 1 so 2 is the LRU victim.
  EXPECT_TRUE(cache.Lookup(key(1)).has_value());
  cache.Insert(key(3), Result<CompiledPlan>(MakePlan(3)));

  CompileCacheStats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0);
  EXPECT_LE(stats.bytes, options.capacity_bytes);
  EXPECT_TRUE(cache.Lookup(key(1)).has_value());   // recently used: kept
  EXPECT_FALSE(cache.Lookup(key(2)).has_value());  // LRU: evicted
  EXPECT_TRUE(cache.Lookup(key(3)).has_value());
}

TEST(CompileCacheUnit, ZeroCapacityNeverStores) {
  CompileCacheOptions options;
  options.capacity_bytes = 0;
  CompileCache cache(options);
  CompileCache::Key key{1, RuleConfig::Default().bits()};
  cache.Insert(key, Result<CompiledPlan>(MakePlan(1)));
  EXPECT_FALSE(cache.Lookup(key).has_value());
  EXPECT_EQ(cache.stats().entries, 0);
}

TEST(CompileCacheUnit, JobFingerprintSeparatesDaysAndSharesRecurrences) {
  Workload workload(TestSpec());
  Job day1 = workload.MakeJob(0, 1);
  Job day2 = workload.MakeJob(0, 2);
  Job other = workload.MakeJob(1, 1);
  EXPECT_NE(JobFingerprint(day1), JobFingerprint(day2));
  EXPECT_NE(JobFingerprint(day1), JobFingerprint(other));
  // Identical job value -> identical fingerprint (recurrence).
  Job again = workload.MakeJob(0, 1);
  EXPECT_EQ(JobFingerprint(day1), JobFingerprint(again));
}

// ------------------------------------------------- persistence (warm start)
//
// SaveToFile/WarmFromFile: the nightly discovery pass persists its compile
// cache; tomorrow's serving tier pre-warms from the file. The contract
// under test: an intact file restores plans AND permanent failures
// bit-identically; any damage — torn bytes, a missing footer, a foreign
// version tag, a day mismatch — rejects the WHOLE file (cold start), and
// rejection can cost compiles but never change a single result.

class PersistDir {
 public:
  PersistDir() {
    dir_ = std::filesystem::temp_directory_path() /
           ("qsteer_cc_persist_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    std::filesystem::create_directories(dir_);
  }
  ~PersistDir() { std::filesystem::remove_all(dir_); }
  std::string File(const std::string& name) const { return (dir_ / name).string(); }

 private:
  static inline int counter_ = 0;
  std::filesystem::path dir_;
};

// qsteer-lint: allow(crc-before-trust) test helper reads bytes to corrupt or inspect them; verification is the code under test
std::string PersistRawRead(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void PersistRawWrite(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

TEST(CompileCachePersist, SaveWarmRoundtripRestoresPlansAndPermanentFailures) {
  PersistDir dir;
  std::string path = dir.File("cache.qcc");
  CompileCache cache;
  CompileCache::Key plan_key{/*fingerprint=*/71, RuleConfig::Default().bits()};
  CompiledPlan plan = MakePlan(5);
  plan.signature = BitVector256::FromIndices({3, 99, 200});
  plan.est_output_rows = 12345.5;
  plan.memo_groups = 17;
  plan.memo_exprs = 41;
  cache.Insert(plan_key, Result<CompiledPlan>(std::move(plan)));
  CompileCache::Key fail_key{/*fingerprint=*/72, BitVector256::FromIndices({8})};
  cache.Insert(fail_key,
               Result<CompiledPlan>(Status::CompilationFailed("rule set unsatisfiable")));
  ASSERT_TRUE(cache.SaveToFile(path, /*day=*/11, /*sync=*/false).ok());

  CompileCache warmed;
  int64_t loaded = 0;
  ASSERT_TRUE(warmed.WarmFromFile(path, /*expected_day=*/11, &loaded).ok());
  EXPECT_EQ(loaded, 2);
  EXPECT_EQ(warmed.stats().warm_loaded, 2);
  EXPECT_EQ(warmed.stats().warm_rejected, 0);

  auto hit = warmed.Lookup(plan_key);
  ASSERT_TRUE(hit.has_value());
  ASSERT_TRUE(hit->ok());
  EXPECT_EQ(PlanHash(hit->value().root, /*for_template=*/false),
            PlanHash(MakePlan(5).root, /*for_template=*/false));
  EXPECT_EQ(hit->value().signature, BitVector256::FromIndices({3, 99, 200}));
  EXPECT_EQ(DoubleBits(hit->value().est_cost), DoubleBits(MakePlan(5).est_cost));
  EXPECT_EQ(DoubleBits(hit->value().est_output_rows), DoubleBits(12345.5));
  EXPECT_EQ(hit->value().memo_groups, 17);
  EXPECT_EQ(hit->value().memo_exprs, 41);

  auto failure = warmed.Lookup(fail_key);
  ASSERT_TRUE(failure.has_value());
  ASSERT_FALSE(failure->ok());
  EXPECT_EQ(failure->status().code(), StatusCode::kCompilationFailed);
  EXPECT_NE(failure->status().ToString().find("rule set unsatisfiable"), std::string::npos);
}

TEST(CompileCachePersist, SavedBytesAreDeterministicForEqualContents) {
  // Two caches holding the same entries (inserted in different orders)
  // must write identical files — save order is sorted key order, not
  // insertion or LRU order.
  PersistDir dir;
  CompileCache first, second;
  CompileCache::Key a{1, BitVector256::FromIndices({1})};
  CompileCache::Key b{2, BitVector256::FromIndices({2})};
  first.Insert(a, Result<CompiledPlan>(MakePlan(1)));
  first.Insert(b, Result<CompiledPlan>(MakePlan(2)));
  second.Insert(b, Result<CompiledPlan>(MakePlan(2)));
  second.Insert(a, Result<CompiledPlan>(MakePlan(1)));
  ASSERT_TRUE(first.SaveToFile(dir.File("a.qcc"), 1, false).ok());
  ASSERT_TRUE(second.SaveToFile(dir.File("b.qcc"), 1, false).ok());
  EXPECT_EQ(PersistRawRead(dir.File("a.qcc")), PersistRawRead(dir.File("b.qcc")));
}

TEST(CompileCachePersist, WarmRejectsDamageForeignVersionAndWrongDayWholly) {
  PersistDir dir;
  std::string path = dir.File("cache.qcc");
  CompileCache cache;
  cache.Insert({7, RuleConfig::Default().bits()}, Result<CompiledPlan>(MakePlan(2)));
  ASSERT_TRUE(cache.SaveToFile(path, /*day=*/5, /*sync=*/false).ok());
  std::string intact = PersistRawRead(path);

  // Day mismatch: pinned to the wrong day rejects; -1 accepts any day.
  {
    CompileCache warmed;
    int64_t loaded = -1;
    Status status = warmed.WarmFromFile(path, /*expected_day=*/6, &loaded);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
    EXPECT_EQ(loaded, 0);
    EXPECT_EQ(warmed.stats().warm_rejected, 1);
    EXPECT_EQ(warmed.stats().entries, 0) << "rejection loads nothing";
    ASSERT_TRUE(warmed.WarmFromFile(path, /*expected_day=*/-1, &loaded).ok());
    EXPECT_EQ(loaded, 1);
  }
  // A flipped payload byte fails the crc32 footer.
  {
    std::string corrupt = intact;
    corrupt[corrupt.size() / 2] ^= 0x10;
    PersistRawWrite(path, corrupt);
    CompileCache warmed;
    EXPECT_FALSE(warmed.WarmFromFile(path, 5, nullptr).ok());
    EXPECT_EQ(warmed.stats().warm_rejected, 1);
  }
  // A torn prefix (crash mid-ship) fails the footer too.
  {
    PersistRawWrite(path, intact.substr(0, intact.size() / 3));
    CompileCache warmed;
    EXPECT_FALSE(warmed.WarmFromFile(path, 5, nullptr).ok());
  }
  // No footer at all: not a SaveToFile artifact, never trusted.
  {
    PersistRawWrite(path, "qsteer-compile-cache v1\nbut no checksum footer");
    CompileCache warmed;
    EXPECT_FALSE(warmed.WarmFromFile(path, 5, nullptr).ok());
  }
  // A checksummed file of some OTHER format: unknown version tag.
  {
    ASSERT_TRUE(WriteFileChecksummed(path, "# qsteer-rulediff v1\nnot a cache\n",
                                     /*sync=*/false)
                    .ok());
    CompileCache warmed;
    Status status = warmed.WarmFromFile(path, 5, nullptr);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  }
  // Missing file: plain NotFound (the caller's cold-start path).
  {
    CompileCache warmed;
    EXPECT_EQ(warmed.WarmFromFile(dir.File("absent.qcc"), 5, nullptr).code(),
              StatusCode::kNotFound);
  }
}

TEST(SpanProjectionDedup, NoEmittedCandidateMatchesDefaultOrAnotherProjection) {
  BitVector256 span = BitVector256::FromIndices({38, 40, 90, 91, 120, 224, 228});
  ConfigSearchOptions options;
  options.max_configs = 200;
  options.seed = 77;
  CandidateGenerationStats stats;
  std::vector<RuleConfig> configs = GenerateCandidateConfigs(span, options, &stats);

  EXPECT_EQ(stats.generated, static_cast<int>(configs.size()));
  uint64_t default_projection = RuleConfig::Default().bits().And(span).Hash();
  std::set<uint64_t> projections;
  for (const RuleConfig& config : configs) {
    uint64_t projection = ProjectConfig(config, span).Hash();
    EXPECT_NE(projection, default_projection);
    EXPECT_TRUE(projections.insert(projection).second)
        << "two candidates share a span projection";
  }
  // The projected space of this span is small enough that the attempt
  // budget must have pruned span-equivalent draws.
  EXPECT_GT(stats.span_duplicates_pruned + stats.repeated_draws, 0);
}

TEST(SpanProjectionDedup, DeterministicAcrossCalls) {
  BitVector256 span = BitVector256::FromIndices({90, 91, 224, 228});
  ConfigSearchOptions options;
  options.max_configs = 50;
  options.seed = 5;
  CandidateGenerationStats first_stats, second_stats;
  std::vector<RuleConfig> first = GenerateCandidateConfigs(span, options, &first_stats);
  std::vector<RuleConfig> second = GenerateCandidateConfigs(span, options, &second_stats);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) EXPECT_EQ(first[i].Hash(), second[i].Hash());
  EXPECT_EQ(first_stats.span_duplicates_pruned, second_stats.span_duplicates_pruned);
}

class CompileCachePipelineTest : public ::testing::Test {
 protected:
  CompileCachePipelineTest()
      : workload_(TestSpec()),
        optimizer_(&workload_.catalog()),
        simulator_(&workload_.catalog()) {}

  static PipelineOptions Options(int cache_mb, int threads) {
    PipelineOptions options;
    options.max_candidate_configs = 40;
    options.configs_to_execute = 6;
    options.compile_cache_mb = cache_mb;
    options.num_threads = threads;
    return options;
  }

  std::vector<Job> Jobs(int count, int day) {
    std::vector<Job> jobs;
    for (int t = 0; t < count; ++t) jobs.push_back(workload_.MakeJob(t, day));
    return jobs;
  }

  Workload workload_;
  Optimizer optimizer_;
  ExecutionSimulator simulator_;
};

TEST_F(CompileCachePipelineTest, CachedResultsBitIdenticalToUncachedAcrossWorkerCounts) {
  std::vector<Job> jobs = Jobs(6, /*day=*/1);
  SteeringPipeline uncached(&optimizer_, &simulator_, Options(/*cache_mb=*/0, /*threads=*/0));
  std::vector<JobAnalysis> baseline = uncached.RecompileJobs(jobs);
  ASSERT_EQ(uncached.compile_cache_stats().hits + uncached.compile_cache_stats().misses, 0);

  std::vector<uint64_t> baseline_digests;
  for (const JobAnalysis& analysis : baseline) {
    baseline_digests.push_back(AnalysisDigest(analysis));
  }

  for (int threads : {0, 1, 2, 8}) {
    SteeringPipeline cached(&optimizer_, &simulator_, Options(/*cache_mb=*/64, threads));
    // Two passes: cold (populates) and warm (hits must change nothing).
    for (int pass = 0; pass < 2; ++pass) {
      std::vector<JobAnalysis> result = cached.RecompileJobs(jobs);
      ASSERT_EQ(result.size(), baseline.size());
      for (size_t i = 0; i < result.size(); ++i) {
        EXPECT_EQ(AnalysisDigest(result[i]), baseline_digests[i])
            << "job " << i << " threads " << threads << " pass " << pass;
      }
    }
    CompileCacheStats stats = cached.compile_cache_stats();
    EXPECT_GT(stats.hits, 0) << "threads " << threads;
    // Recurring workload (second pass repeats every compile): at least the
    // ISSUE's 50% floor must hit.
    EXPECT_GE(stats.HitRate(), 0.5) << "threads " << threads;
  }
}

TEST_F(CompileCachePipelineTest, WarmStartedPipelineHitsAndStaysBitIdentical) {
  // The cross-process warm start: pipeline A analyzes a day and persists
  // its cache; a fresh pipeline B warms from the file and must (a) serve
  // its compiles as hits and (b) produce bit-identical analyses — the
  // cache can move work between days, never results.
  PersistDir dir;
  std::string path = dir.File("pipeline_cache.qcc");
  std::vector<Job> jobs = Jobs(5, /*day=*/3);

  SteeringPipeline writer(&optimizer_, &simulator_, Options(/*cache_mb=*/64, /*threads=*/0));
  std::vector<JobAnalysis> baseline = writer.RecompileJobs(jobs);
  ASSERT_TRUE(writer.SaveCompileCache(path, /*day=*/3, /*sync=*/false).ok());

  SteeringPipeline reader(&optimizer_, &simulator_, Options(/*cache_mb=*/64, /*threads=*/0));
  int64_t loaded = 0;
  ASSERT_TRUE(reader.WarmCompileCache(path, /*expected_day=*/3, &loaded).ok());
  EXPECT_GT(loaded, 0);
  EXPECT_EQ(reader.compile_cache_stats().warm_loaded, loaded);

  std::vector<JobAnalysis> warm = reader.RecompileJobs(jobs);
  ASSERT_EQ(warm.size(), baseline.size());
  for (size_t i = 0; i < warm.size(); ++i) {
    EXPECT_EQ(AnalysisDigest(warm[i]), AnalysisDigest(baseline[i])) << "job " << i;
  }
  CompileCacheStats stats = reader.compile_cache_stats();
  EXPECT_GT(stats.hits, 0) << "warm entries must serve as hits";
  EXPECT_GE(stats.HitRate(), 0.5) << "the recurring day should mostly hit warm entries";
}

TEST_F(CompileCachePipelineTest, SaveAndWarmRequireAnEnabledCache) {
  PersistDir dir;
  SteeringPipeline disabled(&optimizer_, &simulator_, Options(/*cache_mb=*/0, /*threads=*/0));
  Status save = disabled.SaveCompileCache(dir.File("never.qcc"), 1, false);
  ASSERT_FALSE(save.ok());
  EXPECT_EQ(save.code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(std::filesystem::exists(dir.File("never.qcc")));
  EXPECT_FALSE(disabled.WarmCompileCache(dir.File("never.qcc"), 1).ok());
}

TEST_F(CompileCachePipelineTest, RecurringInstancesAcrossDaysMissButSameDayHits) {
  SteeringPipeline pipeline(&optimizer_, &simulator_, Options(/*cache_mb=*/64, /*threads=*/0));
  Job job = workload_.MakeJob(2, 1);
  pipeline.Recompile(job);
  CompileCacheStats cold = pipeline.compile_cache_stats();
  pipeline.Recompile(job);
  CompileCacheStats warm = pipeline.compile_cache_stats();
  // The repeat compiles entirely from cache: inserts don't grow.
  EXPECT_GT(warm.hits, cold.hits);
  EXPECT_EQ(warm.inserts, cold.inserts);
  // A different day re-fingerprints (stats change daily): it must not hit
  // the day-1 entries' results.
  int64_t hits_before = warm.hits;
  pipeline.Recompile(workload_.MakeJob(2, 2));
  EXPECT_GT(pipeline.compile_cache_stats().misses, warm.misses);
  // Sanity: day-2 may legitimately share zero entries with day 1.
  EXPECT_GE(pipeline.compile_cache_stats().hits, hits_before);
}

TEST_F(CompileCachePipelineTest, SpanPrunedCounterAccumulates) {
  SteeringPipeline pipeline(&optimizer_, &simulator_, Options(/*cache_mb=*/64, /*threads=*/0));
  JobAnalysis analysis = pipeline.Recompile(workload_.MakeJob(0, 1));
  EXPECT_EQ(pipeline.span_duplicates_pruned(), analysis.span_duplicates_pruned);
  JobAnalysis analysis2 = pipeline.Recompile(workload_.MakeJob(1, 1));
  EXPECT_EQ(pipeline.span_duplicates_pruned(),
            analysis.span_duplicates_pruned + analysis2.span_duplicates_pruned);
}

TEST_F(CompileCachePipelineTest, CompileCachedMatchesDirectCompileAndHits) {
  SteeringPipeline pipeline(&optimizer_, &simulator_, Options(/*cache_mb=*/64, /*threads=*/0));
  Job job = workload_.MakeJob(3, 1);
  RuleConfig config = RuleConfig::Default();
  Result<CompiledPlan> direct = optimizer_.Compile(job, config);
  ASSERT_TRUE(direct.ok());

  Result<CompiledPlan> first = pipeline.CompileCached(job, config);
  Result<CompiledPlan> second = pipeline.CompileCached(job, config);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  for (const Result<CompiledPlan>* result : {&first, &second}) {
    EXPECT_EQ(PlanHash(result->value().root, false), PlanHash(direct.value().root, false));
    EXPECT_EQ(result->value().signature, direct.value().signature);
    EXPECT_EQ(DoubleBits(result->value().est_cost), DoubleBits(direct.value().est_cost));
  }
  EXPECT_GE(pipeline.compile_cache_stats().hits, 1);
}

TEST_F(CompileCachePipelineTest, SessionSeedMemoEquivalentToSessionless) {
  Job job = workload_.MakeJob(5, 1);
  CompileSession session;
  SpanResult span = ComputeJobSpan(optimizer_, job);
  std::vector<RuleConfig> configs = {RuleConfig::Default(), RuleConfig::AllEnabled()};
  ConfigSearchOptions search;
  search.max_configs = 10;
  search.seed = 9;
  for (RuleConfig& config : GenerateCandidateConfigs(span.span, search)) {
    configs.push_back(std::move(config));
  }
  for (const RuleConfig& config : configs) {
    Result<CompiledPlan> plain = optimizer_.Compile(job, config);
    Result<CompiledPlan> seeded = optimizer_.Compile(job, config, CompileControl{}, &session);
    ASSERT_EQ(plain.ok(), seeded.ok());
    if (!plain.ok()) continue;
    EXPECT_EQ(PlanHash(plain.value().root, false), PlanHash(seeded.value().root, false));
    EXPECT_EQ(plain.value().signature, seeded.value().signature);
    EXPECT_EQ(DoubleBits(plain.value().est_cost), DoubleBits(seeded.value().est_cost));
    EXPECT_EQ(plain.value().memo_groups, seeded.value().memo_groups);
    EXPECT_EQ(plain.value().memo_exprs, seeded.value().memo_exprs);
  }
  // The candidate configs share the default normalization projection, so
  // the session must have served seed-memo hits.
  EXPECT_GT(session.hits(), 0);
}

TEST_F(CompileCachePipelineTest, ConcurrentMixedAccessIsSafe) {
  // TSan target: batch recompiles, serving-path compiles, and stats readers
  // all hammer one pipeline's cache concurrently.
  SteeringPipeline pipeline(&optimizer_, &simulator_, Options(/*cache_mb=*/8, /*threads=*/2));
  std::vector<Job> jobs = Jobs(4, /*day=*/1);
  std::vector<std::thread> threads;
  threads.emplace_back([&] { pipeline.RecompileJobs(jobs); });
  threads.emplace_back([&] { pipeline.RecompileJobs(jobs); });
  threads.emplace_back([&] {
    for (int i = 0; i < 40; ++i) {
      // qsteer-lint: allow(unchecked-status) stress thread; only the cache traffic matters
      (void)pipeline.CompileCached(jobs[static_cast<size_t>(i) % jobs.size()],
                                   RuleConfig::Default());
    }
  });
  threads.emplace_back([&] {
    for (int i = 0; i < 200; ++i) {
      CompileCacheStats stats = pipeline.compile_cache_stats();
      ASSERT_GE(stats.bytes, 0);
    }
  });
  for (std::thread& thread : threads) thread.join();
  CompileCacheStats stats = pipeline.compile_cache_stats();
  EXPECT_GT(stats.hits + stats.misses, 0);
}

TEST(RecommendFast, MatchesLockedRecommendAndCountsServes) {
  DurableStoreOptions options;  // ephemeral
  options.recommender.validation_runs = 0;  // adopt immediately
  DurableRecommenderStore store(options);
  ASSERT_TRUE(store.Open().ok());

  RuleSignature known = BitVector256::FromIndices({1, 5, 90});
  RuleSignature unknown = BitVector256::FromIndices({2, 6, 91});
  SteeringRecommender::CandidateObservation observation;
  observation.signature = known;
  observation.config = RuleConfig::AllEnabled();
  observation.improvement_pct = -25.0;
  ASSERT_TRUE(store.LearnCandidate(observation));

  // Known adopted group: fast path must serve the stored config lock-free.
  SteeringRecommender::Recommendation fast = store.RecommendFast(known);
  EXPECT_FALSE(fast.is_default);
  EXPECT_EQ(fast.config.Hash(), RuleConfig::AllEnabled().Hash());
  EXPECT_EQ(fast.expected_improvement_pct, -25.0);
  // Unknown group: pure default, also lock-free.
  EXPECT_TRUE(store.RecommendFast(unknown).is_default);
  EXPECT_EQ(store.fast_recommends(), 2);
  EXPECT_EQ(store.locked_recommends(), 0);

  // Trip the breaker open: the cooldown tick must route to the locked,
  // journaled path and behave exactly like Recommend().
  store.ObserveOutcome(known, 50.0);
  store.ObserveOutcome(known, 50.0);
  SteeringRecommender::Recommendation open_rec = store.RecommendFast(known);
  EXPECT_TRUE(open_rec.is_default);
  EXPECT_EQ(store.locked_recommends(), 1);
  EXPECT_EQ(store.applied_seq(), 4u);  // learn + 2 outcomes + 1 journaled tick
}

TEST(RecommendFast, SnapshotTracksMutationsImmediately) {
  DurableStoreOptions options;
  options.recommender.validation_runs = 1;
  DurableRecommenderStore store(options);
  ASSERT_TRUE(store.Open().ok());

  RuleSignature sig = BitVector256::FromIndices({3, 7});
  SteeringRecommender::CandidateObservation observation;
  observation.signature = sig;
  observation.config = RuleConfig::AllEnabled();
  observation.improvement_pct = -30.0;
  ASSERT_TRUE(store.LearnCandidate(observation));
  // Pending validation: not yet adopted, fast path serves the default.
  EXPECT_TRUE(store.RecommendFast(sig).is_default);
  store.ObserveValidation(sig, -20.0);
  // Validated: the republished view serves it without any locked call.
  int64_t locked_before = store.locked_recommends();
  EXPECT_FALSE(store.RecommendFast(sig).is_default);
  EXPECT_EQ(store.locked_recommends(), locked_before);
}

}  // namespace
}  // namespace qsteer
