// Physical-property satisfaction matrix: the contract behind enforcer
// placement.
#include "optimizer/properties.h"

#include <gtest/gtest.h>

namespace qsteer {
namespace {

PhysProp Random(int dop) {
  PhysProp p;
  p.scheme = PartScheme::kRandom;
  p.dop = dop;
  return p;
}

TEST(PhysProp, AnyAcceptsEverything) {
  PhysProp any = PhysProp::Any();
  EXPECT_TRUE(any.SatisfiedBy(Random(8)));
  EXPECT_TRUE(any.SatisfiedBy(PhysProp::Hash({1}, 4)));
  EXPECT_TRUE(any.SatisfiedBy(PhysProp::Singleton()));
  EXPECT_TRUE(any.SatisfiedBy(PhysProp::Broadcast(4)));
}

TEST(PhysProp, HashRequiresMatchingKeysAndDop) {
  PhysProp req = PhysProp::Hash({1, 2}, 8);
  EXPECT_TRUE(req.SatisfiedBy(PhysProp::Hash({1, 2}, 8)));
  EXPECT_FALSE(req.SatisfiedBy(PhysProp::Hash({1, 2}, 16)));  // dop mismatch
  EXPECT_FALSE(req.SatisfiedBy(PhysProp::Hash({2, 1}, 8)));   // key order matters
  EXPECT_FALSE(req.SatisfiedBy(PhysProp::Hash({1}, 8)));
  EXPECT_FALSE(req.SatisfiedBy(Random(8)));
  // Singleton data trivially satisfies any hash partitioning.
  EXPECT_TRUE(req.SatisfiedBy(PhysProp::Singleton()));
  // dop 0 on the request side = any partition count.
  PhysProp loose = PhysProp::Hash({1, 2}, 0);
  EXPECT_TRUE(loose.SatisfiedBy(PhysProp::Hash({1, 2}, 33)));
}

TEST(PhysProp, SingletonOnlyFromSingleton) {
  PhysProp req = PhysProp::Singleton();
  EXPECT_TRUE(req.SatisfiedBy(PhysProp::Singleton()));
  EXPECT_FALSE(req.SatisfiedBy(Random(1)));
  EXPECT_FALSE(req.SatisfiedBy(PhysProp::Hash({0}, 1)));
}

TEST(PhysProp, BroadcastMatching) {
  PhysProp req = PhysProp::Broadcast(8);
  EXPECT_TRUE(req.SatisfiedBy(PhysProp::Broadcast(8)));
  EXPECT_FALSE(req.SatisfiedBy(PhysProp::Broadcast(4)));
  EXPECT_FALSE(req.SatisfiedBy(PhysProp::Singleton()));
  PhysProp any_dop = PhysProp::Broadcast(0);
  EXPECT_TRUE(any_dop.SatisfiedBy(PhysProp::Broadcast(17)));
}

TEST(PhysProp, SortPrefixSemantics) {
  PhysProp req;
  req.sort_keys = {3, 4};
  PhysProp exact;
  exact.sort_keys = {3, 4};
  PhysProp longer;
  longer.sort_keys = {3, 4, 5};
  PhysProp shorter;
  shorter.sort_keys = {3};
  PhysProp wrong;
  wrong.sort_keys = {4, 3};
  EXPECT_TRUE(req.SortSatisfiedBy(exact));
  EXPECT_TRUE(req.SortSatisfiedBy(longer));
  EXPECT_FALSE(req.SortSatisfiedBy(shorter));
  EXPECT_FALSE(req.SortSatisfiedBy(wrong));
  // Unsorted request satisfied by anything.
  PhysProp none;
  EXPECT_TRUE(none.SortSatisfiedBy(wrong));
}

TEST(PhysProp, SatisfactionIncludesSort) {
  PhysProp req = PhysProp::Hash({1}, 4);
  req.sort_keys = {1};
  PhysProp delivered = PhysProp::Hash({1}, 4);
  EXPECT_FALSE(req.SatisfiedBy(delivered));
  delivered.sort_keys = {1};
  EXPECT_TRUE(req.SatisfiedBy(delivered));
}

TEST(PhysProp, KeyIsInjectiveOnDistinctRequests) {
  std::vector<PhysProp> props = {
      PhysProp::Any(),         PhysProp::Singleton(),       PhysProp::Hash({1}, 4),
      PhysProp::Hash({1}, 8),  PhysProp::Hash({2}, 4),     PhysProp::Hash({1, 2}, 4),
      PhysProp::Broadcast(4),  PhysProp::Broadcast(8),     Random(4),
  };
  PhysProp sorted = PhysProp::Hash({1}, 4);
  sorted.sort_keys = {1};
  props.push_back(sorted);
  std::set<uint64_t> keys;
  for (const PhysProp& p : props) keys.insert(p.Key());
  EXPECT_EQ(keys.size(), props.size());
}

TEST(PhysProp, ToStringReadable) {
  PhysProp p = PhysProp::Hash({1, 2}, 16);
  p.sort_keys = {1};
  EXPECT_EQ(p.ToString(), "hash(c1,c2)@16 sorted(c1)");
  EXPECT_EQ(PhysProp::Singleton().ToString(), "singleton@1");
  EXPECT_EQ(PhysProp::Any().ToString(), "any");
}

}  // namespace
}  // namespace qsteer
