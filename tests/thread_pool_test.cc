// Unit tests of the task-scheduling layer (common/thread_pool.h): result
// ordering, exception propagation, serial fallbacks, nesting, cancellation,
// and the counters surfaced through ThreadPoolStats.
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace qsteer {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> counter{0};
  Latch done(32);
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&] {
      counter.fetch_add(1);
      done.CountDown();
    });
  }
  done.Wait();
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1);
}

TEST(ThreadPool, StatsCountTasks) {
  ThreadPool pool(2);
  Latch done(10);
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&] { done.CountDown(); });
  }
  done.Wait();
  ThreadPoolStats stats = pool.stats();
  EXPECT_EQ(stats.num_threads, 2);
  EXPECT_EQ(stats.tasks_submitted, 10);
  // All tasks were claimed (tasks_run may lag CountDown by an instant only
  // for the final bookkeeping, which happens before the queue empties for
  // the claiming worker; drain by re-reading until converged).
  while (pool.stats().tasks_run < 10) {
  }
  EXPECT_EQ(pool.stats().tasks_run, 10);
  EXPECT_GE(stats.max_queue_depth, 1);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(257);
  for (auto& v : visits) v.store(0);
  ParallelFor(&pool, 257, [&](int64_t i) { visits[static_cast<size_t>(i)].fetch_add(1); });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelMap, DeterministicResultOrdering) {
  ThreadPool pool(8);
  std::vector<int> out =
      ParallelMap<int>(&pool, 1000, [](int64_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 1000u);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i * i);
}

TEST(ParallelFor, NullPoolFallsBackToSerial) {
  // The num_threads = 0 pipeline mode: no pool at all, same semantics.
  std::vector<int> order;
  ParallelFor(nullptr, 5, [&](int64_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, SingleWorkerPoolRunsInline) {
  ThreadPool pool(1);
  std::vector<int> order;
  // Unsynchronized push_back is safe: a 1-thread pool runs the loop inline.
  ParallelFor(&pool, 5, [&](int64_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      ParallelFor(&pool, 100,
                  [](int64_t i) {
                    if (i == 37) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
  // The pool survives and remains usable.
  std::atomic<int> ran{0};
  ParallelFor(&pool, 8, [&](int64_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8);
}

TEST(ParallelFor, ExceptionSkipsRemainingIndices) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  try {
    ParallelFor(&pool, 100000, [&](int64_t i) {
      if (i == 0) throw std::runtime_error("early");
      ran.fetch_add(1);
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error&) {
  }
  // Not all 100k iterations ran: the loop stopped claiming after the error.
  EXPECT_LT(ran.load(), 100000);
}

TEST(ParallelFor, CancellationStopsClaimingNewIndices) {
  ThreadPool pool(2);
  CancellationToken cancel;
  std::atomic<int> ran{0};
  ParallelFor(&pool, 100000, [&](int64_t i) {
    ran.fetch_add(1);
    if (i == 10) cancel.RequestCancel();
  });
  // Without the token the loop ignores cancellation.
  EXPECT_EQ(ran.load(), 100000);

  ran.store(0);
  CancellationToken cancel2;
  ParallelFor(
      &pool, 100000,
      [&](int64_t i) {
        ran.fetch_add(1);
        if (i >= 10) cancel2.RequestCancel();
      },
      &cancel2);
  EXPECT_LT(ran.load(), 100000);  // stopped early, no exception
}

TEST(ParallelFor, NestedCallOnSamePoolRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  ParallelFor(&pool, 4, [&](int64_t) {
    // A nested loop on the same pool must not block a worker on work that
    // only workers of this pool can execute.
    ParallelFor(&pool, 16, [&](int64_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 4 * 16);
}

TEST(ParallelMap, CancelledSlotsStayDefault) {
  ThreadPool pool(1);  // inline execution makes the cutoff deterministic
  CancellationToken cancel;
  std::vector<int> out = ParallelMap<int>(
      &pool, 10,
      [&](int64_t i) {
        if (i == 4) cancel.RequestCancel();
        return static_cast<int>(i) + 1;
      },
      &cancel);
  ASSERT_EQ(out.size(), 10u);
  for (int i = 0; i <= 4; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i + 1);
  for (int i = 5; i < 10; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], 0);
}

TEST(Latch, WaitsForAllCountDowns) {
  ThreadPool pool(3);
  Latch latch(3);
  std::atomic<int> before{0};
  for (int i = 0; i < 3; ++i) {
    pool.Submit([&] {
      before.fetch_add(1);
      latch.CountDown();
    });
  }
  latch.Wait();
  EXPECT_EQ(before.load(), 3);
}

}  // namespace
}  // namespace qsteer
