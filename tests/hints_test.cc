// Hint-string parsing/rendering (the §3.2/§3.3 deployment surface) and the
// EXPLAIN facility.
#include "core/hints.h"

#include <gtest/gtest.h>

#include "optimizer/explain.h"
#include "optimizer/rule_registry.h"
#include "workload/generator.h"

namespace qsteer {
namespace {

TEST(Hints, ParseSimpleClauses) {
  Result<RuleConfig> config =
      ParseHintString("ENABLE(CorrelatedJoinOnUnionAll2);DISABLE(HashJoinImpl1,JoinCommute)");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_TRUE(config.value().IsEnabled(rules::kCorrelatedJoinOnUnionAll2));
  EXPECT_FALSE(config.value().IsEnabled(rules::kHashJoinImpl1));
  EXPECT_FALSE(config.value().IsEnabled(rules::kJoinCommute));
  // Everything else stays at the default.
  EXPECT_TRUE(config.value().IsEnabled(rules::kMergeJoinImpl));
  EXPECT_FALSE(config.value().IsEnabled(rules::kGroupbyOnJoin1));
}

TEST(Hints, WhitespaceInsensitive) {
  Result<RuleConfig> config =
      ParseHintString("  DISABLE ( HashJoinImpl1 ,  MergeJoinImpl )  ;  "
                      "ENABLE( GroupbyOnJoin1 ) ");
  ASSERT_TRUE(config.ok());
  EXPECT_FALSE(config.value().IsEnabled(rules::kHashJoinImpl1));
  EXPECT_FALSE(config.value().IsEnabled(rules::kMergeJoinImpl));
  EXPECT_TRUE(config.value().IsEnabled(rules::kGroupbyOnJoin1));
}

TEST(Hints, EmptyStringIsDefault) {
  Result<RuleConfig> config = ParseHintString("");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config.value(), RuleConfig::Default());
}

TEST(Hints, RejectsUnknownRulesAndRequiredDisables) {
  EXPECT_FALSE(ParseHintString("DISABLE(NoSuchRule)").ok());
  EXPECT_FALSE(ParseHintString("DISABLE(GetToRange)").ok());
  EXPECT_FALSE(ParseHintString("FROBNICATE(HashJoinImpl1)").ok());
  EXPECT_FALSE(ParseHintString("DISABLE(HashJoinImpl1").ok());
  EXPECT_FALSE(ParseHintString("DISABLE()").ok());
  EXPECT_FALSE(ParseHintString("DISABLE(HashJoinImpl1) ENABLE(JoinCommute)").ok());
}

TEST(Hints, RoundTripArbitraryConfig) {
  RuleConfig config = RuleConfig::WithHints(
      {rules::kCorrelatedJoinOnUnionAll1, rules::kGroupbyOnJoin2},
      {rules::kHashJoinImpl2, rules::kUnionAllToVirtualDataset, rules::kCollapseSelects});
  std::string text = ToHintString(config);
  Result<RuleConfig> parsed = ParseHintString(text);
  ASSERT_TRUE(parsed.ok()) << text;
  EXPECT_EQ(parsed.value(), config);
}

TEST(Hints, DefaultRendersEmpty) {
  EXPECT_EQ(ToHintString(RuleConfig::Default()), "");
}

TEST(Explain, RendersPlanWithBothViews) {
  WorkloadSpec spec;
  spec.name = "H";
  spec.seed = 99;
  spec.num_templates = 6;
  spec.num_stream_sets = 16;
  Workload workload(spec);
  Optimizer optimizer(&workload.catalog());
  Job job = workload.MakeJob(0, 1);
  Result<CompiledPlan> plan = optimizer.Compile(job, RuleConfig::Default());
  ASSERT_TRUE(plan.ok());
  std::string text = ExplainPlan(workload.catalog(), job, plan.value());
  EXPECT_NE(text.find("estimated cost:"), std::string::npos);
  EXPECT_NE(text.find("est_rows="), std::string::npos);
  EXPECT_NE(text.find("true_rows="), std::string::npos);
  EXPECT_NE(text.find("rule signature"), std::string::npos);
  EXPECT_NE(text.find("OutputWriter"), std::string::npos);

  ExplainOptions options;
  options.show_true_rows = false;
  options.show_signature = false;
  std::string terse = ExplainPlan(workload.catalog(), job, plan.value(), options);
  EXPECT_EQ(terse.find("true_rows="), std::string::npos);
  EXPECT_EQ(terse.find("rule signature"), std::string::npos);
}

}  // namespace
}  // namespace qsteer
