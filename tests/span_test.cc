// Job span (Algorithm 1) tests, including the paper's §5.1 limitation
// scenario of hidden alternative rules behind dependencies.
#include "core/span.h"

#include <gtest/gtest.h>

#include "workload/generator.h"

namespace qsteer {
namespace {

class SpanTest : public ::testing::Test {
 protected:
  SpanTest() : workload_(Spec()) {}

  static WorkloadSpec Spec() {
    WorkloadSpec spec;
    spec.name = "S";
    spec.seed = 77;
    spec.num_templates = 30;
    spec.num_stream_sets = 20;
    return spec;
  }

  Workload workload_;
};

TEST_F(SpanTest, SpanContainsDefaultSignatureNonRequiredRules) {
  Optimizer optimizer(&workload_.catalog());
  for (int t = 0; t < 12; ++t) {
    Job job = workload_.MakeJob(t, 1);
    SpanResult span = ComputeJobSpan(optimizer, job);
    // The all-enabled first iteration's on-rules are in the span by
    // construction; the default signature's non-required rules need not all
    // be (default disables off-by-default rules), but the all-enabled
    // signature's are.
    Result<CompiledPlan> plan = optimizer.Compile(job, RuleConfig::AllEnabled());
    ASSERT_TRUE(plan.ok());
    for (int id : plan.value().signature.ToIndices()) {
      if (CategoryOfRule(id) == RuleCategory::kRequired) continue;
      EXPECT_TRUE(span.span.Test(id))
          << "rule " << id << " used by all-enabled compile but missing from span (t" << t
          << ")";
    }
  }
}

TEST_F(SpanTest, SpanExcludesRequiredRules) {
  Optimizer optimizer(&workload_.catalog());
  for (int t = 0; t < 12; ++t) {
    SpanResult span = ComputeJobSpan(optimizer, workload_.MakeJob(t, 1));
    for (int id : span.span.ToIndices()) {
      EXPECT_NE(CategoryOfRule(id), RuleCategory::kRequired) << id;
    }
    EXPECT_EQ(span.span.Count(),
              span.off_by_default + span.on_by_default + span.implementation);
  }
}

TEST_F(SpanTest, SpanIsSmallRelativeToRuleCatalog) {
  // Paper Fig. 3: on average up to ~20 of the 219 non-required rules.
  Optimizer optimizer(&workload_.catalog());
  double total = 0.0;
  for (int t = 0; t < 20; ++t) {
    SpanResult span = ComputeJobSpan(optimizer, workload_.MakeJob(t, 1));
    EXPECT_GE(span.span.Count(), 2) << t;
    EXPECT_LE(span.span.Count(), 45) << t;
    total += span.span.Count();
  }
  EXPECT_LE(total / 20.0, 30.0);
}

TEST_F(SpanTest, IterativeDisablingFindsAlternativeImplementations) {
  // Disabling the hash-join implementations used in iteration 1 must expose
  // alternatives (merge/broadcast joins) in later iterations — the essence
  // of Algorithm 1.
  Optimizer optimizer(&workload_.catalog());
  bool found_multi_impl_span = false;
  for (int t = 0; t < 20 && !found_multi_impl_span; ++t) {
    Job job = workload_.MakeJob(t, 1);
    SpanResult span = ComputeJobSpan(optimizer, job);
    if (span.implementation >= 3 && span.iterations >= 2) found_multi_impl_span = true;
  }
  EXPECT_TRUE(found_multi_impl_span);
}

TEST_F(SpanTest, LoopTerminatesViaCompileFailureOrFixpoint) {
  Optimizer optimizer(&workload_.catalog());
  for (int t = 0; t < 12; ++t) {
    SpanResult span = ComputeJobSpan(optimizer, workload_.MakeJob(t, 1));
    EXPECT_LE(span.iterations, 24);
    // Jobs with joins/aggs eventually exhaust their implementations: the
    // loop must observe at least one compile failure or reach a fixpoint.
    EXPECT_TRUE(span.ended_on_compile_failure || span.iterations >= 1);
  }
}

TEST_F(SpanTest, SpanIsDeterministic) {
  Optimizer optimizer(&workload_.catalog());
  Job job = workload_.MakeJob(4, 2);
  SpanResult a = ComputeJobSpan(optimizer, job);
  SpanResult b = ComputeJobSpan(optimizer, job);
  EXPECT_EQ(a.span, b.span);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST_F(SpanTest, KnownLimitationDependentRuleCanBeMissed) {
  // Paper §5.1: rules B and C alternative under a dependency on A may hide C.
  // Our registry exhibits this with e.g. GraceHashJoinImpl (an alternative to
  // HashJoinImpl1 for multi-key joins): once HashJoinImpl1 is in the span
  // and disabled together with the other observed rules, the grace variant
  // may or may not surface. The documented guarantee is only one-sided:
  // everything in the span genuinely affects plans. Verify the one-sided
  // guarantee by toggling a span rule and observing a plan change for at
  // least one job.
  Optimizer optimizer(&workload_.catalog());
  int observed_changes = 0;
  for (int t = 0; t < 10; ++t) {
    Job job = workload_.MakeJob(t, 1);
    SpanResult span = ComputeJobSpan(optimizer, job);
    Result<CompiledPlan> base = optimizer.Compile(job, RuleConfig::AllEnabled());
    ASSERT_TRUE(base.ok());
    for (int id : span.span.ToIndices()) {
      RuleConfig config = RuleConfig::AllEnabled();
      config.Disable(id);
      Result<CompiledPlan> alt = optimizer.Compile(job, config);
      if (!alt.ok()) {
        ++observed_changes;  // the rule was load-bearing
        continue;
      }
      if (PlanHash(alt.value().root, false) != PlanHash(base.value().root, false) ||
          alt.value().signature != base.value().signature) {
        ++observed_changes;
      }
    }
  }
  EXPECT_GT(observed_changes, 10);
}

}  // namespace
}  // namespace qsteer
