// Unit tests of the SteeringRecommender guardrails: the validation gate
// (N clean re-runs before a candidate serves), the per-group circuit
// breaker (closed -> open -> half-open -> closed, with automatic rollback
// to the default while open), retirement after repeated rollbacks, and
// persistence of the whole guardrail state across save/load.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/hints.h"
#include "core/recommender.h"

namespace qsteer {
namespace {

RuleSignature Sig(int bit) {
  RuleSignature s;
  s.Set(bit);
  return s;
}

RuleConfig AltConfig(int n) {
  // The n-th distinct single-rule deviation from the default configuration.
  // Toggling an arbitrary id directly can be a no-op (required rules cannot
  // be disabled), so index into the rules whose toggle actually sticks.
  RuleConfig def = RuleConfig::Default();
  std::vector<int> toggleable;
  for (int id = 0; id < 256; ++id) {
    RuleConfig config = def;
    if (config.IsEnabled(id)) {
      config.Disable(id);
    } else {
      config.Enable(id);
    }
    if (config != def) toggleable.push_back(id);
  }
  RuleConfig config = def;
  int id = toggleable[static_cast<size_t>(n) % toggleable.size()];
  if (config.IsEnabled(id)) {
    config.Disable(id);
  } else {
    config.Enable(id);
  }
  return config;
}

JobAnalysis MakeAnalysis(const RuleSignature& sig, double default_runtime,
                         double best_runtime, const RuleConfig& config) {
  JobAnalysis analysis;
  analysis.default_plan.root = PlanNode::Make(Operator{});
  analysis.default_plan.signature = sig;
  analysis.default_metrics.runtime = default_runtime;
  ConfigOutcome outcome;
  outcome.config = config;
  outcome.executed = true;
  outcome.metrics.runtime = best_runtime;
  analysis.executed.push_back(std::move(outcome));
  return analysis;
}

RecommenderOptions FastOptions() {
  RecommenderOptions options;
  options.validation_runs = 2;
  options.breaker_open_after = 2;
  options.breaker_cooldown = 3;
  options.breaker_probe_successes = 2;
  options.max_rollbacks = 2;
  return options;
}

TEST(Recommender, ValidationGateBlocksUntilCleanRuns) {
  SteeringRecommender rec(FastOptions());
  RuleSignature sig = Sig(7);
  ASSERT_TRUE(rec.LearnFromAnalysis(MakeAnalysis(sig, 100.0, 70.0, AltConfig(3))));
  EXPECT_EQ(rec.num_pending_validation(), 1);
  EXPECT_EQ(rec.num_serving(), 0);
  EXPECT_TRUE(rec.Recommend(sig).is_default);

  std::vector<SteeringRecommender::ValidationRequest> pending = rec.PendingValidations();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].successes, 0);
  EXPECT_EQ(pending[0].required, 2);
  EXPECT_TRUE(pending[0].config == AltConfig(3));

  rec.ObserveValidation(sig, -25.0);
  EXPECT_TRUE(rec.Recommend(sig).is_default);  // one clean run is not enough
  EXPECT_EQ(rec.PendingValidations()[0].successes, 1);

  rec.ObserveValidation(sig, -20.0);
  SteeringRecommender::Recommendation served = rec.Recommend(sig);
  EXPECT_FALSE(served.is_default);
  EXPECT_FALSE(served.probing);
  EXPECT_TRUE(served.config == AltConfig(3));
  EXPECT_EQ(rec.num_serving(), 1);
  EXPECT_EQ(rec.num_pending_validation(), 0);
}

TEST(Recommender, ValidationRegressionRejectsCandidateOutright) {
  SteeringRecommender rec(FastOptions());
  RuleSignature sig = Sig(9);
  ASSERT_TRUE(rec.LearnFromAnalysis(MakeAnalysis(sig, 100.0, 60.0, AltConfig(5))));
  rec.ObserveValidation(sig, 12.0);  // regressed under validation
  EXPECT_EQ(rec.num_retired(), 1);
  EXPECT_EQ(rec.num_pending_validation(), 0);
  EXPECT_TRUE(rec.Recommend(sig).is_default);
  // Retired groups refuse new candidates too.
  EXPECT_FALSE(rec.LearnFromAnalysis(MakeAnalysis(sig, 100.0, 50.0, AltConfig(6))));
}

TEST(Recommender, ZeroValidationRunsAdoptsImmediately) {
  RecommenderOptions options = FastOptions();
  options.validation_runs = 0;
  SteeringRecommender rec(options);
  RuleSignature sig = Sig(11);
  ASSERT_TRUE(rec.LearnFromAnalysis(MakeAnalysis(sig, 100.0, 70.0, AltConfig(2))));
  EXPECT_FALSE(rec.Recommend(sig).is_default);
}

TEST(Recommender, BetterCandidateRestartsValidation) {
  SteeringRecommender rec(FastOptions());
  RuleSignature sig = Sig(13);
  ASSERT_TRUE(rec.LearnFromAnalysis(MakeAnalysis(sig, 100.0, 80.0, AltConfig(4))));
  rec.ObserveValidation(sig, -18.0);
  rec.ObserveValidation(sig, -18.0);
  ASSERT_FALSE(rec.Recommend(sig).is_default);
  // A clearly better configuration replaces the old one but must re-earn
  // its validation runs before serving.
  ASSERT_TRUE(rec.LearnFromAnalysis(MakeAnalysis(sig, 100.0, 50.0, AltConfig(8))));
  EXPECT_TRUE(rec.Recommend(sig).is_default);
  EXPECT_EQ(rec.num_pending_validation(), 1);
  EXPECT_TRUE(rec.PendingValidations()[0].config == AltConfig(8));
}

// Drives a group to adoption: learn + the required validation runs.
void Adopt(SteeringRecommender* rec, const RuleSignature& sig, const RuleConfig& config) {
  ASSERT_TRUE(rec->LearnFromAnalysis(MakeAnalysis(sig, 100.0, 70.0, config)));
  rec->ObserveValidation(sig, -25.0);
  rec->ObserveValidation(sig, -25.0);
  ASSERT_FALSE(rec->Recommend(sig).is_default);
}

TEST(Recommender, BreakerTripsRollsBackAndRecloses) {
  SteeringRecommender rec(FastOptions());
  RuleSignature sig = Sig(17);
  Adopt(&rec, sig, AltConfig(1));

  // Two consecutive regressions trip the breaker: automatic rollback.
  rec.ObserveOutcome(sig, 20.0);
  EXPECT_FALSE(rec.Recommend(sig).is_default);  // one failure is tolerated
  rec.ObserveOutcome(sig, 20.0);
  EXPECT_EQ(rec.num_rollbacks(), 1);
  EXPECT_EQ(rec.num_open(), 1);
  EXPECT_EQ(rec.num_serving(), 0);

  // While open every lookup serves the default; the cooldown clock runs.
  EXPECT_TRUE(rec.Recommend(sig).is_default);
  EXPECT_TRUE(rec.Recommend(sig).is_default);
  EXPECT_TRUE(rec.Recommend(sig).is_default);  // cooldown of 3 exhausted

  // Half-open: the next lookup is a probe.
  SteeringRecommender::Recommendation probe = rec.Recommend(sig);
  EXPECT_FALSE(probe.is_default);
  EXPECT_TRUE(probe.probing);

  // Enough clean probes close the breaker again.
  rec.ObserveOutcome(sig, -10.0);
  rec.ObserveOutcome(sig, -10.0);
  SteeringRecommender::Recommendation closed = rec.Recommend(sig);
  EXPECT_FALSE(closed.is_default);
  EXPECT_FALSE(closed.probing);
  EXPECT_EQ(rec.num_serving(), 1);
}

TEST(Recommender, ProbeRegressionTripsAgainAndRetires) {
  SteeringRecommender rec(FastOptions());
  RuleSignature sig = Sig(19);
  Adopt(&rec, sig, AltConfig(1));
  rec.ObserveOutcome(sig, 20.0);
  rec.ObserveOutcome(sig, 20.0);  // first rollback
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(rec.Recommend(sig).is_default);
  EXPECT_TRUE(rec.Recommend(sig).probing);
  rec.ObserveOutcome(sig, 20.0);  // probe regresses: second rollback
  EXPECT_EQ(rec.num_rollbacks(), 2);
  // max_rollbacks = 2: the group is retired permanently.
  EXPECT_EQ(rec.num_retired(), 1);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(rec.Recommend(sig).is_default);
}

TEST(Recommender, NonConsecutiveRegressionsDoNotTrip) {
  SteeringRecommender rec(FastOptions());
  RuleSignature sig = Sig(23);
  Adopt(&rec, sig, AltConfig(1));
  rec.ObserveOutcome(sig, 20.0);
  rec.ObserveOutcome(sig, -5.0);  // success resets the consecutive counter
  rec.ObserveOutcome(sig, 20.0);
  rec.ObserveOutcome(sig, -5.0);
  EXPECT_EQ(rec.num_rollbacks(), 0);
  EXPECT_FALSE(rec.Recommend(sig).is_default);
}

TEST(Recommender, ImprovementBarFiltersWeakCandidates) {
  SteeringRecommender rec(FastOptions());  // min_improvement_pct = -10
  EXPECT_FALSE(rec.LearnFromAnalysis(MakeAnalysis(Sig(2), 100.0, 95.0, AltConfig(1))));
  EXPECT_EQ(rec.num_groups(), 0);
  // Analyses whose default run failed are not a trustworthy baseline.
  JobAnalysis failed = MakeAnalysis(Sig(2), 100.0, 50.0, AltConfig(1));
  failed.default_metrics.failed = true;
  EXPECT_FALSE(rec.LearnFromAnalysis(failed));
}

std::vector<std::string> SortedLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  std::sort(lines.begin(), lines.end());
  return lines;
}

TEST(Recommender, SaveLoadRoundTripsFullGuardrailState) {
  SteeringRecommender rec(FastOptions());

  // One group mid-validation.
  ASSERT_TRUE(rec.LearnFromAnalysis(MakeAnalysis(Sig(1), 100.0, 70.0, AltConfig(1))));
  rec.ObserveValidation(Sig(1), -20.0);

  // One group serving (validated, breaker closed).
  Adopt(&rec, Sig(2), AltConfig(2));

  // One group rolled back (breaker open, mid-cooldown, one rollback).
  Adopt(&rec, Sig(3), AltConfig(3));
  rec.ObserveOutcome(Sig(3), 20.0);
  rec.ObserveOutcome(Sig(3), 20.0);
  ASSERT_TRUE(rec.Recommend(Sig(3)).is_default);  // cooldown 3 -> 2

  // One group retired by a validation regression (regression count kept).
  ASSERT_TRUE(rec.LearnFromAnalysis(MakeAnalysis(Sig(4), 100.0, 60.0, AltConfig(4))));
  rec.ObserveValidation(Sig(4), 30.0);

  std::string path1 = ::testing::TempDir() + "/guardrail_store_1.txt";
  std::string path2 = ::testing::TempDir() + "/guardrail_store_2.txt";
  ASSERT_TRUE(rec.SaveToFile(path1).ok());

  SteeringRecommender loaded(FastOptions());
  ASSERT_TRUE(loaded.LoadFromFile(path1).ok());
  EXPECT_EQ(loaded.num_groups(), rec.num_groups());
  EXPECT_EQ(loaded.num_serving(), rec.num_serving());
  EXPECT_EQ(loaded.num_pending_validation(), rec.num_pending_validation());
  EXPECT_EQ(loaded.num_retired(), rec.num_retired());
  EXPECT_EQ(loaded.num_rollbacks(), rec.num_rollbacks());
  EXPECT_EQ(loaded.num_open(), rec.num_open());

  // Save(Load(Save(x))) is the same store: every field survived (entry
  // order is a hash-map artifact, so compare as line sets).
  ASSERT_TRUE(loaded.SaveToFile(path2).ok());
  EXPECT_EQ(SortedLines(path1), SortedLines(path2));

  // Behavior also survived: the open group continues its cooldown where the
  // original left off (2 more default-served lookups, then a probe).
  EXPECT_TRUE(loaded.Recommend(Sig(3)).is_default);
  EXPECT_TRUE(loaded.Recommend(Sig(3)).is_default);
  EXPECT_TRUE(loaded.Recommend(Sig(3)).probing);
  // The mid-validation group still needs exactly one more clean run.
  EXPECT_TRUE(loaded.Recommend(Sig(1)).is_default);
  loaded.ObserveValidation(Sig(1), -20.0);
  EXPECT_FALSE(loaded.Recommend(Sig(1)).is_default);
}

TEST(Recommender, LegacyV1StoreLoadsAdoptedAndClosed) {
  // v1 files predate the guardrails: no header, five fixed fields + hints.
  std::string path = ::testing::TempDir() + "/legacy_store.txt";
  std::string hints = ToHintString(AltConfig(5));
  {
    std::ofstream out(path);
    out << Sig(6).ToHexString() << " -22.5 3 1 0 " << hints << "\n";
    out << Sig(7).ToHexString() << " -40 1 0 1 " << ToHintString(AltConfig(9)) << "\n";
  }
  SteeringRecommender rec(FastOptions());
  ASSERT_TRUE(rec.LoadFromFile(path).ok());
  EXPECT_EQ(rec.num_groups(), 2);
  EXPECT_EQ(rec.num_retired(), 1);
  EXPECT_EQ(rec.num_pending_validation(), 0);
  // Legacy entries were already serving: adopted, breaker closed.
  SteeringRecommender::Recommendation served = rec.Recommend(Sig(6));
  ASSERT_FALSE(served.is_default);
  EXPECT_TRUE(served.config == AltConfig(5));
  EXPECT_EQ(served.support, 3);
  EXPECT_DOUBLE_EQ(served.expected_improvement_pct, -22.5);
  // The retired legacy entry stays retired.
  EXPECT_TRUE(rec.Recommend(Sig(7)).is_default);
}

TEST(Recommender, LoadRejectsMalformedStores) {
  std::string path = ::testing::TempDir() + "/bad_store.txt";
  {
    std::ofstream out(path);
    out << "# qsteer-recommender-store v2\n";
    out << Sig(1).ToHexString() << " -20 1 0 0 1 2 9 0 0 0 0 \n";  // breaker 9 invalid
  }
  SteeringRecommender rec;
  EXPECT_FALSE(rec.LoadFromFile(path).ok());
  EXPECT_FALSE(rec.LoadFromFile(::testing::TempDir() + "/does_not_exist.txt").ok());
}

}  // namespace
}  // namespace qsteer
