#include "optimizer/memo.h"

#include <gtest/gtest.h>

namespace qsteer {
namespace {

Operator Scan(int stream) {
  Operator op;
  op.kind = OpKind::kGet;
  op.stream_id = stream;
  op.stream_set_id = 0;
  op.scan_columns = {0, 1};
  return op;
}

Operator Select(int64_t literal) {
  Operator op;
  op.kind = OpKind::kSelect;
  op.predicate = Expr::Cmp(0, CmpOp::kEq, literal);
  return op;
}

TEST(Memo, InsertDeduplicatesSharedSubtrees) {
  // Union of two selects over the SAME shared scan node.
  PlanNodePtr scan = PlanNode::Make(Scan(0), {});
  PlanNodePtr a = PlanNode::Make(Select(1), {scan});
  PlanNodePtr b = PlanNode::Make(Select(2), {scan});
  Operator u;
  u.kind = OpKind::kUnionAll;
  PlanNodePtr root = PlanNode::Make(u, {a, b});

  Memo memo;
  GroupId root_group = memo.Insert(root);
  // Groups: scan, select1, select2, union = 4.
  EXPECT_EQ(memo.num_groups(), 4);
  EXPECT_EQ(memo.num_exprs(), 4);
  EXPECT_EQ(root_group, 3);
  // Both selects share the scan child group.
  const GroupExpr& ua = memo.expr(memo.group(root_group).exprs[0]);
  ASSERT_EQ(ua.children.size(), 2u);
  EXPECT_EQ(memo.expr(memo.group(ua.children[0]).exprs[0]).children[0],
            memo.expr(memo.group(ua.children[1]).exprs[0]).children[0]);
}

TEST(Memo, AddExprDeduplicatesIdenticalExpressions) {
  Memo memo;
  ExprId scan = memo.AddExpr(Scan(0), {}, kInvalidGroup, -1, kInvalidExpr);
  GroupId scan_group = memo.expr(scan).group;
  ExprId again = memo.AddExpr(Scan(0), {}, kInvalidGroup, -1, kInvalidExpr);
  EXPECT_EQ(scan, again);
  EXPECT_EQ(memo.num_groups(), 1);

  ExprId sel = memo.AddExpr(Select(5), {scan_group}, kInvalidGroup, 10, scan);
  ExprId sel_dup = memo.AddExpr(Select(5), {scan_group}, kInvalidGroup, 11, scan);
  EXPECT_EQ(sel, sel_dup);  // provenance of the first creator wins
  EXPECT_EQ(memo.expr(sel).rule_id, 10);
}

TEST(Memo, TargetGroupAttachesEquivalentExpr) {
  Memo memo;
  ExprId scan = memo.AddExpr(Scan(0), {}, kInvalidGroup, -1, kInvalidExpr);
  GroupId scan_group = memo.expr(scan).group;
  ExprId sel = memo.AddExpr(Select(5), {scan_group}, kInvalidGroup, -1, kInvalidExpr);
  GroupId sel_group = memo.expr(sel).group;
  // A rewrite adds an equivalent expression into the select's group.
  ExprId alt = memo.AddExpr(Select(6), {scan_group}, sel_group, 42, sel);
  EXPECT_EQ(memo.expr(alt).group, sel_group);
  EXPECT_EQ(memo.group(sel_group).exprs.size(), 2u);
  EXPECT_EQ(memo.expr(alt).rule_id, 42);
  EXPECT_EQ(memo.expr(alt).source_expr, sel);
}

TEST(Memo, OutputColumnsDerivedOnGroupCreation) {
  Memo memo;
  ExprId scan = memo.AddExpr(Scan(0), {}, kInvalidGroup, -1, kInvalidExpr);
  GroupId scan_group = memo.expr(scan).group;
  EXPECT_EQ(memo.group(scan_group).output_columns, (std::vector<ColumnId>{0, 1}));

  Operator gb;
  gb.kind = OpKind::kGroupBy;
  gb.group_keys = {1};
  gb.aggs = {AggExpr{AggFunc::kCount, kInvalidColumn, 7}};
  ExprId agg = memo.AddExpr(gb, {scan_group}, kInvalidGroup, -1, kInvalidExpr);
  EXPECT_EQ(memo.group(memo.expr(agg).group).output_columns, (std::vector<ColumnId>{1, 7}));
}

TEST(Memo, ProvenanceChainsThroughRewrites) {
  Memo memo;
  ExprId scan = memo.AddExpr(Scan(0), {}, kInvalidGroup, -1, kInvalidExpr);
  GroupId scan_group = memo.expr(scan).group;
  ExprId sel = memo.AddExpr(Select(5), {scan_group}, kInvalidGroup, -1, kInvalidExpr);
  GroupId sel_group = memo.expr(sel).group;
  ExprId rewritten = memo.AddExpr(Select(7), {scan_group}, sel_group, 90, sel);
  // Implementation on top of the rewritten expression.
  Operator filter;
  filter.kind = OpKind::kFilter;
  filter.predicate = Expr::Cmp(0, CmpOp::kEq, 7);
  ExprId impl = memo.AddExpr(filter, {scan_group}, sel_group, 2, rewritten);

  std::vector<int> rule_ids;
  memo.CollectProvenance(impl, &rule_ids);
  EXPECT_EQ(rule_ids, (std::vector<int>{2, 90}));
}

TEST(Memo, RepresentativeIsFirstLogicalExpr) {
  Memo memo;
  ExprId scan = memo.AddExpr(Scan(3), {}, kInvalidGroup, -1, kInvalidExpr);
  GroupId group = memo.expr(scan).group;
  EXPECT_EQ(memo.group(group).representative, scan);
  // Adding a physical expression does not change the representative.
  Operator range = Scan(3);
  range.kind = OpKind::kRangeScan;
  memo.AddExpr(range, {}, group, 1, scan);
  EXPECT_EQ(memo.group(group).representative, scan);
}

}  // namespace
}  // namespace qsteer
