#include "optimizer/memo.h"

#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "common/hash.h"

namespace qsteer {
namespace {

Operator Scan(int stream) {
  Operator op;
  op.kind = OpKind::kGet;
  op.stream_id = stream;
  op.stream_set_id = 0;
  op.scan_columns = {0, 1};
  return op;
}

Operator Select(int64_t literal) {
  Operator op;
  op.kind = OpKind::kSelect;
  op.predicate = Expr::Cmp(0, CmpOp::kEq, literal);
  return op;
}

TEST(Memo, InsertDeduplicatesSharedSubtrees) {
  // Union of two selects over the SAME shared scan node.
  PlanNodePtr scan = PlanNode::Make(Scan(0), {});
  PlanNodePtr a = PlanNode::Make(Select(1), {scan});
  PlanNodePtr b = PlanNode::Make(Select(2), {scan});
  Operator u;
  u.kind = OpKind::kUnionAll;
  PlanNodePtr root = PlanNode::Make(u, {a, b});

  Memo memo;
  GroupId root_group = memo.Insert(root);
  // Groups: scan, select1, select2, union = 4.
  EXPECT_EQ(memo.num_groups(), 4);
  EXPECT_EQ(memo.num_exprs(), 4);
  EXPECT_EQ(root_group, 3);
  // Both selects share the scan child group.
  const GroupExpr& ua = memo.expr(memo.group(root_group).exprs[0]);
  ASSERT_EQ(ua.children.size(), 2u);
  EXPECT_EQ(memo.expr(memo.group(ua.children[0]).exprs[0]).children[0],
            memo.expr(memo.group(ua.children[1]).exprs[0]).children[0]);
}

TEST(Memo, AddExprDeduplicatesIdenticalExpressions) {
  Memo memo;
  ExprId scan = memo.AddExpr(Scan(0), {}, kInvalidGroup, -1, kInvalidExpr);
  GroupId scan_group = memo.expr(scan).group;
  ExprId again = memo.AddExpr(Scan(0), {}, kInvalidGroup, -1, kInvalidExpr);
  EXPECT_EQ(scan, again);
  EXPECT_EQ(memo.num_groups(), 1);

  ExprId sel = memo.AddExpr(Select(5), {scan_group}, kInvalidGroup, 10, scan);
  ExprId sel_dup = memo.AddExpr(Select(5), {scan_group}, kInvalidGroup, 11, scan);
  EXPECT_EQ(sel, sel_dup);  // provenance of the first creator wins
  EXPECT_EQ(memo.expr(sel).rule_id, 10);
}

TEST(Memo, TargetGroupAttachesEquivalentExpr) {
  Memo memo;
  ExprId scan = memo.AddExpr(Scan(0), {}, kInvalidGroup, -1, kInvalidExpr);
  GroupId scan_group = memo.expr(scan).group;
  ExprId sel = memo.AddExpr(Select(5), {scan_group}, kInvalidGroup, -1, kInvalidExpr);
  GroupId sel_group = memo.expr(sel).group;
  // A rewrite adds an equivalent expression into the select's group.
  ExprId alt = memo.AddExpr(Select(6), {scan_group}, sel_group, 42, sel);
  EXPECT_EQ(memo.expr(alt).group, sel_group);
  EXPECT_EQ(memo.group(sel_group).exprs.size(), 2u);
  EXPECT_EQ(memo.expr(alt).rule_id, 42);
  EXPECT_EQ(memo.expr(alt).source_expr, sel);
}

TEST(Memo, OutputColumnsDerivedOnGroupCreation) {
  Memo memo;
  ExprId scan = memo.AddExpr(Scan(0), {}, kInvalidGroup, -1, kInvalidExpr);
  GroupId scan_group = memo.expr(scan).group;
  EXPECT_EQ(memo.group(scan_group).output_columns, (std::vector<ColumnId>{0, 1}));

  Operator gb;
  gb.kind = OpKind::kGroupBy;
  gb.group_keys = {1};
  gb.aggs = {AggExpr{AggFunc::kCount, kInvalidColumn, 7}};
  ExprId agg = memo.AddExpr(gb, {scan_group}, kInvalidGroup, -1, kInvalidExpr);
  EXPECT_EQ(memo.group(memo.expr(agg).group).output_columns, (std::vector<ColumnId>{1, 7}));
}

TEST(Memo, ProvenanceChainsThroughRewrites) {
  Memo memo;
  ExprId scan = memo.AddExpr(Scan(0), {}, kInvalidGroup, -1, kInvalidExpr);
  GroupId scan_group = memo.expr(scan).group;
  ExprId sel = memo.AddExpr(Select(5), {scan_group}, kInvalidGroup, -1, kInvalidExpr);
  GroupId sel_group = memo.expr(sel).group;
  ExprId rewritten = memo.AddExpr(Select(7), {scan_group}, sel_group, 90, sel);
  // Implementation on top of the rewritten expression.
  Operator filter;
  filter.kind = OpKind::kFilter;
  filter.predicate = Expr::Cmp(0, CmpOp::kEq, 7);
  ExprId impl = memo.AddExpr(filter, {scan_group}, sel_group, 2, rewritten);

  std::vector<int> rule_ids;
  memo.CollectProvenance(impl, &rule_ids);
  EXPECT_EQ(rule_ids, (std::vector<int>{2, 90}));
}

TEST(Memo, PermutedChildrenAreDistinctExpressions) {
  // Regression: the old ExprKey mixed children with a plain order-sensitive
  // combine whose weakness could collide op(a, b) with op(b, a) for
  // commutative-looking child swaps. Swapped children must never dedup.
  Memo memo;
  ExprId s0 = memo.AddExpr(Scan(0), {}, kInvalidGroup, -1, kInvalidExpr);
  ExprId s1 = memo.AddExpr(Scan(1), {}, kInvalidGroup, -1, kInvalidExpr);
  GroupId g0 = memo.expr(s0).group;
  GroupId g1 = memo.expr(s1).group;

  Operator u;
  u.kind = OpKind::kUnionAll;
  ExprId ab = memo.AddExpr(u, {g0, g1}, kInvalidGroup, -1, kInvalidExpr);
  ExprId ba = memo.AddExpr(u, {g1, g0}, kInvalidGroup, -1, kInvalidExpr);
  EXPECT_NE(ab, ba);
  EXPECT_NE(memo.expr(ab).group, memo.expr(ba).group);
  ASSERT_EQ(memo.expr(ab).children.size(), 2u);
  EXPECT_EQ(memo.expr(ab).children[0], g0);
  EXPECT_EQ(memo.expr(ba).children[0], g1);
}

TEST(Memo, PrecomputedOpHashMatchesComputed) {
  // AddExpr with an explicit op_hash (the group-alias fast path) must land
  // in the same dedup slot as the compute-it-yourself path.
  Memo memo;
  ExprId scan = memo.AddExpr(Scan(0), {}, kInvalidGroup, -1, kInvalidExpr);
  GroupId scan_group = memo.expr(scan).group;
  Operator sel = Select(9);
  uint64_t op_hash = sel.Hash(/*for_template=*/false);
  ExprId a = memo.AddExpr(sel, {scan_group}, kInvalidGroup, -1, kInvalidExpr);
  ExprId b = memo.AddExpr(Select(9), {scan_group}, kInvalidGroup, -1, kInvalidExpr, op_hash);
  EXPECT_EQ(a, b);
  EXPECT_EQ(memo.expr(a).op_hash, op_hash);
}

TEST(HashRange, PermutationsAndPrefixesStayDistinct) {
  // The position-dependent mix must separate every permutation of a small
  // child set, every prefix, and the empty list, across several seeds.
  std::unordered_set<uint64_t> keys;
  int inserted = 0;
  std::vector<std::vector<int>> child_lists = {
      {},     {1},       {2},       {1, 2},    {2, 1},    {1, 2, 3},
      {1, 3, 2}, {2, 1, 3}, {2, 3, 1}, {3, 1, 2}, {3, 2, 1}, {1, 1},
      {1, 1, 1}, {0},       {0, 0},    {1, 2, 3, 4}, {4, 3, 2, 1}};
  for (uint64_t seed : {0ull, 1ull, 0x123456789abcdefull}) {
    for (const std::vector<int>& children : child_lists) {
      keys.insert(HashRange(children.begin(), children.end(), seed));
      ++inserted;
    }
  }
  EXPECT_EQ(static_cast<int>(keys.size()), inserted);
}

TEST(Memo, CloneReproducesEveryIdAssignment) {
  Memo memo;
  ExprId s0 = memo.AddExpr(Scan(0), {}, kInvalidGroup, -1, kInvalidExpr);
  GroupId g0 = memo.expr(s0).group;
  ExprId sel = memo.AddExpr(Select(5), {g0}, kInvalidGroup, 10, s0);
  GroupId gsel = memo.expr(sel).group;

  Memo copy = memo.Clone();
  ASSERT_EQ(copy.num_groups(), memo.num_groups());
  ASSERT_EQ(copy.num_exprs(), memo.num_exprs());
  EXPECT_EQ(copy.expr(sel).group, gsel);
  EXPECT_EQ(copy.expr(sel).rule_id, 10);
  EXPECT_EQ(copy.expr(sel).op_hash, memo.expr(sel).op_hash);
  // The clone's dedup table must be live: re-adding dedups, new exprs get
  // the same ids the original would assign.
  EXPECT_EQ(copy.AddExpr(Select(5), {g0}, kInvalidGroup, -1, kInvalidExpr), sel);
  ExprId in_copy = copy.AddExpr(Select(6), {g0}, gsel, 11, sel);
  ExprId in_orig = memo.AddExpr(Select(6), {g0}, gsel, 11, sel);
  EXPECT_EQ(in_copy, in_orig);
}

TEST(Memo, RepresentativeIsFirstLogicalExpr) {
  Memo memo;
  ExprId scan = memo.AddExpr(Scan(3), {}, kInvalidGroup, -1, kInvalidExpr);
  GroupId group = memo.expr(scan).group;
  EXPECT_EQ(memo.group(group).representative, scan);
  // Adding a physical expression does not change the representative.
  Operator range = Scan(3);
  range.kind = OpKind::kRangeScan;
  memo.AddExpr(range, {}, group, 1, scan);
  EXPECT_EQ(memo.group(group).representative, scan);
}

}  // namespace
}  // namespace qsteer
