// Randomized round-trip properties over the serialization surfaces:
// hint strings, hex signatures, and configuration algebra — 200 random
// draws each, seeded and deterministic.
#include <gtest/gtest.h>

#include "common/random.h"
#include "core/hints.h"
#include "optimizer/rule_registry.h"

namespace qsteer {
namespace {

RuleConfig RandomConfig(Pcg32* rng) {
  RuleConfig config = RuleConfig::Default();
  int toggles = static_cast<int>(rng->UniformInt(0, 40));
  for (int i = 0; i < toggles; ++i) {
    RuleId id = static_cast<RuleId>(rng->UniformInt(0, kNumRules - 1));
    if (rng->NextBool(0.5)) {
      config.Enable(id);
    } else {
      config.Disable(id);
    }
  }
  return config;
}

TEST(FuzzRoundTrip, HintStringsReproduceConfigs) {
  Pcg32 rng(0xf022);
  for (int trial = 0; trial < 200; ++trial) {
    RuleConfig config = RandomConfig(&rng);
    std::string hints = ToHintString(config);
    Result<RuleConfig> parsed = ParseHintString(hints);
    ASSERT_TRUE(parsed.ok()) << trial << ": " << hints;
    EXPECT_EQ(parsed.value(), config) << trial << ": " << hints;
  }
}

TEST(FuzzRoundTrip, HexSignaturesReproduceBitVectors) {
  Pcg32 rng(0xf023);
  for (int trial = 0; trial < 200; ++trial) {
    BitVector256 bv;
    int bits = static_cast<int>(rng.UniformInt(0, 64));
    for (int i = 0; i < bits; ++i) bv.Set(static_cast<int>(rng.UniformInt(0, 255)));
    EXPECT_EQ(BitVector256::FromHexString(bv.ToHexString()), bv) << trial;
    // Binary round trip too.
    EXPECT_EQ(BitVector256::FromBinaryString(bv.ToBinaryString()), bv) << trial;
  }
}

TEST(FuzzRoundTrip, ConfigAlgebraInvariants) {
  Pcg32 rng(0xf024);
  for (int trial = 0; trial < 200; ++trial) {
    RuleConfig config = RandomConfig(&rng);
    // Required rules can never be disabled, regardless of toggle history.
    for (RuleId id = 0; id < kNumRequired; ++id) {
      ASSERT_TRUE(config.IsEnabled(id)) << trial << " rule " << id;
    }
    // DisabledVsDefault is exactly the default-enabled rules now disabled.
    RuleConfig def = RuleConfig::Default();
    for (RuleId id : config.DisabledVsDefault()) {
      EXPECT_TRUE(def.IsEnabled(id));
      EXPECT_FALSE(config.IsEnabled(id));
    }
    // Hash is content-determined.
    RuleConfig copy = config;
    EXPECT_EQ(copy.Hash(), config.Hash());
  }
}

TEST(FuzzRoundTrip, MalformedHintStringsNeverCrash) {
  Pcg32 rng(0xf025);
  const std::string alphabet = "ENABLEDISABLE(),;HashJoinImpl1 _0budget";
  for (int trial = 0; trial < 300; ++trial) {
    std::string garbage;
    int len = static_cast<int>(rng.UniformInt(0, 60));
    for (int i = 0; i < len; ++i) {
      garbage.push_back(alphabet[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int>(alphabet.size()) - 1))]);
    }
    Result<RuleConfig> parsed = ParseHintString(garbage);  // must not crash
    if (parsed.ok()) {
      // Whatever parsed must still respect the required-rule invariant.
      for (RuleId id = 0; id < kNumRequired; ++id) {
        EXPECT_TRUE(parsed.value().IsEnabled(id));
      }
    }
  }
}

}  // namespace
}  // namespace qsteer
