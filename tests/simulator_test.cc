// Execution-simulator behaviour: token budget, metric relationships, DAG
// sharing, and the A/B harness.
#include "exec/simulator.h"

#include <gtest/gtest.h>

#include "workload/generator.h"

namespace qsteer {
namespace {

class SimulatorTest : public ::testing::Test {
 protected:
  SimulatorTest() : workload_(Spec()), optimizer_(&workload_.catalog()) {}

  static WorkloadSpec Spec() {
    WorkloadSpec spec;
    spec.name = "E";
    spec.seed = 606;
    spec.num_templates = 20;
    spec.num_stream_sets = 16;
    return spec;
  }

  PlanNodePtr CompiledRoot(const Job& job) {
    Result<CompiledPlan> plan = optimizer_.Compile(job, RuleConfig::Default());
    EXPECT_TRUE(plan.ok());
    return plan.value().root;
  }

  Workload workload_;
  Optimizer optimizer_;
};

TEST_F(SimulatorTest, FewerTokensNeverFaster) {
  SimulatorOptions rich;
  rich.tokens = 200;
  rich.deterministic = true;
  SimulatorOptions poor;
  poor.tokens = 5;
  poor.deterministic = true;
  ExecutionSimulator rich_sim(&workload_.catalog(), rich);
  ExecutionSimulator poor_sim(&workload_.catalog(), poor);
  int strictly_slower = 0;
  for (int t = 0; t < 10; ++t) {
    Job job = workload_.MakeJob(t, 1);
    PlanNodePtr root = CompiledRoot(job);
    double fast = rich_sim.Execute(job, root).runtime;
    double slow = poor_sim.Execute(job, root).runtime;
    EXPECT_GE(slow, fast * 0.999) << t;
    if (slow > fast * 1.05) ++strictly_slower;
    // CPU work identical: tokens change scheduling, not total computation.
    EXPECT_NEAR(rich_sim.Execute(job, root).cpu_time, poor_sim.Execute(job, root).cpu_time,
                rich_sim.Execute(job, root).cpu_time * 1e-6);
  }
  EXPECT_GT(strictly_slower, 3);
}

TEST_F(SimulatorTest, DeterministicModeIsNoiseFree) {
  SimulatorOptions options;
  options.deterministic = true;
  ExecutionSimulator sim(&workload_.catalog(), options);
  Job job = workload_.MakeJob(2, 1);
  PlanNodePtr root = CompiledRoot(job);
  EXPECT_DOUBLE_EQ(sim.Execute(job, root, 1).runtime, sim.Execute(job, root, 2).runtime);
}

TEST_F(SimulatorTest, ShortJobsNoisierThanLongJobs) {
  SimulatorOptions options;
  ExecutionSimulator sim(&workload_.catalog(), options);
  // Find a short and a long job under the default config.
  double short_rel_spread = -1, long_rel_spread = -1;
  for (int t = 0; t < 20; ++t) {
    Job job = workload_.MakeJob(t, 1);
    PlanNodePtr root = CompiledRoot(job);
    std::vector<double> runs;
    for (uint64_t n = 1; n <= 20; ++n) runs.push_back(sim.Execute(job, root, n).runtime);
    double lo = *std::min_element(runs.begin(), runs.end());
    double hi = *std::max_element(runs.begin(), runs.end());
    double mid = (lo + hi) / 2;
    double spread = (hi - lo) / mid;
    if (mid < options.short_job_threshold) {
      short_rel_spread = std::max(short_rel_spread, spread);
    } else {
      long_rel_spread = std::max(long_rel_spread, spread);
    }
  }
  if (short_rel_spread > 0 && long_rel_spread > 0) {
    EXPECT_GT(short_rel_spread, long_rel_spread);
  }
}

TEST_F(SimulatorTest, SharedFragmentsCostOnce) {
  // Build union-of-two-references over ONE shared subplan and compare to the
  // same plan with two physically distinct copies: the shared DAG must be
  // cheaper on CPU (evaluated once).
  const StreamSet& set = workload_.catalog().stream_set(0);
  auto universe = std::make_shared<ColumnUniverse>();
  std::vector<ColumnId> cols;
  for (size_t c = 0; c < set.columns.size(); ++c) {
    cols.push_back(universe->GetOrAddBaseColumn(0, static_cast<int>(c), set.columns[c].name));
  }
  Operator scan;
  scan.kind = OpKind::kRangeScan;
  scan.stream_id = set.stream_ids[0];
  scan.stream_set_id = 0;
  scan.scan_columns = cols;
  scan.dop = 8;
  Operator filter;
  filter.kind = OpKind::kFilter;
  filter.predicate = Expr::Cmp(cols[1], CmpOp::kLe, 10);
  filter.dop = 8;
  Operator union_op;
  union_op.kind = OpKind::kPhysicalUnionAll;
  union_op.dop = 8;
  Operator writer;
  writer.kind = OpKind::kOutputWriter;
  writer.dop = 8;

  PlanNodePtr shared_branch = PlanNode::Make(filter, {PlanNode::Make(scan, {})});
  PlanNodePtr shared_root = PlanNode::Make(
      writer, {PlanNode::Make(union_op, {shared_branch, shared_branch})});
  PlanNodePtr copy_a = PlanNode::Make(filter, {PlanNode::Make(scan, {})});
  PlanNodePtr copy_b = PlanNode::Make(filter, {PlanNode::Make(scan, {})});
  PlanNodePtr copied_root =
      PlanNode::Make(writer, {PlanNode::Make(union_op, {copy_a, copy_b})});

  Job job;
  job.name = "shared";
  job.day = 1;
  job.columns = universe;
  job.root = shared_root;  // only day/columns matter to the simulator

  SimulatorOptions options;
  options.deterministic = true;
  ExecutionSimulator sim(&workload_.catalog(), options);
  ExecMetrics shared = sim.Execute(job, shared_root);
  ExecMetrics copied = sim.Execute(job, copied_root);
  EXPECT_LT(shared.cpu_time, copied.cpu_time * 0.75);
  EXPECT_DOUBLE_EQ(shared.output_rows, copied.output_rows);
}

TEST_F(SimulatorTest, MetricsAreInternallyConsistent) {
  ExecutionSimulator sim(&workload_.catalog());
  for (int t = 0; t < 8; ++t) {
    Job job = workload_.MakeJob(t, 1);
    ExecMetrics m = sim.Execute(job, CompiledRoot(job));
    EXPECT_GT(m.runtime, 0.0);
    EXPECT_GT(m.cpu_time, 0.0);
    EXPECT_GE(m.io_time, 0.0);
    EXPECT_GE(m.bytes_moved, 0.0);
    EXPECT_GE(m.output_rows, 0.0);
  }
}

TEST_F(SimulatorTest, MetricAccessors) {
  ExecMetrics m;
  m.runtime = 1;
  m.cpu_time = 2;
  m.io_time = 3;
  EXPECT_DOUBLE_EQ(MetricOf(m, Metric::kRuntime), 1);
  EXPECT_DOUBLE_EQ(MetricOf(m, Metric::kCpuTime), 2);
  EXPECT_DOUBLE_EQ(MetricOf(m, Metric::kIoTime), 3);
  EXPECT_STREQ(MetricName(Metric::kRuntime), "Runtime");
  EXPECT_STREQ(MetricName(Metric::kCpuTime), "CPU time");
  EXPECT_STREQ(MetricName(Metric::kIoTime), "IO time");
}

TEST_F(SimulatorTest, AbHarnessCompilesAndExecutes) {
  ExecutionSimulator sim(&workload_.catalog());
  AbTestHarness harness(&optimizer_, &sim);
  Job job = workload_.MakeJob(1, 1);
  Result<AbRunResult> run = harness.Run(job, RuleConfig::Default(), 7);
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run.value().metrics.runtime, 0.0);
  EXPECT_NE(run.value().plan.root, nullptr);

  // A configuration that cannot compile propagates the failure.
  RuleConfig broken = RuleConfig::Default();
  for (RuleId id = kImplementationBegin; id < kNumRules; ++id) broken.Disable(id);
  bool any_failed = false;
  for (int t = 0; t < 10 && !any_failed; ++t) {
    any_failed = !harness.Run(workload_.MakeJob(t, 1), broken).ok();
  }
  EXPECT_TRUE(any_failed);
}

}  // namespace
}  // namespace qsteer
