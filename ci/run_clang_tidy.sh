#!/usr/bin/env bash
# clang-tidy over the library sources with the checked-in .clang-tidy.
# Usage: ci/run_clang_tidy.sh <build-dir>
# The build dir must have been configured with
# -DCMAKE_EXPORT_COMPILE_COMMANDS=ON (compile_commands.json drives the
# include paths). Exits non-zero on any WarningsAsErrors finding.
set -euo pipefail

build_dir="${1:-build}"
if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "error: ${build_dir}/compile_commands.json not found;" >&2
  echo "       configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi
if ! command -v clang-tidy >/dev/null; then
  echo "error: clang-tidy not on PATH (CI installs it; locally it is optional)" >&2
  exit 2
fi

# Library + tool sources only: tests and benches inherit the same headers
# through HeaderFilterRegex without tripling the runtime.
mapfile -t sources < <(find src tools -name '*.cc' | sort)
echo "clang-tidy over ${#sources[@]} files (config: .clang-tidy)"
printf '%s\n' "${sources[@]}" | xargs -P "$(nproc)" -n 4 \
  clang-tidy -p "${build_dir}" --quiet
echo "clang-tidy: clean"
