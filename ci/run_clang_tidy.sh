#!/usr/bin/env bash
# clang-tidy over the library sources with the checked-in .clang-tidy.
# Usage: ci/run_clang_tidy.sh <build-dir>
# The build dir must have been configured with
# -DCMAKE_EXPORT_COMPILE_COMMANDS=ON (compile_commands.json drives the
# include paths). Exits non-zero on any WarningsAsErrors finding.
set -euo pipefail

build_dir="${1:-build}"
if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "error: ${build_dir}/compile_commands.json not found;" >&2
  echo "       configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi
if ! command -v clang-tidy >/dev/null; then
  echo "error: clang-tidy not on PATH (CI installs it; locally it is optional)" >&2
  exit 2
fi

# Library + tool sources only: tests and benches inherit the same headers
# through HeaderFilterRegex without tripling the runtime. Roots are spelled
# out (rather than a bare `find src`) so a subsystem rename is a visible
# one-line diff here instead of a silent coverage loss.
roots=(
  src/baselines src/catalog src/common src/core src/discovery src/exec
  src/ml src/optimizer src/plan src/service src/workload tools
)
for root in "${roots[@]}"; do
  if [[ ! -d "${root}" ]]; then
    echo "error: clang-tidy root '${root}' does not exist; update ci/run_clang_tidy.sh" >&2
    exit 2
  fi
done
mapfile -t sources < <(find "${roots[@]}" -name '*.cc' | sort)
if [[ "${#sources[@]}" -eq 0 ]]; then
  echo "error: no sources found under ${roots[*]} — wrong working directory?" >&2
  exit 2
fi
echo "clang-tidy over ${#sources[@]} files (config: .clang-tidy)"
printf '%s\n' "${sources[@]}" | xargs -P "$(nproc)" -n 4 \
  clang-tidy -p "${build_dir}" --quiet
echo "clang-tidy: clean"
