// End-to-end steering service over a simulated week: the deployment story
// of paper §3.3 ("surface new rule configurations as plan hints") with the
// §6.4 signature-group extrapolation and a regression guardrail.
//
// Day 1: the offline pipeline analyzes a sample of jobs and the recommender
//        adopts configurations for improving signature groups.
// Days 2-7: every incoming job is compiled under the default configuration;
//        when its signature group has an adopted configuration, the steered
//        plan runs instead. Observed regressions retire recommendations.
//
//   $ ./examples/steering_service [jobs_per_day]
#include <cstdio>
#include <cstdlib>

#include "core/recommender.h"
#include "workload/generator.h"

using namespace qsteer;

int main(int argc, char** argv) {
  int max_jobs_per_day = argc > 1 ? std::atoi(argv[1]) : 60;

  Workload workload(WorkloadSpec::WorkloadB(0.004));
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());
  PipelineOptions pipeline_options;
  pipeline_options.max_candidate_configs = 120;
  SteeringPipeline pipeline(&optimizer, &simulator, pipeline_options);
  SteeringRecommender recommender;

  // ---------------- Day 1: offline discovery ----------------
  int analyzed = 0, adopted = 0;
  for (const Job& job : workload.JobsForDay(1)) {
    if (analyzed >= max_jobs_per_day / 2) break;
    ++analyzed;
    JobAnalysis analysis = pipeline.AnalyzeJob(job);
    if (recommender.LearnFromAnalysis(analysis)) ++adopted;
  }
  std::printf("Day 1 (offline): analyzed %d jobs, adopted configurations for %d "
              "signature groups.\n\n",
              analyzed, adopted);

  // ---------------- Days 2-7: online serving ----------------
  std::printf("%4s %6s %8s %10s %12s %12s %10s\n", "day", "jobs", "steered", "regressed",
              "default_s", "steered_s", "saved");
  double total_default = 0.0, total_served = 0.0;
  uint64_t nonce = 100;
  for (int day = 2; day <= 7; ++day) {
    int jobs = 0, steered = 0, regressed = 0;
    double day_default = 0.0, day_served = 0.0;
    for (const Job& job : workload.JobsForDay(day)) {
      if (jobs >= max_jobs_per_day) break;
      Result<CompiledPlan> default_plan = optimizer.Compile(job, RuleConfig::Default());
      if (!default_plan.ok()) continue;
      ++jobs;
      double default_runtime =
          simulator.Execute(job, default_plan.value().root, ++nonce).runtime;
      double served_runtime = default_runtime;

      auto rec = recommender.Recommend(default_plan.value().signature);
      if (!rec.is_default) {
        Result<CompiledPlan> steered_plan = optimizer.Compile(job, rec.config);
        if (steered_plan.ok()) {
          ++steered;
          served_runtime = simulator.Execute(job, steered_plan.value().root, ++nonce).runtime;
          double change = (served_runtime - default_runtime) / default_runtime * 100.0;
          recommender.ObserveOutcome(default_plan.value().signature, change);
          if (change > 5.0) ++regressed;
        }
      }
      day_default += default_runtime;
      day_served += served_runtime;
    }
    total_default += day_default;
    total_served += day_served;
    std::printf("%4d %6d %8d %10d %12.0f %12.0f %9.1f%%\n", day, jobs, steered, regressed,
                day_default, day_served,
                day_default > 0 ? (day_default - day_served) / day_default * 100.0 : 0.0);
  }

  std::printf("\nWeek total: %.0f s default vs %.0f s served (%.1f%% saved); "
              "%d recommendations retired by the regression guardrail.\n",
              total_default, total_served,
              total_default > 0 ? (total_default - total_served) / total_default * 100.0 : 0.0,
              recommender.num_retired());
  std::printf("This is the paper's deployment path: configurations surfaced as plan hints\n"
              "for recurring signature groups, refreshed offline, guarded online.\n");
  return 0;
}
