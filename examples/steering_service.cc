// End-to-end steering service over a simulated week on an *unreliable*
// cluster: the deployment story of paper §3.3 ("surface new rule
// configurations as plan hints") with the §6.4 signature-group
// extrapolation, hardened with production guardrails — retries with
// backoff, validation re-runs before adoption, and a per-group circuit
// breaker that automatically rolls a regressing recommendation back to the
// default configuration.
//
// Day 1:    the offline pipeline analyzes a sample of jobs under the fault
//           profile; improving configurations become *candidates*.
// Validate: every candidate must survive N clean validation re-runs before
//           it may serve; a candidate that regresses is rejected outright.
// Days 2-7: incoming jobs compile under the default configuration and are
//           steered when their signature group has a validated
//           recommendation. Every execution retries transient failures.
// Day 6:    a simulated upstream data-distribution shift makes the steered
//           plans regress; the circuit breakers trip and the service rolls
//           the affected groups back to the default automatically.
//
//   $ ./examples/steering_service [jobs_per_day] [fault_level]
//
// fault_level scales FaultProfile::Flaky; 0 disables fault injection and
// reproduces the fault-free service bit-for-bit.
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/argparse.h"
#include "core/recommender.h"
#include "workload/generator.h"

using namespace qsteer;

int main(int argc, char** argv) {
  int max_jobs_per_day = 60;
  double fault_level = 1.0;
  if (argc > 3 || (argc > 1 && !ParseIntArg(argv[1], 2, 100000, &max_jobs_per_day)) ||
      (argc > 2 && !ParseDoubleArg(argv[2], 0.0, 25.0, &fault_level))) {
    std::fprintf(stderr,
                 "usage: steering_service [jobs_per_day] [fault_level]\n"
                 "  jobs_per_day: integer >= 2 (default 60)\n"
                 "  fault_level:  0..25 scaling FaultProfile::Flaky (default 1; 0 = off)\n");
    return 2;
  }

  Workload workload(WorkloadSpec::WorkloadB(0.004));
  Optimizer optimizer(&workload.catalog());
  SimulatorOptions sim_options;
  sim_options.fault_profile = FaultProfile::Flaky(fault_level);
  ExecutionSimulator simulator(&workload.catalog(), sim_options);
  PipelineOptions pipeline_options;
  pipeline_options.max_candidate_configs = 120;
  SteeringPipeline pipeline(&optimizer, &simulator, pipeline_options);
  SteeringRecommender recommender;

  std::printf("Cluster fault level %.2f (%s).\n\n", fault_level,
              sim_options.fault_profile.Active() ? "fault injection active" : "fault-free");

  // ---------------- Day 1: offline discovery ----------------
  std::unordered_map<std::string, Job> group_rep;  // signature hex -> base job
  int analyzed = 0, candidates = 0, failed_baselines = 0;
  for (const Job& job : workload.JobsForDay(1)) {
    if (analyzed >= max_jobs_per_day / 2) break;
    ++analyzed;
    JobAnalysis analysis = pipeline.AnalyzeJob(job);
    if (analysis.default_metrics.failed) ++failed_baselines;
    if (recommender.LearnFromAnalysis(analysis)) {
      ++candidates;
      group_rep.emplace(analysis.default_plan.signature.ToHexString(), job);
    }
  }
  std::printf("Day 1 (offline): analyzed %d jobs (%d baselines lost to faults, "
              "%d learn events); %d signature groups have candidate configurations.\n",
              analyzed, failed_baselines, candidates, recommender.num_groups());

  // ---------------- Validation gate ----------------
  // Candidates re-run against the default on their base job, under the same
  // fault profile, until they collect the required clean runs (or regress
  // and are rejected). The round cap bounds the work when faults keep
  // eating baselines.
  uint64_t nonce = 1000;
  int validation_runs = 0;
  for (int round = 0; round < 8; ++round) {
    std::vector<SteeringRecommender::ValidationRequest> pending =
        recommender.PendingValidations();
    if (pending.empty()) break;
    for (const SteeringRecommender::ValidationRequest& request : pending) {
      auto it = group_rep.find(request.signature.ToHexString());
      if (it == group_rep.end()) continue;
      const Job& job = it->second;
      Result<CompiledPlan> default_plan = optimizer.Compile(job, RuleConfig::Default());
      Result<CompiledPlan> steered_plan = optimizer.Compile(job, request.config);
      if (!default_plan.ok() || !steered_plan.ok()) continue;
      ExecMetrics base = pipeline.ExecuteWithRetry(job, default_plan.value().root, ++nonce);
      ExecMetrics alt = pipeline.ExecuteWithRetry(job, steered_plan.value().root, ++nonce);
      ++validation_runs;
      if (base.failed || base.runtime <= 0.0) continue;  // no baseline; try next round
      double change =
          alt.failed ? 100.0 : (alt.runtime - base.runtime) / base.runtime * 100.0;
      recommender.ObserveValidation(request.signature, change);
    }
  }
  std::printf("Validation: %d re-runs; %d groups validated for serving, %d rejected.\n\n",
              validation_runs, recommender.num_serving(), recommender.num_retired());

  // ---------------- Days 2-7: online serving ----------------
  // Simulated upstream data-distribution shift: from shift_day on, the
  // learned plan choices are wrong for the new data and steered runs come
  // in `shift_penalty` times *slower than the default* — the situation the
  // circuit breaker exists for.
  const int shift_day = 6;
  const double shift_penalty = 1.25;

  std::printf("%4s %6s %8s %10s %8s %10s %12s %12s %8s\n", "day", "jobs", "steered",
              "regressed", "retries", "rollbacks", "default_s", "served_s", "saved");
  double total_default = 0.0, total_served = 0.0;
  int total_steered = 0, exec_fallbacks = 0, lost_jobs = 0;
  for (int day = 2; day <= 7; ++day) {
    int jobs = 0, steered = 0, regressed = 0;
    double day_default = 0.0, day_served = 0.0;
    int rollbacks_before = recommender.num_rollbacks();
    int64_t retries_before = pipeline.failure_stats().exec_retries;
    for (const Job& job : workload.JobsForDay(day)) {
      if (jobs >= max_jobs_per_day) break;
      Result<CompiledPlan> default_plan = optimizer.Compile(job, RuleConfig::Default());
      if (!default_plan.ok()) continue;
      ++jobs;
      ExecMetrics default_run =
          pipeline.ExecuteWithRetry(job, default_plan.value().root, ++nonce);
      if (default_run.failed) {
        // Even the retry budget could not save this run: the job is lost to
        // the cluster independent of steering. Count it evenly on both sides.
        ++lost_jobs;
        day_default += default_run.runtime;
        day_served += default_run.runtime;
        continue;
      }
      double default_runtime = default_run.runtime;
      double served_runtime = default_runtime;

      SteeringRecommender::Recommendation rec =
          recommender.Recommend(default_plan.value().signature);
      if (!rec.is_default) {
        Result<CompiledPlan> steered_plan = optimizer.Compile(job, rec.config);
        if (steered_plan.ok()) {
          ++steered;
          ++total_steered;
          ExecMetrics steered_run =
              pipeline.ExecuteWithRetry(job, steered_plan.value().root, ++nonce);
          if (steered_run.failed) {
            // Degrade gracefully: rerun under the default plan, and report
            // the failure as a regression so the breaker sees it.
            ++exec_fallbacks;
            served_runtime =
                pipeline.ExecuteWithRetry(job, default_plan.value().root, ++nonce).runtime;
            recommender.ObserveOutcome(default_plan.value().signature, 100.0);
            ++regressed;
          } else {
            served_runtime = steered_run.runtime;
            if (day >= shift_day) served_runtime = default_runtime * shift_penalty;
            double change = (served_runtime - default_runtime) / default_runtime * 100.0;
            recommender.ObserveOutcome(default_plan.value().signature, change);
            if (change > 5.0) ++regressed;
          }
        }
      }
      day_default += default_runtime;
      day_served += served_runtime;
    }
    total_default += day_default;
    total_served += day_served;
    std::printf("%4d %6d %8d %10d %8lld %10d %12.0f %12.0f %7.1f%%\n", day, jobs, steered,
                regressed,
                static_cast<long long>(pipeline.failure_stats().exec_retries - retries_before),
                recommender.num_rollbacks() - rollbacks_before, day_default, day_served,
                day_default > 0 ? (day_default - day_served) / day_default * 100.0 : 0.0);
    if (day == shift_day) {
      std::printf("      -- data-distribution shift: steered plans now run %.0f%% slower "
                  "than the default; breakers trip and groups roll back --\n",
                  (shift_penalty - 1.0) * 100.0);
    }
  }

  PipelineFailureStats stats = pipeline.failure_stats();
  std::printf("\nWeek total: %.0f s default vs %.0f s served (%.1f%% saved) "
              "across %d steered runs.\n",
              total_default, total_served,
              total_default > 0 ? (total_default - total_served) / total_default * 100.0 : 0.0,
              total_steered);
  std::printf("Resilience: %s.\n", stats.ToString().c_str());
  std::printf("Guardrail: %d automatic rollbacks; %d groups retired, %d still serving; "
              "%d jobs lost to the cluster; %d steered runs degraded to the default plan.\n",
              recommender.num_rollbacks(), recommender.num_retired(),
              recommender.num_serving(), lost_jobs, exec_fallbacks);
  std::printf("Unhandled failures: 0 — every fault was retried, degraded to the default, "
              "or rolled back.\n");
  return 0;
}
