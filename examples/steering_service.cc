// End-to-end *asynchronous* steering service over a simulated week on an
// unreliable cluster — including a mid-week process crash.
//
// The deployment story of paper §3.3 ("surface new rule configurations as
// plan hints") with the §6.4 signature-group extrapolation, hardened with
// the production guardrails (retries, validation gate, circuit breakers)
// and, new in this example, the crash-safety layer: every recommender
// mutation is write-ahead logged and periodically snapshotted, so a crash
// loses no acknowledged learning.
//
// Day 1:    the offline pipeline analyzes a sample of jobs under the fault
//           profile; improving configurations become *candidates* (each
//           learn event journaled through the durable store).
// Validate: every candidate must survive N clean validation re-runs before
//           it may serve; a candidate that regresses is rejected outright.
// Days 2-7: jobs are *submitted* to the service's bounded queue and served
//           asynchronously by compile workers; admission control sheds
//           work the service cannot finish in time.
// Day 5:    the service process "crashes" (Kill: no snapshot, queued
//           requests fail) mid-day. A new service instance recovers from
//           the snapshot + WAL tail and the example asserts the recovered
//           recommendation state is bit-identical before serving resumes.
// Day 6:    a simulated data-distribution shift makes steered plans
//           regress; the circuit breakers trip and roll the affected
//           groups back to the default automatically.
//
//   $ ./examples/steering_service [jobs_per_day] [fault_level]
//
// fault_level scales FaultProfile::Flaky; 0 disables fault injection.
#include <cstdio>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/argparse.h"
#include "service/steering_service.h"
#include "workload/generator.h"

using namespace qsteer;

namespace {

ServiceOptions MakeServiceOptions(const std::string& dir) {
  ServiceOptions options;
  options.num_workers = 2;
  options.queue_capacity = 128;
  options.store.dir = dir;
  options.store.snapshot_interval = 16;
  options.store.sync = false;  // demo speed; correctness is rename-atomic
  return options;
}

struct DayResult {
  int jobs = 0;
  int steered = 0;
  int regressed = 0;
  double default_s = 0.0;
  double served_s = 0.0;
};

/// Serves one day's jobs through the async service: submit everything, then
/// collect the replies and feed observed regressions back (the shift
/// penalty models a data-distribution change the simulator cannot see).
DayResult ServeDay(SteeringService& service, const std::vector<Job>& jobs,
                   int max_jobs, bool shifted, double shift_penalty) {
  DayResult day;
  std::vector<std::future<ServiceReply>> replies;
  for (const Job& job : jobs) {
    if (static_cast<int>(replies.size()) >= max_jobs) break;
    ServiceRequest request;
    request.job = job;
    std::future<ServiceReply> reply;
    if (service.Submit(request, &reply) == AdmitResult::kAccepted) {
      replies.push_back(std::move(reply));
    }
  }
  for (std::future<ServiceReply>& future : replies) {
    ServiceReply reply = future.get();
    if (!reply.status.ok()) continue;
    ++day.jobs;
    double served = reply.served_runtime_s;
    if (reply.steered && shifted) {
      // The service measured the pre-shift runtime; the shifted cluster
      // actually delivers a regression. Report it so the breakers hear it.
      served = reply.default_runtime_s * shift_penalty;
      double change = reply.default_runtime_s > 0.0
                          ? (served - reply.default_runtime_s) / reply.default_runtime_s * 100.0
                          : 0.0;
      service.store().ObserveOutcome(reply.default_signature, change);
    }
    if (reply.steered) ++day.steered;
    if (served > reply.default_runtime_s * 1.05) ++day.regressed;
    day.default_s += reply.default_runtime_s;
    day.served_s += served;
  }
  return day;
}

}  // namespace

int main(int argc, char** argv) {
  int max_jobs_per_day = 60;
  double fault_level = 1.0;
  if (argc > 3 || (argc > 1 && !ParseIntArg(argv[1], 2, 100000, &max_jobs_per_day)) ||
      (argc > 2 && !ParseDoubleArg(argv[2], 0.0, 25.0, &fault_level))) {
    std::fprintf(stderr,
                 "usage: steering_service [jobs_per_day] [fault_level]\n"
                 "  jobs_per_day: integer >= 2 (default 60)\n"
                 "  fault_level:  0..25 scaling FaultProfile::Flaky (default 1; 0 = off)\n");
    return 2;
  }

  Workload workload(WorkloadSpec::WorkloadB(0.004));
  Optimizer optimizer(&workload.catalog());
  SimulatorOptions sim_options;
  sim_options.fault_profile = FaultProfile::Flaky(fault_level);
  ExecutionSimulator simulator(&workload.catalog(), sim_options);
  PipelineOptions pipeline_options;
  pipeline_options.max_candidate_configs = 120;
  SteeringPipeline pipeline(&optimizer, &simulator, pipeline_options);

  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "qsteer_steering_service_demo";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  auto service = std::make_unique<SteeringService>(&optimizer, &simulator,
                                                   MakeServiceOptions(dir.string()));
  Status started = service->Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("Cluster fault level %.2f (%s); durable store in %s.\n\n", fault_level,
              sim_options.fault_profile.Active() ? "fault injection active" : "fault-free",
              dir.c_str());

  // ---------------- Day 1: offline discovery (journaled) ----------------
  std::unordered_map<std::string, Job> group_rep;  // signature hex -> base job
  int analyzed = 0, candidates = 0, failed_baselines = 0;
  for (const Job& job : workload.JobsForDay(1)) {
    if (analyzed >= max_jobs_per_day / 2) break;
    ++analyzed;
    JobAnalysis analysis = pipeline.AnalyzeJob(job);
    if (analysis.default_metrics.failed) ++failed_baselines;
    if (service->store().LearnFromAnalysis(analysis)) {
      ++candidates;
      group_rep.emplace(analysis.default_plan.signature.ToHexString(), job);
    }
  }
  std::printf("Day 1 (offline): analyzed %d jobs (%d baselines lost to faults, "
              "%d learn events); %d signature groups have candidate configurations.\n",
              analyzed, failed_baselines, candidates, service->store().num_groups());

  // ---------------- Validation gate ----------------
  uint64_t nonce = 1000;
  int validation_runs = 0;
  for (int round = 0; round < 8; ++round) {
    std::vector<SteeringRecommender::ValidationRequest> pending =
        service->store().PendingValidations();
    if (pending.empty()) break;
    for (const SteeringRecommender::ValidationRequest& request : pending) {
      auto it = group_rep.find(request.signature.ToHexString());
      if (it == group_rep.end()) continue;
      const Job& job = it->second;
      Result<CompiledPlan> default_plan = optimizer.Compile(job, RuleConfig::Default());
      Result<CompiledPlan> steered_plan = optimizer.Compile(job, request.config);
      if (!default_plan.ok() || !steered_plan.ok()) continue;
      ExecMetrics base = pipeline.ExecuteWithRetry(job, default_plan.value().root, ++nonce);
      ExecMetrics alt = pipeline.ExecuteWithRetry(job, steered_plan.value().root, ++nonce);
      ++validation_runs;
      if (base.failed || base.runtime <= 0.0) continue;
      service->store().ObserveValidation(
          request.signature,
          alt.failed ? 100.0 : (alt.runtime - base.runtime) / base.runtime * 100.0);
    }
  }
  std::printf("Validation: %d re-runs; %d groups validated for serving, %d rejected.\n\n",
              validation_runs, service->store().num_serving(),
              service->store().num_retired());

  // ---------------- Days 2-7: asynchronous online serving ----------------
  const int crash_day = 5;
  const int shift_day = 6;
  const double shift_penalty = 1.25;

  std::printf("%4s %6s %8s %10s %10s %12s %12s %8s\n", "day", "jobs", "steered",
              "regressed", "rollbacks", "default_s", "served_s", "saved");
  double total_default = 0.0, total_served = 0.0;
  int total_steered = 0;
  for (int day = 2; day <= 7; ++day) {
    std::vector<Job> jobs = workload.JobsForDay(day);
    int rollbacks_before = service->store().num_rollbacks();

    if (day == crash_day) {
      // Serve the first half of the day, then crash mid-day.
      std::vector<Job> first_half(jobs.begin(), jobs.begin() + jobs.size() / 2);
      DayResult before = ServeDay(*service, first_half, max_jobs_per_day / 2,
                                  /*shifted=*/false, shift_penalty);
      service->Kill();  // crash: no snapshot, no drain — the WAL is all we keep
      std::string pre_crash_state = service->store().SerializeState();
      service = std::make_unique<SteeringService>(&optimizer, &simulator,
                                                  MakeServiceOptions(dir.string()));
      Status restarted = service->Start();
      if (!restarted.ok()) {
        std::fprintf(stderr, "recovery failed: %s\n", restarted.ToString().c_str());
        return 1;
      }
      const DurableRecommenderStore::RecoveryInfo& recovery = service->store().recovery();
      bool identical = service->store().SerializeState() == pre_crash_state;
      std::printf("      -- CRASH mid-day %d: recovered from snapshot (seq %llu) + %lld "
                  "WAL events (%lld skipped); state bit-identical: %s --\n",
                  day, static_cast<unsigned long long>(recovery.snapshot_seq),
                  static_cast<long long>(recovery.wal_records_replayed),
                  static_cast<long long>(recovery.wal_records_skipped),
                  identical ? "yes" : "NO");
      if (!identical) return 1;
      std::vector<Job> second_half(jobs.begin() + jobs.size() / 2, jobs.end());
      DayResult after = ServeDay(*service, second_half, max_jobs_per_day / 2,
                                 /*shifted=*/false, shift_penalty);
      before.jobs += after.jobs;
      before.steered += after.steered;
      before.regressed += after.regressed;
      before.default_s += after.default_s;
      before.served_s += after.served_s;
      total_default += before.default_s;
      total_served += before.served_s;
      total_steered += before.steered;
      std::printf("%4d %6d %8d %10d %10d %12.0f %12.0f %7.1f%%\n", day, before.jobs,
                  before.steered, before.regressed,
                  service->store().num_rollbacks() - rollbacks_before, before.default_s,
                  before.served_s,
                  before.default_s > 0
                      ? (before.default_s - before.served_s) / before.default_s * 100.0
                      : 0.0);
      continue;
    }

    DayResult result =
        ServeDay(*service, jobs, max_jobs_per_day, day >= shift_day, shift_penalty);
    total_default += result.default_s;
    total_served += result.served_s;
    total_steered += result.steered;
    std::printf("%4d %6d %8d %10d %10d %12.0f %12.0f %7.1f%%\n", day, result.jobs,
                result.steered, result.regressed,
                service->store().num_rollbacks() - rollbacks_before, result.default_s,
                result.served_s,
                result.default_s > 0
                    ? (result.default_s - result.served_s) / result.default_s * 100.0
                    : 0.0);
    if (day == shift_day) {
      std::printf("      -- data-distribution shift: steered plans now run %.0f%% slower "
                  "than the default; breakers trip and groups roll back --\n",
                  (shift_penalty - 1.0) * 100.0);
    }
  }

  Status stopped = service->Shutdown();
  std::printf("\nWeek total: %.0f s default vs %.0f s served (%.1f%% saved) "
              "across %d steered runs.\n",
              total_default, total_served,
              total_default > 0 ? (total_default - total_served) / total_default * 100.0 : 0.0,
              total_steered);
  std::printf("Final service status:\n%s", service->status().ToString().c_str());
  std::printf("Clean shutdown snapshot: %s.\n", stopped.ok() ? "ok" : stopped.ToString().c_str());
  return 0;
}
