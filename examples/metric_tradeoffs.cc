// Metric tension (paper §6.2, Figure 7): for each job, picking the
// configuration with the best runtime often regresses CPU time or IO time,
// and vice versa. This example executes 10 alternatives per job and shows
// how each metric moves under the three selection policies.
//
//   $ ./examples/metric_tradeoffs [num_jobs]
#include <cstdio>

#include "common/argparse.h"
#include "core/pipeline.h"
#include "workload/generator.h"

using namespace qsteer;

namespace {

double PctChange(double alt, double base) {
  return base > 0.0 ? (alt - base) / base * 100.0 : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  int num_jobs = 20;
  if (argc > 2 || (argc > 1 && !ParseIntArg(argv[1], 1, 100000, &num_jobs))) {
    std::fprintf(stderr, "usage: metric_tradeoffs [num_jobs >= 1]\n");
    return 2;
  }

  Workload workload(WorkloadSpec::WorkloadB(0.004));
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());
  PipelineOptions options;
  options.max_candidate_configs = 120;
  SteeringPipeline pipeline(&optimizer, &simulator, options);

  const Metric kMetrics[] = {Metric::kRuntime, Metric::kCpuTime, Metric::kIoTime};
  int regressions[3][3] = {};  // [optimized metric][observed metric]
  int improvements[3][3] = {};
  int analyzed = 0;

  std::printf("Optimizing each of %d jobs for one metric; %% change per metric:\n\n",
              num_jobs);
  std::printf("%-22s | %-26s | %-26s | %-26s\n", "", "pick best RUNTIME",
              "pick best CPU", "pick best IO");
  std::printf("%-22s | %8s %8s %8s | %8s %8s %8s | %8s %8s %8s\n", "job", "rt%", "cpu%",
              "io%", "rt%", "cpu%", "io%", "rt%", "cpu%", "io%");

  for (int t = 0; t < num_jobs; ++t) {
    Job job = workload.MakeJob(t, 9);
    JobAnalysis analysis = pipeline.AnalyzeJob(job);
    if (analysis.default_plan.root == nullptr || analysis.executed.empty()) continue;
    ++analyzed;
    std::printf("%-22s", job.name.substr(0, 22).c_str());
    for (int target = 0; target < 3; ++target) {
      const ConfigOutcome* best = analysis.BestBy(kMetrics[target]);
      double changes[3] = {
          PctChange(best->metrics.runtime, analysis.default_metrics.runtime),
          PctChange(best->metrics.cpu_time, analysis.default_metrics.cpu_time),
          PctChange(best->metrics.io_time, analysis.default_metrics.io_time),
      };
      std::printf(" |");
      for (int observed = 0; observed < 3; ++observed) {
        std::printf(" %+8.1f", changes[observed]);
        if (changes[observed] > 2.0) ++regressions[target][observed];
        if (changes[observed] < -2.0) ++improvements[target][observed];
      }
    }
    std::printf("\n");
  }

  std::printf("\nSummary over %d jobs (#jobs improving / regressing by >2%%):\n", analyzed);
  for (int target = 0; target < 3; ++target) {
    std::printf("  optimizing %-9s:", MetricName(kMetrics[target]));
    for (int observed = 0; observed < 3; ++observed) {
      std::printf("  %s %d/%d", MetricName(kMetrics[observed]),
                  improvements[target][observed], regressions[target][observed]);
    }
    std::printf("\n");
  }
  std::printf("\nThe off-target metrics regress far more often than the targeted one —\n"
              "the paper's Figure 7 tension.\n");
  return 0;
}
