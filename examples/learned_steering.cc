// Learned configuration selection for one job group (paper §7): collect
// runtimes of K candidate configurations over two weeks of a recurring
// template, train the per-group neural net, and report default vs learned
// vs best runtimes on held-out jobs.
//
//   $ ./examples/learned_steering
#include <cstdio>

#include "core/learned_steering.h"
#include "core/span.h"
#include "workload/generator.h"

using namespace qsteer;

int main() {
  Workload workload(WorkloadSpec::WorkloadB(0.004));
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());
  LearnedSteering learner(&optimizer, &simulator, &workload.catalog());

  // One recurring template over two weeks = one rule-signature job group.
  const int kTemplate = 4;
  std::vector<Job> jobs;
  for (int day = 1; day <= 14; ++day) {
    int instances = workload.InstancesOnDay(kTemplate, day);
    for (int i = 0; i < std::max(instances, 1); ++i) {
      jobs.push_back(workload.MakeJob(kTemplate, day, i));
    }
  }
  std::printf("Job group: template %d, %zu jobs over 14 days.\n", kTemplate, jobs.size());

  // K candidate configurations from the span (default first).
  SpanResult span = ComputeJobSpan(optimizer, jobs.front());
  ConfigSearchOptions search;
  search.max_configs = 30;
  search.seed = 99;
  std::vector<RuleConfig> configs = {RuleConfig::Default()};
  for (const RuleConfig& config : GenerateCandidateConfigs(span.span, search)) {
    if (configs.size() >= 7) break;
    configs.push_back(config);
  }
  std::printf("Span: %d rules -> K = %zu candidate configurations.\n\n",
              span.span.Count(), configs.size());

  GroupDataset dataset = learner.CollectDataset(jobs, configs, /*seed=*/11);
  std::printf("Dataset: %d samples, %zu features each.\n", dataset.size(),
              dataset.features.empty() ? 0 : dataset.features[0].size());

  MlpOptions options;
  options.hidden = 64;
  options.epochs = 150;
  options.seed = 5;
  LearnedEvaluation eval = learner.TrainAndEvaluate(dataset, options);

  std::printf("\nHeld-out test jobs (%zu):\n", eval.test_choices.size());
  std::printf("%-34s %4s %10s %10s %10s\n", "job", "arm", "default_s", "learned_s", "best_s");
  for (const LearnedChoice& choice : eval.test_choices) {
    std::printf("%-34s %4d %10.1f %10.1f %10.1f\n", choice.job_name.c_str(),
                choice.chosen_arm, choice.default_runtime, choice.chosen_runtime,
                choice.best_runtime);
  }
  std::printf("\n%-8s %10s %10s %10s\n", "", "mean", "90P", "99P");
  std::printf("%-8s %10.1f %10.1f %10.1f\n", "best", eval.mean_best, eval.p90_best,
              eval.p99_best);
  std::printf("%-8s %10.1f %10.1f %10.1f\n", "default", eval.mean_default, eval.p90_default,
              eval.p99_default);
  std::printf("%-8s %10.1f %10.1f %10.1f\n", "learned", eval.mean_learned, eval.p90_learned,
              eval.p99_learned);
  std::printf("\nLearned model recovers %.0f%% of the oracle's improvement over default.\n",
              eval.mean_default - eval.mean_best > 1e-9
                  ? 100.0 * (eval.mean_default - eval.mean_learned) /
                        (eval.mean_default - eval.mean_best)
                  : 0.0);
  return 0;
}
