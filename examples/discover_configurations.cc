// Offline configuration discovery on a generated production-like workload:
// the full paper §5-§6 pipeline — span, randomized candidate search,
// recompilation, cheapest-10 A/B execution — with Table-4-style RuleDiff
// output for the biggest wins.
//
//   $ ./examples/discover_configurations [num_jobs] [num_threads]
//
// num_threads: 0 = serial (default), -1 = one worker per hardware thread.
// The discovered configurations are bit-identical for every thread count.
#include <algorithm>
#include <cstdio>

#include "common/argparse.h"
#include "core/pipeline.h"
#include "workload/generator.h"

using namespace qsteer;

int main(int argc, char** argv) {
  int num_jobs = 25;
  int num_threads = 0;
  if (argc > 3 || (argc > 1 && !ParseIntArg(argv[1], 1, 100000, &num_jobs)) ||
      (argc > 2 && !ParseIntArg(argv[2], -1, 1024, &num_threads))) {
    std::fprintf(stderr,
                 "usage: discover_configurations [num_jobs] [num_threads]\n"
                 "  num_jobs:    integer >= 1 (default 25)\n"
                 "  num_threads: -1..1024 (default 0 = serial, -1 = hardware threads)\n");
    return 2;
  }

  Workload workload(WorkloadSpec::WorkloadB(0.004));
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());
  PipelineOptions options;
  options.max_candidate_configs = 150;
  options.configs_to_execute = 10;
  options.num_threads = num_threads;
  SteeringPipeline pipeline(&optimizer, &simulator, options);

  std::printf("Analyzing %d jobs from workload %s (day 7) with %d worker thread(s)...\n\n",
              num_jobs, workload.spec().name.c_str(),
              pipeline.pool() != nullptr ? pipeline.pool()->num_threads() : 0);
  std::printf("%-26s %5s %5s %8s %9s %10s %8s\n", "job", "ops", "span", "cands",
              "cheaper", "default_s", "best%");

  struct Win {
    std::string job;
    double change;
    std::string diff;
  };
  std::vector<Win> wins;
  int improved = 0, analyzed = 0;

  // Batch entry point: jobs fan out over the pipeline's pool.
  std::vector<Job> jobs;
  for (int t = 0; t < num_jobs; ++t) jobs.push_back(workload.MakeJob(t, /*day=*/7));
  std::vector<JobAnalysis> analyses = pipeline.AnalyzeJobs(jobs);

  for (size_t t = 0; t < analyses.size(); ++t) {
    const Job& job = jobs[t];
    JobAnalysis& analysis = analyses[t];
    if (analysis.default_plan.root == nullptr) continue;
    ++analyzed;
    double change = analysis.BestRuntimeChangePct();
    if (change < -3.0) ++improved;
    std::printf("%-26s %5d %5d %8d %9d %10.1f %+7.1f\n", job.name.c_str(),
                job.NumOperators(), analysis.span.span.Count(),
                analysis.candidates_generated, analysis.cheaper_than_default,
                analysis.default_metrics.runtime, change);
    const ConfigOutcome* best = analysis.BestBy(Metric::kRuntime);
    if (best != nullptr && change < -20.0) {
      wins.push_back({job.name, change, best->diff_vs_default.ToString()});
    }
  }

  std::printf("\n%d of %d jobs improve by >3%% with one of their 10 cheapest "
              "alternative configurations.\n",
              improved, analyzed);

  std::sort(wins.begin(), wins.end(),
            [](const Win& a, const Win& b) { return a.change < b.change; });
  std::printf("\nRuleDiffs of the largest wins (Table 4 style):\n");
  for (size_t i = 0; i < wins.size() && i < 6; ++i) {
    std::printf("  %s (%+.0f%%)\n    %s\n", wins[i].job.c_str(), wins[i].change,
                wins[i].diff.c_str());
  }
  return 0;
}
