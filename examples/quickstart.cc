// Quickstart: build a SCOPE-like job by hand, compile it under the default
// rule configuration, inspect its rule signature, steer it with rule hints,
// and compare simulated executions.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "exec/simulator.h"
#include "optimizer/optimizer.h"
#include "optimizer/rule_registry.h"

using namespace qsteer;

int main() {
  // -------------------------------------------------------------------
  // 1. Catalog: one log stream set with three daily shards + a dimension.
  // -------------------------------------------------------------------
  Catalog catalog;
  StreamSet events;
  events.name = "clicks";
  events.columns = {
      {.name = "user_id", .type = ColumnType::kInt64, .distinct_count = 200000,
       .zipf_skew = 1.1},
      {.name = "page_id", .type = ColumnType::kInt64, .distinct_count = 5000},
      {.name = "latency_ms", .type = ColumnType::kInt64, .distinct_count = 10000},
  };
  events.daily_growth = 0.02;
  int events_set = catalog.AddStreamSet(events);
  for (int d = 0; d < 3; ++d) {
    // qsteer-lint: allow(unchecked-status) the demo schema is valid by construction
    (void)catalog.AddStream(events_set, "clicks_d" + std::to_string(d), 80'000'000, 64);
  }

  StreamSet users;
  users.name = "users";
  users.columns = {
      {.name = "user_id", .type = ColumnType::kInt64, .distinct_count = 200000},
      {.name = "country", .type = ColumnType::kInt64, .distinct_count = 60},
  };
  int users_set = catalog.AddStreamSet(users);
  // qsteer-lint: allow(unchecked-status) the demo schema is valid by construction
  (void)catalog.AddStream(users_set, "users_snapshot", 200000, 8);

  // -------------------------------------------------------------------
  // 2. Job: UNION the daily click shards, filter, join users, aggregate.
  // -------------------------------------------------------------------
  auto universe = std::make_shared<ColumnUniverse>();
  ColumnId user_id = universe->GetOrAddBaseColumn(events_set, 0, "user_id");
  ColumnId page_id = universe->GetOrAddBaseColumn(events_set, 1, "page_id");
  ColumnId latency = universe->GetOrAddBaseColumn(events_set, 2, "latency_ms");
  ColumnId dim_user = universe->GetOrAddBaseColumn(users_set, 0, "user_id");
  ColumnId country = universe->GetOrAddBaseColumn(users_set, 1, "country");

  std::vector<PlanNodePtr> shards;
  for (int d = 0; d < 3; ++d) {
    Operator get;
    get.kind = OpKind::kGet;
    get.stream_id = catalog.stream_set(events_set).stream_ids[d];
    get.stream_set_id = events_set;
    get.scan_columns = {user_id, page_id, latency};
    shards.push_back(PlanNode::Make(get, {}));
  }
  Operator union_all;
  union_all.kind = OpKind::kUnionAll;
  PlanNodePtr source = PlanNode::Make(union_all, std::move(shards));

  Operator select;
  select.kind = OpKind::kSelect;
  select.predicate = Expr::And({Expr::Cmp(page_id, CmpOp::kLe, 500),
                                Expr::IsNotNull(user_id)});
  PlanNodePtr filtered = PlanNode::Make(select, {source});

  Operator users_scan;
  users_scan.kind = OpKind::kGet;
  users_scan.stream_id = catalog.stream_set(users_set).stream_ids[0];
  users_scan.stream_set_id = users_set;
  users_scan.scan_columns = {dim_user, country};

  Operator join;
  join.kind = OpKind::kJoin;
  join.join_type = JoinType::kInner;
  join.left_keys = {user_id};
  join.right_keys = {dim_user};
  PlanNodePtr joined =
      PlanNode::Make(join, {filtered, PlanNode::Make(users_scan, {})});

  Operator group_by;
  group_by.kind = OpKind::kGroupBy;
  group_by.group_keys = {country};
  group_by.aggs = {
      {AggFunc::kCount, kInvalidColumn, universe->AddDerivedColumn("clicks", 1e6)},
      {AggFunc::kMax, latency, universe->AddDerivedColumn("max_latency", 1e4)},
  };
  PlanNodePtr reduced = PlanNode::Make(group_by, {joined});

  Operator output;
  output.kind = OpKind::kOutput;

  Job job;
  job.name = "quickstart_job";
  job.day = 5;
  job.columns = universe;
  job.root = PlanNode::Make(output, {reduced});

  std::printf("Logical plan (%d operators):\n%s\n", job.NumOperators(),
              PlanToString(job.root).c_str());

  // -------------------------------------------------------------------
  // 3. Compile with the default rule configuration; inspect the signature.
  // -------------------------------------------------------------------
  Optimizer optimizer(&catalog);
  ExecutionSimulator simulator(&catalog);

  Result<CompiledPlan> default_plan = optimizer.Compile(job, RuleConfig::Default());
  if (!default_plan.ok()) {
    std::printf("compile failed: %s\n", default_plan.status().ToString().c_str());
    return 1;
  }
  std::printf("Default physical plan (estimated cost %.1f):\n%s\n",
              default_plan.value().est_cost, PlanToString(default_plan.value().root).c_str());

  const RuleRegistry& registry = RuleRegistry::Instance();
  std::printf("Rule signature (%d of 256 rules contributed):\n",
              default_plan.value().signature.Count());
  for (int id : default_plan.value().signature.ToIndices()) {
    std::printf("  [%3d] %-28s (%s)\n", id, registry.name(id).c_str(),
                RuleCategoryName(CategoryOfRule(id)));
  }

  // -------------------------------------------------------------------
  // 4. Steer: disable the physical-union implementation AND the
  //    select-below-union pushdowns, so the shards stay raw and the
  //    optimizer must wire them up as a metadata-only VirtualDataset
  //    (the UnionAllToVirtualDataset motif of the paper's Table 4).
  // -------------------------------------------------------------------
  RuleConfig steered = RuleConfig::WithHints(
      /*enable=*/{},
      /*disable=*/{rules::kUnionAllToUnionAll, /*SelectOnUnionAll=*/99,
                   /*SelectOnUnionAll2=*/100, /*SelectSplitConjunction=*/86});
  Result<CompiledPlan> steered_plan = optimizer.Compile(job, steered);
  if (!steered_plan.ok()) {
    std::printf("steered compile failed: %s\n", steered_plan.status().ToString().c_str());
    return 1;
  }
  std::printf("\nSteered physical plan (estimated cost %.1f):\n%s\n",
              steered_plan.value().est_cost, PlanToString(steered_plan.value().root).c_str());

  ExecMetrics default_metrics = simulator.Execute(job, default_plan.value().root, 1);
  ExecMetrics steered_metrics = simulator.Execute(job, steered_plan.value().root, 1);
  std::printf("A/B execution (50 tokens each):\n");
  std::printf("  %-10s %12s %12s %12s\n", "plan", "runtime(s)", "cpu(s)", "io(s)");
  std::printf("  %-10s %12.1f %12.1f %12.1f\n", "default", default_metrics.runtime,
              default_metrics.cpu_time, default_metrics.io_time);
  std::printf("  %-10s %12.1f %12.1f %12.1f\n", "steered", steered_metrics.runtime,
              steered_metrics.cpu_time, steered_metrics.io_time);
  double change = (steered_metrics.runtime - default_metrics.runtime) /
                  default_metrics.runtime * 100.0;
  std::printf("  runtime change: %+.1f%% (negative = faster)\n", change);
  return 0;
}
