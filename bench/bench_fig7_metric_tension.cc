// Figure 7: Workload B jobs, picking the best of 10 alternative
// configurations separately for runtime / CPU time / IO time — the chosen
// metric improves, but the off-target metrics frequently regress.
#include "bench/bench_util.h"
#include "exec/simulator.h"

using namespace qsteer;
using namespace qsteer::bench;

namespace {

double PctChange(double alt, double base) {
  return base > 0.0 ? (alt - base) / base * 100.0 : 0.0;
}

}  // namespace

int main() {
  Header("Figure 7: metric tension on Workload B (best-per-metric selections)",
         "optimizing runtime regresses CPU/IO for many jobs; optimizing CPU removes "
         "CPU regressions but adds runtime regressions; same for IO");

  Workload workload(BenchSpec('B'));
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());
  std::vector<JobAnalysis> analyses =
      RunAbAnalysis(workload, optimizer, simulator, static_cast<int>(40 * BenchScale()));

  const Metric kMetrics[] = {Metric::kRuntime, Metric::kCpuTime, Metric::kIoTime};
  const char* kPanel[] = {"(a) best RUNTIME config", "(b) best CPU config",
                          "(c) best IO config"};
  for (int target = 0; target < 3; ++target) {
    int improved[3] = {}, regressed[3] = {};
    double mean_change[3] = {};
    int n = 0;
    for (const JobAnalysis& analysis : analyses) {
      const ConfigOutcome* best = analysis.BestBy(kMetrics[target]);
      if (best == nullptr) continue;
      ++n;
      double changes[3] = {
          PctChange(best->metrics.runtime, analysis.default_metrics.runtime),
          PctChange(best->metrics.cpu_time, analysis.default_metrics.cpu_time),
          PctChange(best->metrics.io_time, analysis.default_metrics.io_time),
      };
      for (int m = 0; m < 3; ++m) {
        mean_change[m] += changes[m];
        if (changes[m] < -2.0) ++improved[m];
        if (changes[m] > 2.0) ++regressed[m];
      }
    }
    std::printf("\n%s over %d jobs:\n", kPanel[target], n);
    const char* names[3] = {"Runtime", "CPU time", "IO time"};
    for (int m = 0; m < 3; ++m) {
      std::printf("  %-9s mean %+7.1f%%   improved %2d   regressed %2d %s\n", names[m],
                  n > 0 ? mean_change[m] / n : 0.0, improved[m], regressed[m],
                  m == target ? "<- targeted" : "");
    }
  }
  std::printf("\nPaper shape: green bars dominate the targeted row of each panel; red "
              "bars concentrate on the off-target metrics.\n");
  Footer();
  return 0;
}
