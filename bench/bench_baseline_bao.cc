// §4 baseline: Bao's 48 static hint-set arms with a Thompson-sampling bandit
// vs the signature-steering pipeline's per-job configurations. The paper's
// argument: SCOPE's configuration space is billions of per-job
// configurations, so 48 coarse arms capture less of the opportunity.
#include <algorithm>

#include "baselines/bao.h"
#include "bench/bench_util.h"
#include "exec/simulator.h"

using namespace qsteer;
using namespace qsteer::bench;

int main() {
  Header("Baseline: Bao-style 48 hint-set bandit vs per-job configuration steering",
         "Bao considers 48 configurations; this paper searches billions of per-job "
         "configurations guided by spans and cost");

  Workload workload(BenchSpec('B'));
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());
  std::vector<HintSet> arms = BaoHintSets();
  BaoBandit bandit(static_cast<int>(arms.size()), /*seed=*/5);

  PipelineOptions options;
  options.max_candidate_configs = 100;
  SteeringPipeline pipeline(&optimizer, &simulator, options);

  int rounds = static_cast<int>(60 * BenchScale());
  double bao_total = 0, default_total = 0, steering_total = 0, oracle48_total = 0;
  int jobs = 0;
  uint64_t nonce = 1;

  for (int round = 0; round < rounds; ++round) {
    Job job = workload.MakeJob(round % workload.num_templates(), 1 + round / 7);
    Result<CompiledPlan> default_plan = optimizer.Compile(job, RuleConfig::Default());
    if (!default_plan.ok()) continue;
    double default_runtime = simulator.Execute(job, default_plan.value().root, ++nonce).runtime;

    // Bao: the bandit picks one arm, executes it, observes the ratio.
    int arm = bandit.ChooseArm();
    Result<CompiledPlan> arm_plan = optimizer.Compile(job, arms[static_cast<size_t>(arm)].config);
    double arm_runtime = default_runtime;
    if (arm_plan.ok()) {
      arm_runtime = simulator.Execute(job, arm_plan.value().root, ++nonce).runtime;
    }
    bandit.Observe(arm, arm_runtime / default_runtime);

    // Oracle over the 48 arms (upper bound for ANY static-arm policy);
    // sampled sparsely for speed.
    double oracle48 = default_runtime;
    for (size_t a = 0; a < arms.size(); a += 4) {
      Result<CompiledPlan> plan = optimizer.Compile(job, arms[a].config);
      if (!plan.ok()) continue;
      oracle48 = std::min(oracle48, simulator.Execute(job, plan.value().root, ++nonce).runtime);
    }

    // This paper's pipeline: best of the 10 cheapest per-job configurations.
    JobAnalysis analysis = pipeline.AnalyzeJob(job);
    double steering = analysis.default_metrics.runtime;
    const ConfigOutcome* best = analysis.BestBy(Metric::kRuntime);
    if (best != nullptr) steering = std::min(steering, best->metrics.runtime);

    default_total += default_runtime;
    bao_total += arm_runtime;
    oracle48_total += oracle48;
    steering_total += steering;
    ++jobs;
  }

  std::printf("jobs: %d\n\n", jobs);
  std::printf("%-34s %14s %10s\n", "policy", "total runtime", "vs default");
  auto row = [&](const char* name, double total) {
    std::printf("%-34s %14.0f %+9.1f%%\n", name, total,
                (total - default_total) / default_total * 100.0);
  };
  row("default configuration", default_total);
  row("Bao bandit (48 arms, online)", bao_total);
  row("Bao oracle (best of 48 arms)", oracle48_total);
  row("steering pipeline (per-job best)", steering_total);
  std::printf("\nExpected shape: steering > Bao oracle > Bao bandit > default, because the\n"
              "per-job configuration space strictly contains the 48 coarse arms.\n");
  Footer();
  return 0;
}
