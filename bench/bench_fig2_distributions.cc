// Figure 2: one-day Workload A distributions — (a) job runtimes, (b) rule
// usage frequency, (c) rules used per job, (d) rule-signature group sizes.
#include <algorithm>
#include <cmath>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "core/job_groups.h"
#include "exec/simulator.h"

using namespace qsteer;
using namespace qsteer::bench;

int main() {
  Header("Figure 2: distributions over one day of Workload A",
         "(a) heavy-tailed runtimes, seconds to hours; (b) 100-150 rules used in the "
         "workload; (c) 10-20 rules per job; (d) signature groups up to ~1000 jobs");

  Workload workload(BenchSpec('A'));
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());

  std::vector<double> runtimes;
  std::vector<int> rule_use_count(kNumRules, 0);
  std::vector<double> rules_per_job;
  JobGroupIndex groups;

  for (const Job& job : workload.JobsForDay(3)) {
    Result<CompiledPlan> plan = optimizer.Compile(job, ProductionConfig(job));
    if (!plan.ok()) continue;
    runtimes.push_back(simulator.Execute(job, plan.value().root).runtime);
    for (int id : plan.value().signature.ToIndices()) {
      ++rule_use_count[static_cast<size_t>(id)];
    }
    rules_per_job.push_back(plan.value().signature.Count());
    groups.Add(plan.value().signature);
  }

  // (a) runtimes
  Summary rt = Summarize(runtimes);
  std::printf("(a) Job runtime distribution (%d jobs):\n", rt.count);
  std::printf("    min %.0fs  p50 %.0fs  p90 %.0fs  p99 %.0fs  max %.0fs\n", rt.min, rt.p50,
              rt.p90, rt.p99, rt.max);
  const double buckets[] = {60, 300, 1800, 7200, 1e18};
  const char* bucket_names[] = {"<1min", "1-5min", "5-30min", "30m-2h", ">2h"};
  int counts[5] = {};
  for (double r : runtimes) {
    for (int b = 0; b < 5; ++b) {
      if (r < buckets[b]) {
        ++counts[b];
        break;
      }
    }
  }
  for (int b = 0; b < 5; ++b) {
    std::printf("    %-8s %6d  ", bucket_names[b], counts[b]);
    PrintBar(counts[b], rt.count);
  }
  double over_5min = 0, total_runtime = 0, over_5min_runtime = 0;
  for (double r : runtimes) {
    total_runtime += r;
    if (r > 300) {
      ++over_5min;
      over_5min_runtime += r;
    }
  }
  std::printf("    jobs >5min: %.0f%% of jobs, %.0f%% of total processing time "
              "(paper: ~10%% of jobs consume 90%% of containers)\n",
              100.0 * over_5min / rt.count, 100.0 * over_5min_runtime / total_runtime);

  // (b) rule usage frequency
  std::vector<double> nonzero;
  for (int id = 0; id < kNumRules; ++id) {
    if (rule_use_count[static_cast<size_t>(id)] > 0) {
      nonzero.push_back(rule_use_count[static_cast<size_t>(id)]);
    }
  }
  std::sort(nonzero.begin(), nonzero.end(), std::greater<double>());
  std::printf("\n(b) Rule usage frequency: %zu of 256 rules used at least once "
              "(paper: 100-150 used frequently)\n",
              nonzero.size());
  std::printf("    usage by rank (fraction of jobs): ");
  for (size_t rank : {0ul, 4ul, 9ul, 19ul, 39ul}) {
    if (rank < nonzero.size()) {
      std::printf("#%zu=%.0f%% ", rank + 1, 100.0 * nonzero[rank] / rt.count);
    }
  }
  std::printf("\n");

  // (c) rules per job
  Summary rpj = Summarize(rules_per_job);
  std::printf("\n(c) Rules used per job: mean %.1f  p50 %.0f  p90 %.0f  max %.0f "
              "(paper: typically 10-20)\n",
              rpj.mean, rpj.p50, rpj.p90, rpj.max);

  // (d) signature group sizes
  std::vector<int> sizes = groups.SizesDescending();
  std::printf("\n(d) Rule-signature job groups: %d groups over %d jobs\n", groups.num_groups(),
              groups.num_jobs());
  std::printf("    largest groups: ");
  for (size_t i = 0; i < sizes.size() && i < 8; ++i) std::printf("%d ", sizes[i]);
  std::printf("\n    (paper: several signatures with ~1000 jobs each at full scale; scale "
              "factor here is ~1/200)\n");
  Footer();
  return 0;
}
