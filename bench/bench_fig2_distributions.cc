// Figure 2: one-day Workload A distributions — (a) job runtimes, (b) rule
// usage frequency, (c) rules used per job, (d) rule-signature group sizes.
//
// Statistics-layer extensions (machine-readable output in BENCH_stats.json):
//   (e) selectivity q-error of the scalar vs histogram stats model on the
//       correlated-skew workload (histogram must be strictly better), and
//   (f) stale-histogram-cliff steering wins: job groups where steering beats
//       the default plan >= 5% while scalar estimated costs cannot tell the
//       two configurations apart.
//
// Flags:
//   --stats-model={scalar,histogram}  active model for sections (a)-(d)
//       (default scalar — output is byte-identical to the pre-flag bench).
#include <algorithm>
#include <cmath>
#include <cstring>

#include "bench/bench_util.h"
#include "catalog/calibration.h"
#include "catalog/stats_model.h"
#include "common/stats.h"
#include "core/job_groups.h"
#include "exec/simulator.h"

using namespace qsteer;
using namespace qsteer::bench;

namespace {

/// Sections (e)+(f): q-error comparison and the stale-cliff steering gate.
/// Returns the process exit code (1 = histogram model failed its acceptance
/// bar).
int RunStatsModelComparison() {
  // (e) Selectivity q-error, scalar vs histogram, on the correlated-skew
  // workload — the regime the uniformity assumption is worst in.
  Workload skew_workload(WorkloadSpec::CorrelatedSkew(0.005 * BenchScale()));
  ScalarStatsModel scalar_model;
  HistogramStatsModel histogram_model;
  CalibrationOptions calibration;
  CalibrationReport scalar_report =
      RunCalibration(skew_workload.catalog(), scalar_model, calibration);
  CalibrationReport histogram_report =
      RunCalibration(skew_workload.catalog(), histogram_model, calibration);
  const QErrorSummary& sq = scalar_report.selectivity_q_error;
  const QErrorSummary& hq = histogram_report.selectivity_q_error;
  std::printf("\n(e) Selectivity q-error on the correlated-skew workload "
              "(%d probes per model):\n",
              sq.count);
  std::printf("    scalar    p50 %8.2f  p95 %10.2f  max %10.2f\n", sq.p50, sq.p95, sq.max);
  std::printf("    histogram p50 %8.2f  p95 %10.2f  max %10.2f\n", hq.p50, hq.p95, hq.max);
  bool histogram_better = hq.p50 < sq.p50 && hq.p95 < sq.p95;
  std::printf("    histogram strictly better (p50 and p95): %s\n",
              histogram_better ? "yes" : "NO");

  // (f) Stale-histogram cliff: analyze jobs under the histogram model on a
  // workload whose domains grow and skew drifts. Count steering wins the
  // scalar cost estimates cannot distinguish.
  Workload cliff(WorkloadSpec::StaleHistogramCliff(0.005 * BenchScale()));
  cliff.mutable_catalog().set_stats_model(std::make_shared<HistogramStatsModel>());
  Optimizer cliff_optimizer(&cliff.catalog());
  ExecutionSimulator cliff_simulator(&cliff.catalog());
  PipelineOptions cliff_options;
  cliff_options.max_candidate_configs = static_cast<int>(60 * BenchScale());
  std::vector<JobAnalysis> analyses =
      RunAbAnalysis(cliff, cliff_optimizer, cliff_simulator, /*max_jobs=*/8, /*day=*/5,
                    cliff_options);
  // A second workload instance (same spec, default scalar model) prices the
  // winning configurations under scalar beliefs.
  Workload cliff_scalar(WorkloadSpec::StaleHistogramCliff(0.005 * BenchScale()));
  Optimizer scalar_optimizer(&cliff_scalar.catalog());
  int steering_wins = 0;
  int blind_wins = 0;
  for (const JobAnalysis& analysis : analyses) {
    const ConfigOutcome* best = analysis.BestBy(Metric::kRuntime);
    if (best == nullptr || analysis.default_metrics.runtime <= 0.0) continue;
    double change = (best->metrics.runtime - analysis.default_metrics.runtime) /
                    analysis.default_metrics.runtime;
    if (change > -0.05) continue;
    ++steering_wins;
    // The scalar catalog is generatively identical (same spec), so the job
    // itself can be re-priced there directly.
    Result<CompiledPlan> scalar_default =
        scalar_optimizer.Compile(analysis.job, RuleConfig::Default());
    Result<CompiledPlan> scalar_best = scalar_optimizer.Compile(analysis.job, best->config);
    if (!scalar_default.ok() || !scalar_best.ok()) continue;
    // Scalar "cannot distinguish": under scalar beliefs the winning config
    // does not look cheaper, so scalar cost-guided steering skips it.
    if (scalar_best.value().est_cost >= scalar_default.value().est_cost * 0.99) {
      ++blind_wins;
    }
  }
  std::printf("\n(f) Stale-histogram cliff (%zu jobs analyzed under the histogram model):\n",
              analyses.size());
  std::printf("    steering wins >=5%%: %d; wins invisible to scalar estimates: %d\n",
              steering_wins, blind_wins);

  FILE* json = std::fopen("BENCH_stats.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"bench\": \"bench_fig2_distributions\",\n");
    std::fprintf(json,
                 "  \"description\": \"Selectivity q-error of the scalar vs histogram "
                 "stats model on the correlated-skew workload, plus stale-histogram-cliff "
                 "steering wins invisible to scalar estimates.\",\n");
    std::fprintf(json, "  \"probes_per_model\": %d,\n", sq.count);
    std::fprintf(json,
                 "  \"scalar\": { \"p50\": %.4f, \"p95\": %.4f, \"max\": %.4f },\n",
                 sq.p50, sq.p95, sq.max);
    std::fprintf(json,
                 "  \"histogram\": { \"p50\": %.4f, \"p95\": %.4f, \"max\": %.4f },\n",
                 hq.p50, hq.p95, hq.max);
    std::fprintf(json, "  \"histogram_strictly_better\": %s,\n",
                 histogram_better ? "true" : "false");
    std::fprintf(json, "  \"stale_cliff\": { \"jobs_analyzed\": %zu, "
                 "\"steering_wins\": %d, \"wins_invisible_to_scalar\": %d }\n",
                 analyses.size(), steering_wins, blind_wins);
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("    wrote BENCH_stats.json\n");
  }
  if (!histogram_better) {
    std::fprintf(stderr, "FAIL: histogram q-error not strictly better than scalar on the "
                         "correlated-skew workload\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool histogram_sections = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats-model=histogram") == 0) {
      histogram_sections = true;
    } else if (std::strcmp(argv[i], "--stats-model=scalar") != 0) {
      std::fprintf(stderr, "usage: %s [--stats-model={scalar,histogram}]\n", argv[0]);
      return 2;
    }
  }

  Header("Figure 2: distributions over one day of Workload A",
         "(a) heavy-tailed runtimes, seconds to hours; (b) 100-150 rules used in the "
         "workload; (c) 10-20 rules per job; (d) signature groups up to ~1000 jobs");

  Workload workload(BenchSpec('A'));
  if (histogram_sections) {
    workload.mutable_catalog().set_stats_model(std::make_shared<HistogramStatsModel>());
    std::printf("[stats-model: histogram — sections (a)-(d) compiled under "
                "histogram-grade estimates]\n");
  }
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());

  std::vector<double> runtimes;
  std::vector<int> rule_use_count(kNumRules, 0);
  std::vector<double> rules_per_job;
  JobGroupIndex groups;

  for (const Job& job : workload.JobsForDay(3)) {
    Result<CompiledPlan> plan = optimizer.Compile(job, ProductionConfig(job));
    if (!plan.ok()) continue;
    runtimes.push_back(simulator.Execute(job, plan.value().root).runtime);
    for (int id : plan.value().signature.ToIndices()) {
      ++rule_use_count[static_cast<size_t>(id)];
    }
    rules_per_job.push_back(plan.value().signature.Count());
    groups.Add(plan.value().signature);
  }

  // (a) runtimes
  Summary rt = Summarize(runtimes);
  std::printf("(a) Job runtime distribution (%d jobs):\n", rt.count);
  std::printf("    min %.0fs  p50 %.0fs  p90 %.0fs  p99 %.0fs  max %.0fs\n", rt.min, rt.p50,
              rt.p90, rt.p99, rt.max);
  const double buckets[] = {60, 300, 1800, 7200, 1e18};
  const char* bucket_names[] = {"<1min", "1-5min", "5-30min", "30m-2h", ">2h"};
  int counts[5] = {};
  for (double r : runtimes) {
    for (int b = 0; b < 5; ++b) {
      if (r < buckets[b]) {
        ++counts[b];
        break;
      }
    }
  }
  for (int b = 0; b < 5; ++b) {
    std::printf("    %-8s %6d  ", bucket_names[b], counts[b]);
    PrintBar(counts[b], rt.count);
  }
  double over_5min = 0, total_runtime = 0, over_5min_runtime = 0;
  for (double r : runtimes) {
    total_runtime += r;
    if (r > 300) {
      ++over_5min;
      over_5min_runtime += r;
    }
  }
  std::printf("    jobs >5min: %.0f%% of jobs, %.0f%% of total processing time "
              "(paper: ~10%% of jobs consume 90%% of containers)\n",
              100.0 * over_5min / rt.count, 100.0 * over_5min_runtime / total_runtime);

  // (b) rule usage frequency
  std::vector<double> nonzero;
  for (int id = 0; id < kNumRules; ++id) {
    if (rule_use_count[static_cast<size_t>(id)] > 0) {
      nonzero.push_back(rule_use_count[static_cast<size_t>(id)]);
    }
  }
  std::sort(nonzero.begin(), nonzero.end(), std::greater<double>());
  std::printf("\n(b) Rule usage frequency: %zu of 256 rules used at least once "
              "(paper: 100-150 used frequently)\n",
              nonzero.size());
  std::printf("    usage by rank (fraction of jobs): ");
  for (size_t rank : {0ul, 4ul, 9ul, 19ul, 39ul}) {
    if (rank < nonzero.size()) {
      std::printf("#%zu=%.0f%% ", rank + 1, 100.0 * nonzero[rank] / rt.count);
    }
  }
  std::printf("\n");

  // (c) rules per job
  Summary rpj = Summarize(rules_per_job);
  std::printf("\n(c) Rules used per job: mean %.1f  p50 %.0f  p90 %.0f  max %.0f "
              "(paper: typically 10-20)\n",
              rpj.mean, rpj.p50, rpj.p90, rpj.max);

  // (d) signature group sizes
  std::vector<int> sizes = groups.SizesDescending();
  std::printf("\n(d) Rule-signature job groups: %d groups over %d jobs\n", groups.num_groups(),
              groups.num_jobs());
  std::printf("    largest groups: ");
  for (size_t i = 0; i < sizes.size() && i < 8; ++i) std::printf("%d ", sizes[i]);
  std::printf("\n    (paper: several signatures with ~1000 jobs each at full scale; scale "
              "factor here is ~1/200)\n");
  int stats_exit = RunStatsModelComparison();
  Footer();
  return stats_exit;
}
