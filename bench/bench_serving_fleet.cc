// Replicated-serving chaos soak: extends bench_service_soak from one
// crash-restarting process to an N-replica fleet (service/replication.h).
//
// Each simulated day: a hashed churn event (kill a replica, or partition
// it from the leader), acknowledged mutations pushed through the leader
// while the victim is down, then zipf-skewed serving traffic fanned over
// group-sharded client threads (requests for group g run on thread
// RouteKey(g) % T, so the request stream per thread — and therefore every
// result — is identical for any thread count). The victim is restarted /
// healed at the day barrier and the fleet re-converges.
//
// Asserts, exiting non-zero on any violation:
//   * zero lost acknowledged mutations — a golden replay of the acked-op
//     journal into a fresh store must match every replica bit-for-bit;
//   * bit-identical final recommendation tables across all survivors
//     (CheckConvergence);
//   * bounded unavailability during failover — a probe of every serving
//     group immediately after each churn event must find 0 unavailable
//     (election and re-routing are synchronous);
//   * bit-for-bit reproducibility — the whole soak runs twice, at two
//     different client-thread counts, and the final state + counter
//     digest must be identical.
//
// Writes the machine-readable summary to BENCH_fleet.json in the cwd.
//
//   $ ./bench/bench_serving_fleet [days] [replicas] [jobs_per_day]
//   $ ./bench/bench_serving_fleet --smoke        # small CI-sized run
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/hash.h"
#include "service/replication.h"

using namespace qsteer;
using namespace qsteer::bench;

namespace {

constexpr int kGroups = 48;
constexpr uint64_t kSeed = 0xf1ee7;

RuleSignature Sig(int bit) {
  RuleSignature s;
  s.Set(bit);
  return s;
}

RuleConfig AltConfig(int n) {
  RuleConfig def = RuleConfig::Default();
  std::vector<int> toggleable;
  for (int id = 0; id < 256; ++id) {
    RuleConfig config = def;
    if (config.IsEnabled(id)) {
      config.Disable(id);
    } else {
      config.Enable(id);
    }
    if (config != def) toggleable.push_back(id);
  }
  RuleConfig config = def;
  int id = toggleable[static_cast<size_t>(n) % toggleable.size()];
  if (config.IsEnabled(id)) {
    config.Disable(id);
  } else {
    config.Enable(id);
  }
  return config;
}

/// Zipf-ish pick over [0, kGroups): group g has weight 1/(g+1). `x` is any
/// deterministic hash; the same x always picks the same group.
int ZipfGroup(uint64_t x) {
  static const std::vector<double> cum = [] {
    std::vector<double> c(kGroups);
    double total = 0.0;
    for (int g = 0; g < kGroups; ++g) {
      total += 1.0 / (g + 1);
      c[static_cast<size_t>(g)] = total;
    }
    return c;
  }();
  double u = static_cast<double>(Mix64(x) >> 11) * 0x1p-53 * cum.back();
  for (int g = 0; g < kGroups; ++g) {
    if (u <= cum[static_cast<size_t>(g)]) return g;
  }
  return kGroups - 1;
}

/// Acked-mutation journal entry; golden replay reconstructs ground truth
/// from these. Only mutations the fleet ACKNOWLEDGED (returned OK) are
/// recorded — losing anything else is the contract, not a violation.
struct AckedOp {
  int sig_bit;
  int config_n;
  double value;
  char type;  // 'L' learn, 'V' validation, 'O' outcome
};

struct SoakCounters {
  int64_t acked = 0;
  int64_t serves = 0;
  int64_t rerouted = 0;
  int64_t shed_stale = 0;
  int64_t ticked = 0;
  int64_t serve_failures = 0;
  int64_t probe_unavailable = 0;
  int64_t kills = 0;
  int64_t partitions = 0;
  int64_t failovers = 0;
  int64_t tail_ships = 0;
  int64_t snapshot_ships = 0;
  int64_t snapshot_installs = 0;
  int64_t checksum_failures = 0;
  double serve_seconds = 0.0;

  /// Everything that must be bit-identical across runs and thread counts
  /// (timing excluded).
  std::string Digest() const {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "acked=%lld serves=%lld rerouted=%lld shed=%lld ticked=%lld "
                  "fail=%lld probe=%lld kills=%lld parts=%lld failovers=%lld "
                  "tails=%lld snaps=%lld installs=%lld crc=%lld",
                  (long long)acked, (long long)serves, (long long)rerouted,
                  (long long)shed_stale, (long long)ticked, (long long)serve_failures,
                  (long long)probe_unavailable, (long long)kills, (long long)partitions,
                  (long long)failovers, (long long)tail_ships, (long long)snapshot_ships,
                  (long long)snapshot_installs, (long long)checksum_failures);
    return buf;
  }
};

struct SoakResult {
  SoakCounters counters;
  std::string final_state;           // leader's SerializeState after convergence
  std::vector<int64_t> replica_serves;
  std::vector<uint64_t> watermarks;
  bool converged = false;
  bool golden_match = false;
};

/// One full soak: seed, churn days, final convergence + golden replay.
/// Everything observable is a pure function of (days, replicas,
/// jobs_per_day) — `threads` and `dir` must not change any result.
SoakResult RunSoak(const std::string& dir, int days, int replicas, int jobs_per_day,
                   int threads) {
  SoakResult result;
  SoakCounters& c = result.counters;

  FleetOptions options;
  options.dir = dir;
  options.num_replicas = replicas;
  options.snapshot_interval = 32;
  options.sync = false;
  options.staleness_bound = 8;
  ReplicationFleet fleet(options);
  if (!fleet.Start().ok()) {
    std::fprintf(stderr, "fleet start failed\n");
    return result;
  }

  std::vector<AckedOp> acked;
  auto ack = [&](AckedOp op) {
    acked.push_back(op);
    ++c.acked;
  };

  // Seed: learn a steered candidate per group and validate it twice so the
  // group is promoted to serving. All improvements are negative (faster),
  // so no breaker ever opens and every serve stays a pure read — which is
  // what keeps results independent of the client-thread count.
  for (int g = 0; g < kGroups; ++g) {
    double improvement = -8.0 - (g % 7);
    if (fleet.LearnCandidate([&] {
               SteeringRecommender::CandidateObservation observation;
               observation.signature = Sig(g);
               observation.config = AltConfig(g);
               observation.improvement_pct = improvement;
               return observation;
             }())
            .ok()) {
      ack({g, g, improvement, 'L'});
    }
    for (int v = 0; v < 2; ++v) {
      if (fleet.ObserveValidation(Sig(g), improvement + 1.0).ok()) {
        ack({g, 0, improvement + 1.0, 'V'});
      }
    }
  }

  for (int day = 1; day <= days; ++day) {
    // Hashed churn: the victim is hash-picked; every 3rd day partitions it
    // (the replica keeps serving stale reads until shed), the rest kill it.
    uint64_t h = Mix64(kSeed ^ (static_cast<uint64_t>(day) << 20));
    uint32_t victim = static_cast<uint32_t>(h % static_cast<uint64_t>(replicas));
    bool partition = day % 3 == 0;
    if (partition) {
      fleet.SetPartitioned(victim, true);
      ++c.partitions;
    } else {
      if (!fleet.Kill(victim).ok()) {
        std::fprintf(stderr, "day %d: kill(%u) failed\n", day, victim);
        return result;
      }
      ++c.kills;
    }

    // Acked mutations while the victim is down/partitioned: more events
    // than the staleness bound, so a partitioned primary must shed.
    for (int m = 0; m < 12; ++m) {
      int g = ZipfGroup(Mix64(kSeed ^ 0xabcd ^ (static_cast<uint64_t>(day) << 8) ^
                              static_cast<uint64_t>(m)));
      double v = -1.0 - (m % 5);
      if (fleet.ObserveOutcome(Sig(g), v).ok()) ack({g, 0, v, 'O'});
    }

    // Bounded-unavailability probe: immediately after the churn event and
    // the mutation burst, every group must still be servable (election and
    // re-routing are synchronous — the bound is zero).
    for (int g = 0; g < kGroups; ++g) {
      ReplicationFleet::ServeResult probe;
      if (!fleet.Serve(Sig(g), &probe).ok()) ++c.probe_unavailable;
    }

    // Skewed serving traffic, group-sharded across client threads: thread
    // t handles exactly the requests whose group routes to shard t, so the
    // per-thread stream (and all counters) are thread-count invariant.
    std::vector<int> day_groups(static_cast<size_t>(jobs_per_day));
    for (int i = 0; i < jobs_per_day; ++i) {
      day_groups[static_cast<size_t>(i)] =
          ZipfGroup(kSeed ^ (static_cast<uint64_t>(day) << 32) ^ static_cast<uint64_t>(i));
    }
    std::vector<SoakCounters> per_thread(static_cast<size_t>(threads));
    auto serve_start = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        SoakCounters& mine = per_thread[static_cast<size_t>(t)];
        for (int g : day_groups) {
          if (ReplicationFleet::RouteKey(Sig(g)) % static_cast<uint64_t>(threads) !=
              static_cast<uint64_t>(t)) {
            continue;
          }
          ReplicationFleet::ServeResult serve;
          if (fleet.Serve(Sig(g), &serve).ok()) {
            ++mine.serves;
            if (serve.rerouted) ++mine.rerouted;
            if (serve.shed_stale) ++mine.shed_stale;
            if (serve.ticked) ++mine.ticked;
          } else {
            ++mine.serve_failures;
          }
        }
      });
    }
    for (std::thread& w : workers) w.join();
    c.serve_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - serve_start)
            .count();
    for (const SoakCounters& mine : per_thread) {
      c.serves += mine.serves;
      c.rerouted += mine.rerouted;
      c.shed_stale += mine.shed_stale;
      c.ticked += mine.ticked;
      c.serve_failures += mine.serve_failures;
    }

    // Day barrier: heal/restart the victim and re-converge the fleet.
    if (partition) {
      fleet.SetPartitioned(victim, false);
    } else if (!fleet.Restart(victim).ok()) {
      std::fprintf(stderr, "day %d: restart(%u) failed\n", day, victim);
      return result;
    }
    if (!fleet.CatchUpAll().ok()) {
      std::fprintf(stderr, "day %d: catch-up failed\n", day);
      return result;
    }
  }

  // Final verdicts.
  if (!fleet.CatchUpAll().ok()) return result;
  std::string divergence;
  result.converged = fleet.CheckConvergence(&divergence).ok();
  if (!result.converged) {
    std::fprintf(stderr, "survivor tables DIVERGED: %s\n", divergence.c_str());
  }

  // Golden replay: every acked mutation, replayed in ack order into a
  // fresh single-node store, must reproduce each replica bit-for-bit.
  DurableRecommenderStore golden_store;
  // qsteer-lint: allow(unchecked-status) pathless store opens in-memory and cannot fail
  (void)golden_store.Open();
  for (const AckedOp& op : acked) {
    switch (op.type) {
      case 'L': {
        SteeringRecommender::CandidateObservation observation;
        observation.signature = Sig(op.sig_bit);
        observation.config = AltConfig(op.config_n);
        observation.improvement_pct = op.value;
        golden_store.LearnCandidate(observation);
        break;
      }
      case 'V':
        golden_store.ObserveValidation(Sig(op.sig_bit), op.value);
        break;
      default:
        golden_store.ObserveOutcome(Sig(op.sig_bit), op.value);
        break;
    }
  }
  std::string golden = golden_store.SerializeState();
  result.golden_match = true;
  for (int i = 0; i < replicas; ++i) {
    if (fleet.replica_store(static_cast<uint32_t>(i))->SerializeState() != golden) {
      result.golden_match = false;
      std::fprintf(stderr, "replica %d LOST acked mutations (state != golden replay)\n", i);
    }
  }

  FleetStatus status = fleet.status();
  c.failovers = status.failovers;
  c.tail_ships = status.tail_ships;
  c.snapshot_ships = status.snapshot_ships;
  c.checksum_failures = status.transport_checksum_failures;
  for (const FleetStatus::Replica& replica : status.replicas) {
    c.snapshot_installs += replica.snapshot_installs;
    result.replica_serves.push_back(replica.serves);
    result.watermarks.push_back(replica.watermark);
  }
  result.final_state = fleet.replica_store(fleet.leader_id())->SerializeState();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  int days = positional.size() > 0 ? std::atoi(positional[0]) : (smoke ? 4 : 8);
  int replicas = positional.size() > 1 ? std::atoi(positional[1]) : 3;
  int jobs_per_day = positional.size() > 2 ? std::atoi(positional[2]) : (smoke ? 48 : 160);
  if (days < 1 || replicas < 2 || replicas > 16 || jobs_per_day < 1) {
    std::fprintf(stderr,
                 "usage: bench_serving_fleet [--smoke] [days>=1] [2<=replicas<=16] "
                 "[jobs_per_day>=1]\n");
    return 2;
  }
  int threads = BenchThreads();
  if (threads < 0) threads = static_cast<int>(std::thread::hardware_concurrency());
  if (threads < 1) threads = 2;

  Header("Replicated serving fleet: kill/partition churn, failover, zero acked loss",
         "recommendation serving must survive replica loss with no lost "
         "acknowledged learning (deployment concerns of paper §7)");
  std::printf("%d replicas, %d days x %d requests, %d client threads, churn every day\n\n",
              replicas, days, jobs_per_day, threads);

  std::filesystem::path root =
      std::filesystem::temp_directory_path() /
      ("qsteer_fleet_bench_" + std::to_string(static_cast<long>(::getpid())));
  std::filesystem::remove_all(root);

  // Run twice at two different client-thread counts: every counter and the
  // final state must be bit-identical (the determinism contract).
  SoakResult first = RunSoak((root / "run1").string(), days, replicas, jobs_per_day, threads);
  int threads2 = threads == 1 ? 2 : 1;
  SoakResult second =
      RunSoak((root / "run2").string(), days, replicas, jobs_per_day, threads2);
  bool deterministic = first.final_state == second.final_state &&
                       first.counters.Digest() == second.counters.Digest() &&
                       first.replica_serves == second.replica_serves;
  if (!deterministic) {
    std::fprintf(stderr, "NON-DETERMINISTIC: run1(T=%d) != run2(T=%d)\n  %s\n  %s\n",
                 threads, threads2, first.counters.Digest().c_str(),
                 second.counters.Digest().c_str());
  }

  const SoakCounters& c = first.counters;
  std::printf("%-36s %10lld\n", "acked mutations", (long long)c.acked);
  std::printf("%-36s %10lld\n", "requests served", (long long)c.serves);
  std::printf("%-36s %10lld   (down/over-budget primary)\n", "rerouted",
              (long long)c.rerouted);
  std::printf("%-36s %10lld   (stale follower -> leader)\n", "shed to leader",
              (long long)c.shed_stale);
  std::printf("%-36s %10lld\n", "serve failures", (long long)c.serve_failures);
  std::printf("%-36s %10lld   (bound: 0)\n", "unavailable during failover probes",
              (long long)c.probe_unavailable);
  std::printf("%-36s %10lld + %lld partitions\n", "churn events: kills",
              (long long)c.kills, (long long)c.partitions);
  std::printf("%-36s %10lld\n", "leader failovers", (long long)c.failovers);
  std::printf("%-36s %10lld tails, %lld snapshots (%lld installs)\n", "replication ships",
              (long long)c.tail_ships, (long long)c.snapshot_ships,
              (long long)c.snapshot_installs);
  std::printf("%-36s %10.0f\n", "serves/second",
              c.serve_seconds > 0 ? c.serves / c.serve_seconds : 0.0);
  std::printf("%-36s %10s\n", "zero lost acked mutations",
              first.golden_match ? "PASS" : "FAIL");
  std::printf("%-36s %10s\n", "survivor tables bit-identical",
              first.converged ? "PASS" : "FAIL");
  std::printf("%-36s %10s\n", "unavailability bounded",
              c.probe_unavailable == 0 && c.serve_failures == 0 ? "PASS" : "FAIL");
  std::printf("%-36s %10s   (T=%d vs T=%d)\n", "bit-identical across runs/threads",
              deterministic ? "PASS" : "FAIL", threads, threads2);
  Footer();

  FILE* json = std::fopen("BENCH_fleet.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"bench\": \"bench_serving_fleet\",\n");
    std::fprintf(json,
                 "  \"description\": \"N-replica serving fleet under zipf traffic with "
                 "hashed kill/partition churn: failover, catch-up (tail vs snapshot "
                 "install), staleness shedding, and the zero-lost-acked-mutations / "
                 "bit-identical-survivors / bounded-unavailability verdicts.\",\n");
    std::fprintf(json, "  \"command\": \"./build/bench/bench_serving_fleet %d %d %d\",\n",
                 days, replicas, jobs_per_day);
    std::fprintf(json, "  \"replicas\": %d,\n  \"days\": %d,\n  \"jobs_per_day\": %d,\n",
                 replicas, days, jobs_per_day);
    std::fprintf(json, "  \"client_threads\": [%d, %d],\n", threads, threads2);
    std::fprintf(json,
                 "  \"churn\": { \"kills\": %lld, \"partitions\": %lld, \"failovers\": "
                 "%lld },\n",
                 (long long)c.kills, (long long)c.partitions, (long long)c.failovers);
    std::fprintf(json,
                 "  \"serving\": { \"acked_mutations\": %lld, \"served\": %lld, "
                 "\"rerouted\": %lld, \"shed_stale\": %lld, \"failures\": %lld, "
                 "\"unavailable_probes\": %lld },\n",
                 (long long)c.acked, (long long)c.serves, (long long)c.rerouted,
                 (long long)c.shed_stale, (long long)c.serve_failures,
                 (long long)c.probe_unavailable);
    std::fprintf(json,
                 "  \"replication\": { \"tail_ships\": %lld, \"snapshot_ships\": %lld, "
                 "\"snapshot_installs\": %lld, \"checksum_failures\": %lld },\n",
                 (long long)c.tail_ships, (long long)c.snapshot_ships,
                 (long long)c.snapshot_installs, (long long)c.checksum_failures);
    std::fprintf(json, "  \"per_replica_serves\": [");
    for (size_t i = 0; i < first.replica_serves.size(); ++i) {
      std::fprintf(json, "%s%lld", i == 0 ? "" : ", ", (long long)first.replica_serves[i]);
    }
    std::fprintf(json, "],\n");
    std::fprintf(json, "  \"verdicts\": {\n");
    std::fprintf(json, "    \"zero_lost_acked_mutations\": %s,\n",
                 first.golden_match ? "true" : "false");
    std::fprintf(json, "    \"survivors_bit_identical\": %s,\n",
                 first.converged ? "true" : "false");
    std::fprintf(json, "    \"unavailability_bounded\": %s,\n",
                 c.probe_unavailable == 0 && c.serve_failures == 0 ? "true" : "false");
    std::fprintf(json, "    \"deterministic_across_runs_and_threads\": %s\n",
                 deterministic ? "true" : "false");
    std::fprintf(json, "  }\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_fleet.json\n");
  }

  std::filesystem::remove_all(root);
  bool pass = first.golden_match && first.converged && deterministic &&
              c.probe_unavailable == 0 && c.serve_failures == 0 && c.ticked == 0;
  return pass ? 0 : 1;
}
