// Figure 5: scatter of default-configuration estimated cost vs runtime over
// one day of Workload A — including the top-left corner of low-cost /
// high-runtime jobs whose cost-model assumptions were wrong (the §6.1
// selection heuristic).
#include <algorithm>
#include <cmath>

#include "bench/bench_util.h"
#include "core/pipeline.h"

using namespace qsteer;
using namespace qsteer::bench;

int main() {
  Header("Figure 5: estimated cost vs runtime, default configuration (Workload A)",
         "costs broadly track runtimes, but a visible low-cost/high-runtime corner "
         "exists where cost-model assumptions failed");

  Workload workload(BenchSpec('A'));
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());
  SteeringPipeline pipeline(&optimizer, &simulator, {});

  std::vector<double> costs, runtimes;
  for (const Job& job : workload.JobsForDay(3)) {
    Result<CompiledPlan> plan = optimizer.Compile(job, RuleConfig::Default());
    if (!plan.ok()) continue;
    costs.push_back(plan.value().est_cost);
    runtimes.push_back(simulator.Execute(job, plan.value().root).runtime);
  }

  // Rank correlation (Spearman-ish via Pearson of log values).
  double n = static_cast<double>(costs.size());
  double mx = 0, my = 0;
  std::vector<double> lx(costs.size()), ly(costs.size());
  for (size_t i = 0; i < costs.size(); ++i) {
    lx[i] = std::log(std::max(costs[i], 1e-3));
    ly[i] = std::log(std::max(runtimes[i], 1e-3));
    mx += lx[i];
    my += ly[i];
  }
  mx /= n;
  my /= n;
  double sxy = 0, sxx = 0, syy = 0;
  for (size_t i = 0; i < costs.size(); ++i) {
    sxy += (lx[i] - mx) * (ly[i] - my);
    sxx += (lx[i] - mx) * (lx[i] - mx);
    syy += (ly[i] - my) * (ly[i] - my);
  }
  double corr = sxy / std::sqrt(std::max(sxx * syy, 1e-12));

  std::printf("jobs: %zu   log-log correlation(cost, runtime) = %.2f\n\n", costs.size(),
              corr);

  // 2D occupancy grid (cost deciles x runtime deciles).
  auto decile = [](const std::vector<double>& values, double v) {
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    int d = 0;
    while (d < 9 && v > sorted[static_cast<size_t>((d + 1) * sorted.size() / 10)]) ++d;
    return d;
  };
  int grid[10][10] = {};
  for (size_t i = 0; i < costs.size(); ++i) {
    grid[decile(runtimes, runtimes[i])][decile(costs, costs[i])]++;
  }
  std::printf("occupancy (rows: runtime decile, high at top; cols: cost decile):\n");
  for (int r = 9; r >= 0; --r) {
    std::printf("  rt-d%d |", r);
    for (int c = 0; c < 10; ++c) std::printf("%4d", grid[r][c]);
    std::printf("\n");
  }
  std::printf("         +--------------------------------------- cost deciles 0..9\n");

  std::vector<int> corner = pipeline.SelectLowCostHighRuntime(costs, runtimes);
  std::printf("\nlow-cost/high-runtime corner (cost <= p40, runtime >= p70): %zu jobs "
              "(%.1f%% of the day) — the paper's Fig. 5 top-left anomaly pool.\n",
              corner.size(), 100.0 * corner.size() / costs.size());
  Footer();
  return 0;
}
