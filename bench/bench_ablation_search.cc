// §5.2 ablation: category-factorized configuration sampling vs uniform
// sampling over the whole span — the independence assumption shrinks the
// search space (2^5 -> 2^2 + 2^3 in the paper's example) and concentrates
// the budget on plan-changing combinations.
#include <cmath>
#include <set>

#include "bench/bench_util.h"
#include "core/config_search.h"
#include "core/independence.h"
#include "core/span.h"

using namespace qsteer;
using namespace qsteer::bench;

int main() {
  Header("Ablation: per-category configuration sampling vs uniform span sampling",
         "assuming rule-category independence reduces the search space (example: 2^5=32 "
         "-> 2^2+2^3=12) while finding the same distinct plans");

  Workload workload(BenchSpec('A'));
  Optimizer optimizer(&workload.catalog());

  int jobs_to_check = static_cast<int>(12 * BenchScale());
  double log2_naive_sum = 0, log2_fact_sum = 0, log2_meas_sum = 0;
  int measured_distinct = 0;
  int per_cat_distinct = 0, uniform_distinct = 0;
  int per_cat_compiled = 0, uniform_compiled = 0;
  int budget = 100;

  std::printf("%-26s %8s %12s %12s %12s | %9s %9s %9s\n", "job", "span", "log2naive",
              "log2categ", "log2meas", "percat", "uniform", "measured");
  for (int t = 0; t < jobs_to_check; ++t) {
    Job job = workload.MakeJob(t, 4);
    SpanResult span = ComputeJobSpan(optimizer, job);
    SearchSpaceSize size = ComputeSearchSpaceSize(span.span);
    log2_naive_sum += size.log2_naive;
    log2_fact_sum += size.log2_factorized;

    auto distinct_plans = [&](bool per_category, int* compiled) {
      ConfigSearchOptions options;
      options.max_configs = budget;
      options.per_category = per_category;
      options.seed = 31 + static_cast<uint64_t>(t);
      std::set<uint64_t> plans;
      for (const RuleConfig& config : GenerateCandidateConfigs(span.span, options)) {
        Result<CompiledPlan> plan = optimizer.Compile(job, config);
        if (!plan.ok()) continue;
        ++*compiled;
        plans.insert(PlanHash(plan.value().root, false));
      }
      return static_cast<int>(plans.size());
    };
    int pc_compiled = 0, un_compiled = 0;
    int pc = distinct_plans(true, &pc_compiled);
    int un = distinct_plans(false, &un_compiled);
    per_cat_distinct += pc;
    uniform_distinct += un;
    per_cat_compiled += pc_compiled;
    uniform_compiled += un_compiled;

    // §8 extension: empirically measured independent groups instead of the
    // category assumption.
    IndependenceResult independence = DiscoverIndependentGroups(optimizer, job, span.span);
    log2_meas_sum += independence.log2_grouped;
    ConfigSearchOptions grouped_options;
    grouped_options.max_configs = budget;
    grouped_options.seed = 31 + static_cast<uint64_t>(t);
    std::set<uint64_t> grouped_plans;
    for (const RuleConfig& config : GenerateGroupedConfigs(independence, grouped_options)) {
      Result<CompiledPlan> plan = optimizer.Compile(job, config);
      if (plan.ok()) grouped_plans.insert(PlanHash(plan.value().root, false));
    }
    int meas = static_cast<int>(grouped_plans.size());
    measured_distinct += meas;

    std::printf("%-26s %8d %12.1f %12.1f %12.1f | %9d %9d %9d\n",
                job.name.substr(0, 26).c_str(), span.span.Count(), size.log2_naive,
                size.log2_factorized, independence.log2_grouped, pc, un, meas);
  }

  std::printf("\naverage search-space size: 2^%.1f naive vs 2^%.1f category-factorized vs "
              "2^%.1f measured-independence\n",
              log2_naive_sum / jobs_to_check, log2_fact_sum / jobs_to_check,
              log2_meas_sum / jobs_to_check);
  std::printf("distinct plans found with a %d-config budget: per-category %d, uniform %d, "
              "measured groups %d\n",
              budget, per_cat_distinct, uniform_distinct, measured_distinct);
  std::printf("compile success: per-category %d, uniform %d\n", per_cat_compiled,
              uniform_compiled);
  Footer();
  return 0;
}
