// Chaos soak driver for the crash-safe steering service.
//
// Runs many simulated serving "days" through the async service against a
// flaky cluster, crashing (Kill: no snapshot, queued requests failed) and
// restarting the service at hashed injection points mid-day. After every
// crash the recovered recommendation table must be bit-identical to the
// pre-crash store — the WAL-replay property the service tests assert, here
// soaked across many crash points under real concurrent load. A final
// clean shutdown is followed by one more cold reopen to confirm the
// snapshot path round-trips the end state byte-for-byte.
//
// Reports throughput, admission-control behavior under the bounded queue,
// recovery statistics (WAL replay sizes, snapshot cadence), and the
// bit-identity verdicts. Exits non-zero on any mismatch, making it usable
// as a long-running CI soak.
//
//   $ ./bench/bench_service_soak [days] [crashes_per_day] [jobs_per_day]
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/hash.h"
#include "service/steering_service.h"

using namespace qsteer;
using namespace qsteer::bench;

namespace {

ServiceOptions SoakOptions(const std::string& dir) {
  ServiceOptions options;
  options.num_workers = BenchThreads() > 0 ? BenchThreads() : 2;
  options.queue_capacity = 64;
  options.store.dir = dir;
  options.store.snapshot_interval = 32;
  options.store.sync = false;  // soak speed; rename atomicity still holds
  return options;
}

struct SoakStats {
  int64_t submitted = 0;
  int64_t served = 0;
  int64_t failed = 0;
  int64_t shed = 0;
  int64_t queue_full = 0;
  int64_t crashes = 0;
  int64_t wal_replayed = 0;
  int64_t wal_skipped = 0;
  int64_t identity_checks = 0;
  int64_t identity_failures = 0;
};

/// Submits jobs[begin, end) without waiting; replies are collected later —
/// possibly after a crash, so the service dies with work still queued and
/// in flight.
void SubmitSlice(SteeringService& service, const std::vector<Job>& jobs, size_t begin,
                 size_t end, std::vector<std::future<ServiceReply>>& replies,
                 SoakStats& stats) {
  for (size_t i = begin; i < end && i < jobs.size(); ++i) {
    ServiceRequest request;
    request.job = jobs[i];
    std::future<ServiceReply> reply;
    switch (service.Submit(request, &reply)) {
      case AdmitResult::kAccepted:
        ++stats.submitted;
        replies.push_back(std::move(reply));
        break;
      case AdmitResult::kShedDeadline:
        ++stats.shed;
        break;
      case AdmitResult::kQueueFull:
        ++stats.queue_full;
        break;
      case AdmitResult::kNotRunning:
        break;
    }
  }
}

/// Drains collected replies. Crash-dropped requests come back as errors;
/// they were never acknowledged, so losing them is the contract, not a
/// violation.
void CollectReplies(std::vector<std::future<ServiceReply>>& replies, SoakStats& stats) {
  for (std::future<ServiceReply>& future : replies) {
    ServiceReply reply = future.get();
    if (reply.status.ok()) {
      ++stats.served;
    } else {
      ++stats.failed;
    }
  }
  replies.clear();
}

}  // namespace

int main(int argc, char** argv) {
  int days = argc > 1 ? std::atoi(argv[1]) : 6;
  int crashes_per_day = argc > 2 ? std::atoi(argv[2]) : 2;
  int jobs_per_day = argc > 3 ? std::atoi(argv[3]) : 40;
  if (days < 1 || crashes_per_day < 0 || jobs_per_day < 2) {
    std::fprintf(stderr,
                 "usage: bench_service_soak [days>=1] [crashes_per_day>=0] "
                 "[jobs_per_day>=2]\n");
    return 2;
  }

  Header("Service chaos soak: crash/restart under load, bit-identical recovery",
         "acknowledged learning survives arbitrary process crashes (WAL + "
         "snapshot recovery; deployment concerns of paper §7)");

  Workload workload(BenchSpec('B'));
  Optimizer optimizer(&workload.catalog());
  SimulatorOptions sim_options;
  sim_options.fault_profile = FaultProfile::Flaky(1.0);
  ExecutionSimulator simulator(&workload.catalog(), sim_options);

  std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("qsteer_service_soak_" + std::to_string(static_cast<long>(::getpid())));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  auto service = std::make_unique<SteeringService>(&optimizer, &simulator,
                                                   SoakOptions(dir.string()));
  if (!service->Start().ok()) {
    std::fprintf(stderr, "start failed\n");
    return 1;
  }

  // Seed learning: analyze a slice of day 1 offline and validate the
  // discovered candidates so serving has steered plans to recommend.
  SteeringPipeline pipeline(&optimizer, &simulator, {});
  int learned = 0;
  for (const Job& job : workload.JobsForDay(1)) {
    if (learned >= jobs_per_day / 2) break;
    ++learned;
    service->store().LearnFromAnalysis(pipeline.AnalyzeJob(job));
  }
  for (const SteeringRecommender::ValidationRequest& request :
       service->store().PendingValidations()) {
    service->store().ObserveValidation(request.signature, -10.0);
    service->store().ObserveValidation(request.signature, -10.0);
  }
  std::printf("Seeded %d serving groups from %d analyzed jobs; soaking %d days "
              "x %d jobs, %d crash(es)/day.\n\n",
              service->store().num_serving(), learned, days, jobs_per_day,
              crashes_per_day);

  SoakStats stats;
  constexpr uint64_t kSeed = 0xc4a05;
  auto start = std::chrono::steady_clock::now();
  for (int day = 2; day < 2 + days; ++day) {
    std::vector<Job> jobs = workload.JobsForDay(day);
    if (static_cast<int>(jobs.size()) > jobs_per_day) jobs.resize(jobs_per_day);
    // Hashed injection points: where in the day this service incarnation dies.
    std::vector<size_t> cuts;
    for (int k = 0; k < crashes_per_day; ++k) {
      cuts.push_back(Mix64(kSeed ^ (static_cast<uint64_t>(day) << 16) ^
                           static_cast<uint64_t>(k)) %
                     (jobs.size() + 1));
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.push_back(jobs.size());

    size_t at = 0;
    std::vector<std::future<ServiceReply>> replies;
    for (size_t c = 0; c < cuts.size(); ++c) {
      SubmitSlice(*service, jobs, at, cuts[c], replies, stats);
      at = cuts[c];
      if (c + 1 == cuts.size()) {
        CollectReplies(replies, stats);  // day finished without another crash
        break;
      }

      // Let the workers chew through half the outstanding requests, then
      // CRASH with the rest still queued/in flight: no snapshot, queued
      // requests fail, then recover and verify.
      for (size_t i = 0; i < replies.size() / 2; ++i) replies[i].wait();
      service->Kill();
      CollectReplies(replies, stats);  // mixture of served and crash-failed
      ++stats.crashes;
      std::string pre_crash = service->store().SerializeState();
      service = std::make_unique<SteeringService>(&optimizer, &simulator,
                                                  SoakOptions(dir.string()));
      if (!service->Start().ok()) {
        std::fprintf(stderr, "day %d: recovery failed\n", day);
        return 1;
      }
      const DurableRecommenderStore::RecoveryInfo& recovery = service->store().recovery();
      stats.wal_replayed += recovery.wal_records_replayed;
      stats.wal_skipped += recovery.wal_records_skipped;
      ++stats.identity_checks;
      if (service->store().SerializeState() != pre_crash) {
        ++stats.identity_failures;
        std::fprintf(stderr, "day %d crash %zu: recovered state DIVERGED\n", day, c);
      }
    }
  }
  double elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  // Clean shutdown (snapshot), then one cold reopen: the snapshot path must
  // round-trip the final state byte-for-byte.
  Status stopped = service->Shutdown();
  ServiceStatusSnapshot status = service->status();
  std::string final_state = service->store().SerializeState();
  DurableRecommenderStore reopened([&] {
    DurableStoreOptions store_options;
    store_options.dir = dir.string();
    store_options.sync = false;
    return store_options;
  }());
  ++stats.identity_checks;
  bool reopen_matches = reopened.Open().ok() && reopened.SerializeState() == final_state;
  if (!reopen_matches) {
    ++stats.identity_failures;
    std::fprintf(stderr, "final cold reopen DIVERGED from shutdown state\n");
  }

  std::printf("%-36s %10lld\n", "requests submitted", (long long)stats.submitted);
  std::printf("%-36s %10lld\n", "requests served", (long long)stats.served);
  std::printf("%-36s %10lld   (crash-dropped; never acknowledged)\n",
              "requests failed", (long long)stats.failed);
  std::printf("%-36s %10lld\n", "shed (deadline)", (long long)stats.shed);
  std::printf("%-36s %10lld\n", "rejected (queue full)", (long long)stats.queue_full);
  std::printf("%-36s %10lld\n", "crashes injected", (long long)stats.crashes);
  std::printf("%-36s %10lld\n", "WAL records replayed", (long long)stats.wal_replayed);
  std::printf("%-36s %10lld   (snapshot-covered after crash-in-window)\n",
              "WAL records skipped", (long long)stats.wal_skipped);
  std::printf("%-36s %10lld\n", "snapshots taken (final incarnation)",
              (long long)status.snapshots_taken);
  std::printf("%-36s %10.1f\n", "requests/second", elapsed > 0 ? stats.served / elapsed : 0.0);
  std::printf("%-36s %10lld / %lld\n", "bit-identity checks passed",
              (long long)(stats.identity_checks - stats.identity_failures),
              (long long)stats.identity_checks);
  std::printf("%-36s %10s\n", "clean final shutdown",
              stopped.ok() ? "ok" : stopped.ToString().c_str());
  Footer();

  std::filesystem::remove_all(dir);
  return stats.identity_failures == 0 ? 0 : 1;
}
