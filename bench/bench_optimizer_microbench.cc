// Microbenchmarks (google-benchmark): compilation latency, span computation,
// signature operations, and simulation throughput. These bound the offline
// pipeline's cost: the paper's pipeline recompiles up to 1000 configurations
// per analyzed job, so Compile() latency is the budget driver.
#include <benchmark/benchmark.h>

#include "core/config_search.h"
#include "core/span.h"
#include "exec/simulator.h"
#include "workload/generator.h"

namespace qsteer {
namespace {

WorkloadSpec MicroSpec() {
  WorkloadSpec spec;
  spec.name = "M";
  spec.seed = 555;
  spec.num_templates = 40;
  spec.num_stream_sets = 24;
  return spec;
}

const Workload& SharedWorkload() {
  static const Workload* workload = new Workload(MicroSpec());
  return *workload;
}

void BM_CompileDefault(benchmark::State& state) {
  const Workload& workload = SharedWorkload();
  Optimizer optimizer(&workload.catalog());
  Job job = workload.MakeJob(static_cast<int>(state.range(0)), 1);
  RuleConfig config = RuleConfig::Default();
  for (auto _ : state) {
    Result<CompiledPlan> plan = optimizer.Compile(job, config);
    benchmark::DoNotOptimize(plan);
  }
  state.counters["operators"] = job.NumOperators();
}
BENCHMARK(BM_CompileDefault)->Arg(0)->Arg(1)->Arg(3)->Arg(5)->Arg(21);

void BM_CompileAllEnabled(benchmark::State& state) {
  const Workload& workload = SharedWorkload();
  Optimizer optimizer(&workload.catalog());
  Job job = workload.MakeJob(1, 1);
  RuleConfig config = RuleConfig::AllEnabled();
  for (auto _ : state) {
    Result<CompiledPlan> plan = optimizer.Compile(job, config);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_CompileAllEnabled);

void BM_ComputeJobSpan(benchmark::State& state) {
  const Workload& workload = SharedWorkload();
  Optimizer optimizer(&workload.catalog());
  Job job = workload.MakeJob(2, 1);
  for (auto _ : state) {
    SpanResult span = ComputeJobSpan(optimizer, job);
    benchmark::DoNotOptimize(span);
  }
}
BENCHMARK(BM_ComputeJobSpan);

void BM_GenerateCandidates(benchmark::State& state) {
  BitVector256 span = BitVector256::FromIndices(
      {37, 38, 43, 83, 87, 94, 99, 104, 108, 224, 226, 228, 240, 241});
  ConfigSearchOptions options;
  options.max_configs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto configs = GenerateCandidateConfigs(span, options);
    benchmark::DoNotOptimize(configs);
  }
}
BENCHMARK(BM_GenerateCandidates)->Arg(100)->Arg(1000);

void BM_SimulateExecution(benchmark::State& state) {
  const Workload& workload = SharedWorkload();
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());
  Job job = workload.MakeJob(1, 1);
  CompiledPlan plan = optimizer.Compile(job, RuleConfig::Default()).value();
  uint64_t nonce = 0;
  for (auto _ : state) {
    ExecMetrics metrics = simulator.Execute(job, plan.root, ++nonce);
    benchmark::DoNotOptimize(metrics);
  }
}
BENCHMARK(BM_SimulateExecution);

void BM_SignatureHashAndDiff(benchmark::State& state) {
  RuleSignature a = BitVector256::FromIndices({0, 1, 2, 5, 9, 87, 224, 240});
  RuleSignature b = BitVector256::FromIndices({0, 1, 2, 5, 9, 83, 228, 241});
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Hash());
    benchmark::DoNotOptimize(a.AndNot(b).ToIndices());
  }
}
BENCHMARK(BM_SignatureHashAndDiff);

void BM_TemplateHash(benchmark::State& state) {
  const Workload& workload = SharedWorkload();
  Job job = workload.MakeJob(3, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(job.TemplateHash());
  }
}
BENCHMARK(BM_TemplateHash);

}  // namespace
}  // namespace qsteer

BENCHMARK_MAIN();
