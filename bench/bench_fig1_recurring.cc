// Figure 1: one discovered rule configuration applied to recurring jobs of
// the same rule-signature job group across a week — consistent large
// improvements without regressions (the paper's motivating example: 65
// Workload A jobs, 50-90% faster).
#include <algorithm>
#include <set>

#include "bench/bench_util.h"
#include "core/job_groups.h"
#include "exec/simulator.h"

using namespace qsteer;
using namespace qsteer::bench;

int main() {
  Header("Figure 1: one configuration, one job group, one week (Workload A)",
         "65 production jobs improve 50-90% under the same rule configuration "
         "across a week");

  Workload workload(BenchSpec('A'));
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());

  // Size of each signature group on day 1, so the base job can come from a
  // populous group (the paper's Figure 1 group held 65 jobs over the week).
  JobGroupIndex day1_groups;
  for (const Job& job : workload.JobsForDay(1)) {
    Result<CompiledPlan> plan = optimizer.Compile(job, RuleConfig::Default());
    if (plan.ok()) day1_groups.Add(plan.value().signature);
  }

  // Discover a strong configuration on day 1 (§6 pipeline on a few jobs).
  std::vector<JobAnalysis> analyses =
      RunAbAnalysis(workload, optimizer, simulator, static_cast<int>(24 * BenchScale()),
                    /*day=*/1);
  const JobAnalysis* base = nullptr;
  double best_score = 0.0;
  for (const JobAnalysis& analysis : analyses) {
    double change = analysis.BestRuntimeChangePct();
    if (change > -15.0) continue;  // need a solid improvement to extrapolate
    int group = day1_groups.Find(analysis.default_plan.signature);
    int group_size = group >= 0 ? day1_groups.group_size(group) : 1;
    double score = -change * group_size;  // improvement x group population
    if (base == nullptr || score > best_score) {
      base = &analysis;
      best_score = score;
    }
  }
  if (base == nullptr) {
    for (const JobAnalysis& analysis : analyses) {
      if (base == nullptr || analysis.BestRuntimeChangePct() < base->BestRuntimeChangePct()) {
        base = &analysis;
      }
    }
  }
  if (base == nullptr || base->BestBy(Metric::kRuntime) == nullptr) {
    std::printf("no base job found\n");
    return 1;
  }
  const ConfigOutcome* best = base->BestBy(Metric::kRuntime);
  std::printf("base job: %s (day 1), best config improves %+.0f%%\n", base->job.name.c_str(),
              base->BestRuntimeChangePct());
  RuleSignature group_signature = base->default_plan.signature;
  std::printf("extrapolating to the base job's rule-signature job group (Definition 6.2)\n"
              "across days 1..7 — every job whose default signature matches:\n\n");

  // §6.4: the extrapolation granularity is the rule signature, not the
  // template — jobs from other templates with the same signature share the
  // optimizer code path and benefit from the same configuration. The week of
  // (compile default, compile steered, A/B-execute) treatments is
  // independent per job, so it fans out over a pool; rows are merged in
  // (day, job) order and are identical for any thread count.
  struct WeekRow {
    bool in_group = false;
    int day = 0;
    std::string name;
    int template_index = -1;
    double default_runtime = 0.0;
    double steered_runtime = 0.0;
  };
  std::vector<Job> week_jobs;
  std::vector<int> week_days;
  for (int day = 1; day <= 7; ++day) {
    for (Job& job : workload.JobsForDay(day)) {
      week_jobs.push_back(job);
      week_days.push_back(day);
    }
  }
  std::unique_ptr<ThreadPool> pool;
  if (BenchThreads() != 0) pool = std::make_unique<ThreadPool>(BenchThreads());
  std::vector<WeekRow> rows = ParallelMap<WeekRow>(
      pool.get(), static_cast<int64_t>(week_jobs.size()), [&](int64_t i) {
        const Job& job = week_jobs[static_cast<size_t>(i)];
        int day = week_days[static_cast<size_t>(i)];
        WeekRow row;
        Result<CompiledPlan> default_plan = optimizer.Compile(job, RuleConfig::Default());
        if (!default_plan.ok() || default_plan.value().signature != group_signature) return row;
        Result<CompiledPlan> steered_plan = optimizer.Compile(job, best->config);
        if (!steered_plan.ok()) return row;
        row.in_group = true;
        row.day = day;
        row.name = job.name;
        row.template_index = job.template_index;
        row.default_runtime =
            simulator.Execute(job, default_plan.value().root, static_cast<uint64_t>(day))
                .runtime;
        row.steered_runtime =
            simulator.Execute(job, steered_plan.value().root, static_cast<uint64_t>(day) + 99)
                .runtime;
        return row;
      });

  std::vector<double> changes;
  int templates_covered = 0;
  std::set<int> seen_templates;
  std::printf("%4s %-30s %12s %12s %8s\n", "day", "job", "default_s", "steered_s", "change");
  for (const WeekRow& row : rows) {
    if (!row.in_group) continue;
    double change =
        (row.steered_runtime - row.default_runtime) / row.default_runtime * 100.0;
    changes.push_back(change);
    if (seen_templates.insert(row.template_index).second) ++templates_covered;
    std::printf("%4d %-30s %12.1f %12.1f %+7.1f%%\n", row.day, row.name.c_str(),
                row.default_runtime, row.steered_runtime, change);
  }
  std::printf("\n(group spans %d distinct templates)\n", templates_covered);

  int improved = 0, regressed = 0;
  double best_change = 0;
  for (double c : changes) {
    if (c < -3.0) ++improved;
    if (c > 3.0) ++regressed;
    best_change = std::min(best_change, c);
  }
  std::printf("\n%zu recurring jobs: %d improved (best %+.0f%%), %d regressed.\n",
              changes.size(), improved, best_change, regressed);
  if (regressed == 0) {
    std::printf("-> the paper's Figure 1 ideal: the configuration helps the whole group all\n"
                "   week with no regressions.\n");
  } else {
    std::printf("-> the group mixes improvements and regressions across its templates — the\n"
                "   'more common scenario' of §6.4 that motivates the learned selection of\n"
                "   §7 (Figure 1's ideal no-regression groups also exist; which case a seed\n"
                "   produces depends on the group's template mix).\n");
  }
  Footer();
  return 0;
}
