// Figure 4: estimated cost of the default configuration vs all candidate
// configurations for 15 randomly selected queries — despite the cascades
// guarantee, candidates can have LOWER estimated costs, because estimates
// are not comparable across configurations (§5.3).
#include <algorithm>

#include "bench/bench_util.h"
#include "core/config_search.h"
#include "core/span.h"

using namespace qsteer;
using namespace qsteer::bench;

int main() {
  Header("Figure 4: default vs candidate estimated costs, 15 random Workload A queries",
         "for most queries some recompiled plans have lower estimated costs than the "
         "default — 'paradoxical' under the cascades lowest-cost guarantee");

  Workload workload(BenchSpec('A'));
  Optimizer optimizer(&workload.catalog());
  int configs_per_job = static_cast<int>(300 * BenchScale());

  std::printf("%-24s %12s | %10s %10s %10s | %8s %8s\n", "query", "default", "min_cand",
              "median", "max_cand", "#cands", "#cheaper");

  Pcg32 rng(4242);
  std::vector<Job> jobs = workload.JobsForDay(3);
  int with_cheaper = 0, shown = 0;
  for (int pick = 0; pick < 15 && !jobs.empty(); ++pick) {
    const Job& job = jobs[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int>(jobs.size()) - 1))];
    Result<CompiledPlan> default_plan = optimizer.Compile(job, RuleConfig::Default());
    if (!default_plan.ok()) continue;

    SpanResult span = ComputeJobSpan(optimizer, job);
    ConfigSearchOptions search;
    search.max_configs = configs_per_job;
    search.seed = 1000 + static_cast<uint64_t>(pick);
    std::vector<double> costs;
    int cheaper = 0;
    for (const RuleConfig& config : GenerateCandidateConfigs(span.span, search)) {
      Result<CompiledPlan> plan = optimizer.Compile(job, config);
      if (!plan.ok()) continue;
      costs.push_back(plan.value().est_cost);
      if (plan.value().est_cost < default_plan.value().est_cost * 0.999) ++cheaper;
    }
    if (costs.empty()) continue;
    std::sort(costs.begin(), costs.end());
    std::printf("%-24s %12.1f | %10.1f %10.1f %10.1f | %8zu %8d\n",
                job.name.substr(0, 24).c_str(), default_plan.value().est_cost, costs.front(),
                costs[costs.size() / 2], costs.back(), costs.size(), cheaper);
    if (cheaper > 0) ++with_cheaper;
    ++shown;
  }
  std::printf("\n%d of %d sampled queries have at least one candidate with an estimated "
              "cost below the default's (the Figure 4 phenomenon).\n",
              with_cheaper, shown);
  Footer();
  return 0;
}
