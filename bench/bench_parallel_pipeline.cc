// Parallel-pipeline scaling bench: wall-clock of the §5-§6 candidate
// recompilation + A/B execution for one job at 200 candidates, serial and
// at 1/2/4/N pool workers, verifying bit-identical analyses throughout and
// reporting the pool counters. Machine-readable baseline in
// BENCH_parallel.json (regenerate with this binary when the pipeline's
// parallel stages change).
//
// Budgeted mode (--budget=N [--rank]) runs the same sweep with a compile
// budget (and optionally the candidate ranker) active: the determinism
// contract extends to budgeted analyses — the selected slice is identical
// for every worker count.
//
//   $ ./bench/bench_parallel_pipeline [max_workers] [--budget=N] [--rank]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "core/pipeline.h"

using namespace qsteer;
using namespace qsteer::bench;

namespace {

double SecondsOf(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

struct AnalysisDigest {
  size_t executed = 0;
  double best_change = 0.0;
  double default_runtime = 0.0;
  int recompiled_ok = 0;
  int candidates_compiled = 0;
  int budget_skipped = 0;
};

AnalysisDigest DigestOf(const JobAnalysis& analysis) {
  AnalysisDigest d;
  d.executed = analysis.executed.size();
  d.best_change = analysis.BestRuntimeChangePct();
  d.default_runtime = analysis.default_metrics.runtime;
  d.recompiled_ok = analysis.recompiled_ok;
  d.candidates_compiled = analysis.candidates_compiled;
  d.budget_skipped = analysis.budget_skipped;
  return d;
}

bool SameDigest(const AnalysisDigest& a, const AnalysisDigest& b) {
  return a.executed == b.executed && a.best_change == b.best_change &&
         a.default_runtime == b.default_runtime && a.recompiled_ok == b.recompiled_ok &&
         a.candidates_compiled == b.candidates_compiled &&
         a.budget_skipped == b.budget_skipped;
}

}  // namespace

int main(int argc, char** argv) {
  Header("Parallel pipeline scaling: one job, 200 candidate recompilations",
         "the offline discovery loop is embarrassingly parallel across candidates "
         "(§5 ran it as a massively parallel batch job)");

  int max_workers = 0;
  int compile_budget = 0;
  bool rank_candidates = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--budget=", 9) == 0) {
      compile_budget = std::atoi(argv[i] + 9);
    } else if (std::strcmp(argv[i], "--rank") == 0) {
      rank_candidates = true;
    } else {
      max_workers = std::atoi(argv[i]);
    }
  }
  if (max_workers <= 0) {
    max_workers = static_cast<int>(std::thread::hardware_concurrency());
    if (max_workers <= 0) max_workers = 4;
  }

  Workload workload(BenchSpec('B'));
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());
  Job job = workload.MakeJob(4, /*day=*/3);

  PipelineOptions base;
  base.max_candidate_configs = 200;
  base.configs_to_execute = 10;
  base.compile_budget = compile_budget;
  base.rank_candidates = rank_candidates;
  if (compile_budget > 0 || rank_candidates) {
    std::printf("budgeted mode: compile_budget=%d rank_candidates=%s\n", compile_budget,
                rank_candidates ? "on" : "off");
  }

  // Thread counts to measure: serial, then 1/2/4/.../max hardware workers.
  std::vector<int> worker_counts = {0, 1};
  for (int w = 2; w < max_workers; w *= 2) worker_counts.push_back(w);
  if (worker_counts.back() != max_workers && max_workers > 1) {
    worker_counts.push_back(max_workers);
  }

  std::printf("hardware threads: %u; job: %s (%d operators)\n\n",
              std::thread::hardware_concurrency(), job.name.c_str(), job.NumOperators());
  std::printf("%8s %10s %9s %9s %12s %11s\n", "workers", "wall_s", "speedup", "tasks",
              "utilization", "identical");

  double serial_seconds = 0.0;
  AnalysisDigest serial_digest;
  bool all_identical = true;
  for (int workers : worker_counts) {
    PipelineOptions options = base;
    options.num_threads = workers;
    SteeringPipeline pipeline(&optimizer, &simulator, options);
    // Warm-up compile so first-touch catalog/statistics costs are excluded.
    pipeline.Recompile(job);

    JobAnalysis analysis;
    double seconds = SecondsOf([&] { analysis = pipeline.AnalyzeJob(job); });
    AnalysisDigest digest = DigestOf(analysis);
    if (workers == 0) {
      serial_seconds = seconds;
      serial_digest = digest;
    }
    bool identical = SameDigest(serial_digest, digest);
    all_identical = all_identical && identical;

    ThreadPoolStats stats = pipeline.pool_stats();
    std::printf("%8d %10.3f %8.2fx %9lld %10.0f%% %11s\n", workers, seconds,
                seconds > 0 ? serial_seconds / seconds : 0.0,
                static_cast<long long>(stats.tasks_submitted), stats.Utilization() * 100.0,
                identical ? "yes" : "NO");
  }

  std::printf("\nresults bit-identical across all worker counts: %s\n",
              all_identical ? "yes" : "NO — determinism contract violated");
  std::printf("(speedup saturates at the machine's core count; on a single-core host all\n"
              " rows measure scheduling overhead only — see BENCH_parallel.json notes)\n");
  Footer();
  return all_identical ? 0 : 1;
}
