// Table 4: RuleDiff for sample jobs with the largest improvements — which
// rule-usage changes produced the win (disabling is crucial; alternative
// rules like UnionAllToUnionAll vs UnionAllToVirtualDataset appear).
#include <algorithm>

#include "bench/bench_util.h"
#include "exec/simulator.h"
#include "optimizer/rule_registry.h"

using namespace qsteer;
using namespace qsteer::bench;

int main() {
  Header("Table 4: RuleDiff of the best configurations for sample jobs",
         "wins of -70..-96%; many rules only in the default plan (disabling is "
         "crucial); alternative-rule motifs (UnionAllToUnionAll -> VirtualDataset, "
         "JoinImpl2 -> HashJoinImpl1); off-by-default rules appear in best plans");

  struct Entry {
    std::string job;
    double change;
    RuleDiff diff;
  };
  std::vector<Entry> entries;

  for (char which : {'A', 'B'}) {
    Workload workload(BenchSpec(which));
    Optimizer optimizer(&workload.catalog());
    ExecutionSimulator simulator(&workload.catalog());
    std::vector<JobAnalysis> analyses = RunAbAnalysis(
        workload, optimizer, simulator, static_cast<int>(24 * BenchScale()));
    for (const JobAnalysis& analysis : analyses) {
      const ConfigOutcome* best = analysis.BestBy(Metric::kRuntime);
      if (best == nullptr) continue;
      double change = analysis.BestRuntimeChangePct();
      if (change < -15.0) {
        entries.push_back({analysis.job.name, change, best->diff_vs_default});
      }
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.change < b.change; });

  const RuleRegistry& registry = RuleRegistry::Instance();
  std::printf("%-26s %9s  %s\n", "Job", "%change", "RuleDiff");
  int off_by_default_in_best = 0, disable_dominated = 0;
  for (size_t i = 0; i < entries.size() && i < 8; ++i) {
    const Entry& e = entries[i];
    std::printf("%-26s %+8.0f%%\n", e.job.substr(0, 26).c_str(), e.change);
    std::printf("    rules only in default plan: ");
    for (RuleId id : e.diff.only_in_default) std::printf("%s ", registry.name(id).c_str());
    std::printf("\n    rules only in best plan:    ");
    for (RuleId id : e.diff.only_in_new) {
      std::printf("%s ", registry.name(id).c_str());
      if (CategoryOfRule(id) == RuleCategory::kOffByDefault) ++off_by_default_in_best;
    }
    std::printf("\n");
    if (e.diff.only_in_default.size() > e.diff.only_in_new.size()) ++disable_dominated;
  }
  std::printf("\nmotifs: %d of the top diffs have more rules removed than added "
              "('disabling rules is crucial'); off-by-default rules appear %d times in "
              "best plans.\n",
              disable_dominated, off_by_default_in_best);
  Footer();
  return 0;
}
