// §6.2 extension: separate learned models per metric ("we could potentially
// have separate models that optimize for each metric individually"). Each
// model is trained on the same job-group dataset but targets a different
// metric; every model should win its own metric on held-out jobs.
#include "bench/bench_util.h"
#include "core/learned_steering.h"
#include "core/span.h"

using namespace qsteer;
using namespace qsteer::bench;

int main() {
  Header("Ablation: per-metric learned models on one job group (Workload B)",
         "§6.2: separate models per metric, chosen by context (cluster load)");

  Workload workload(BenchSpec('B'));
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());
  LearnedSteering learner(&optimizer, &simulator, &workload.catalog());

  const int kTemplate = 36;
  std::vector<Job> jobs;
  int days = static_cast<int>(14 * BenchScale());
  for (int day = 1; day <= days; ++day) {
    int instances = workload.InstancesOnDay(kTemplate, day);
    for (int i = 0; i < std::max(1, instances); ++i) {
      jobs.push_back(workload.MakeJob(kTemplate, day, i));
    }
  }
  SpanResult span = ComputeJobSpan(optimizer, jobs.front());
  ConfigSearchOptions search;
  search.max_configs = 30;
  search.seed = 12;
  std::vector<RuleConfig> configs = {RuleConfig::Default()};
  for (const RuleConfig& c : GenerateCandidateConfigs(span.span, search)) {
    if (configs.size() >= 8) break;
    configs.push_back(c);
  }
  GroupDataset dataset = learner.CollectDataset(jobs, configs, 3);
  std::printf("job group: template %d, %d samples, K=%d configurations\n\n", kTemplate,
              dataset.size(), dataset.k());

  MlpOptions options;
  options.hidden = 64;
  options.epochs = 150;
  std::printf("%-22s %14s %14s %14s\n", "model target", "mean default", "mean learned",
              "mean best");
  for (Metric metric : {Metric::kRuntime, Metric::kCpuTime, Metric::kIoTime}) {
    LearnedEvaluation eval = learner.TrainAndEvaluate(dataset, options, 0.4, 0.2, metric);
    std::printf("%-22s %14.1f %14.1f %14.1f\n", MetricName(metric), eval.mean_default,
                eval.mean_learned, eval.mean_best);
  }
  std::printf("\nEach row is measured in its own metric's units: every per-metric model\n"
              "lands between the default and the per-metric oracle.\n");
  Footer();
  return 0;
}
