// Table 1: production workload characterization — #jobs, #unique templates,
// #unique inputs, #unique rule signatures for one day of workloads A, B, C.
#include <map>
#include <set>

#include "bench/bench_util.h"
#include "core/job_groups.h"
#include "optimizer/optimizer.h"

using namespace qsteer;
using namespace qsteer::bench;

int main() {
  Header("Table 1: workloads used through the paper",
         "A: 95K jobs / 48K templates / 29K inputs / 13K signatures; "
         "B: 15K / 10.5K / 9K / 837; C: 40K / 22K / 18.5K / 2.5K");

  struct Row {
    int jobs = 0, templates = 0, inputs = 0, signatures = 0;
  };
  std::map<char, Row> rows;

  // Paper values for the side-by-side comparison.
  const std::map<char, Row> paper = {
      {'A', {95000, 48000, 29000, 13000}},
      {'B', {15000, 10500, 9000, 837}},
      {'C', {40000, 22000, 18500, 2500}},
  };

  for (char which : {'A', 'B', 'C'}) {
    Workload workload(BenchSpec(which));
    Optimizer optimizer(&workload.catalog());
      std::vector<Job> jobs = workload.JobsForDay(/*day=*/3);

    std::set<uint64_t> templates, inputs;
    JobGroupIndex groups;
    int compiled = 0;
    for (const Job& job : jobs) {
      templates.insert(job.TemplateHash());
      for (int stream : job.InputStreams()) inputs.insert(static_cast<uint64_t>(stream));
      Result<CompiledPlan> plan = optimizer.Compile(job, ProductionConfig(job));
      if (!plan.ok()) continue;
      ++compiled;
      groups.Add(plan.value().signature);
    }
    rows[which] = {static_cast<int>(jobs.size()), static_cast<int>(templates.size()),
                   static_cast<int>(inputs.size()), groups.num_groups()};
    (void)compiled;
  }

  std::printf("%-24s", "");
  for (char which : {'A', 'B', 'C'}) std::printf("        %c        ", which);
  std::printf("\n");
  auto print_row = [&](const char* label, auto get) {
    std::printf("%-24s", label);
    for (char which : {'A', 'B', 'C'}) {
      std::printf(" %7d (%6d)", get(rows[which]), get(paper.at(which)));
    }
    std::printf("\n");
  };
  std::printf("%-24s %s\n", "", "measured (paper)  x3 workloads");
  print_row("# Jobs", [](const Row& r) { return r.jobs; });
  print_row("# Unique templates", [](const Row& r) { return r.templates; });
  print_row("# Unique inputs", [](const Row& r) { return r.inputs; });
  print_row("# Unique rule signature", [](const Row& r) { return r.signatures; });

  std::printf("\nShape checks (ratios, measured vs paper):\n");
  for (char which : {'A', 'B', 'C'}) {
    const Row& m = rows[which];
    const Row& p = paper.at(which);
    std::printf("  %c: jobs/templates %.2f (paper %.2f); signatures/jobs %.3f (paper %.3f)\n",
                which, static_cast<double>(m.jobs) / m.templates,
                static_cast<double>(p.jobs) / p.templates,
                static_cast<double>(m.signatures) / m.jobs,
                static_cast<double>(p.signatures) / p.jobs);
  }
  Footer();
  return 0;
}
