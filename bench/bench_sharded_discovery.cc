// Sharded-discovery bench: the crash-resumable orchestrator against the
// single-process reference pass, plus the persistent compile-cache warm
// start that ships yesterday's compiles into today's run.
//
// Scenarios (all over the same day of workload B):
//   1. unsharded reference      — DiscoverUnsharded, the ground-truth bytes
//   2. sharded cold             — full orchestrator run, cache saved at exit
//   3. sharded warm             — fresh directory, cache pre-warmed from (2)
//   4. pipeline warm hit-rate   — a fresh pipeline warmed from (2) re-analyzes
//                                 the day; its compile-cache hit rate is the
//                                 number CI floors (--min-hit-rate)
//   5. kill/resume soak         — the orchestrator is killed at a protocol
//                                 window on every execution and resumed until
//                                 done; measures crash-recovery overhead
//
// Verdicts: every merged output bit-identical to (1); warm start loads
// entries and rejects none; the soak loses no committed shard. Exits 1 on
// any verdict failure or when the warm hit rate lands below --min-hit-rate.
// Machine-readable summary in BENCH_sharded.json (cwd).
//
//   $ ./bench/bench_sharded_discovery [--smoke] [--min-hit-rate=0.5]
//         [--jobs=N] [--shards=N] [--workers=N]
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "discovery/orchestrator.h"

using namespace qsteer;
using namespace qsteer::bench;

namespace {

double SecondsOf(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Self-cleaning scratch directory under the system temp dir.
class ScratchDir {
 public:
  explicit ScratchDir(const char* tag) {
    dir_ = std::filesystem::temp_directory_path() /
           ("qsteer_bench_sharded_" + std::string(tag) + "_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~ScratchDir() { std::filesystem::remove_all(dir_); }
  std::string path() const { return dir_.string(); }
  std::string File(const std::string& name) const { return (dir_ / name).string(); }

 private:
  std::filesystem::path dir_;
};

}  // namespace

int main(int argc, char** argv) {
  Header("Crash-resumable sharded discovery: cold vs warm start vs kill/resume",
         "the nightly discovery pass runs sharded over worker executions that can "
         "die mid-run; completed shards must survive (checksummed manifests), the "
         "merge must equal the unsharded pass bit-for-bit, and a persisted compile "
         "cache turns tomorrow's recurring compiles into hits");

  bool smoke = false;
  double min_hit_rate = -1.0;
  int num_jobs = 48;
  int num_shards = 4;
  int num_workers = 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--min-hit-rate=", 15) == 0) {
      min_hit_rate = std::atof(argv[i] + 15);
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      num_jobs = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      num_shards = std::atoi(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0) {
      num_workers = std::atoi(argv[i] + 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  if (smoke) {
    num_jobs = 24;
    num_shards = 3;
    if (min_hit_rate < 0.0) min_hit_rate = 0.5;
  }
  if (num_jobs < 1) num_jobs = 1;
  if (num_shards < 1) num_shards = 1;
  const int day = 3;

  Workload workload(BenchSpec('B'));
  DiscoveryOptions base;
  base.num_shards = num_shards;
  base.num_workers = num_workers;
  base.max_jobs = num_jobs;
  base.pipeline.max_candidate_configs = static_cast<int>(30 * BenchScale());
  base.pipeline.configs_to_execute = 4;

  std::printf("workload B day %d, %d jobs, %d shards, %d workers, %d candidates/job\n\n",
              day, num_jobs, num_shards, num_workers, base.pipeline.max_candidate_configs);

  // ---- 1. unsharded reference ----
  UnshardedDiscovery reference;
  double unsharded_s = SecondsOf([&] {
    Result<UnshardedDiscovery> run = DiscoverUnsharded(&workload, day, base);
    if (!run.ok()) {
      std::fprintf(stderr, "unsharded pass failed: %s\n", run.status().ToString().c_str());
      std::exit(1);
    }
    reference = run.value();
  });

  // ---- 2. sharded cold + cache save ----
  ScratchDir cold_dir("cold");
  ScratchDir cache_dir("cache");
  std::string cache_file = cache_dir.File("compile_cache.qcc");
  DiscoveryOptions cold_options = base;
  cold_options.dir = cold_dir.path();
  cold_options.save_cache_file = cache_file;
  DiscoveryResult cold;
  double cold_s = SecondsOf([&] {
    ShardOrchestrator orchestrator(&workload, day, cold_options);
    Result<DiscoveryResult> run = orchestrator.Run();
    if (!run.ok() || !run.value().completed) {
      std::fprintf(stderr, "cold sharded run failed\n");
      std::exit(1);
    }
    cold = run.value();
  });

  // ---- 3. sharded warm (fresh directory, yesterday's cache) ----
  ScratchDir warm_dir("warm");
  DiscoveryOptions warm_options = base;
  warm_options.dir = warm_dir.path();
  warm_options.warm_cache_file = cache_file;
  DiscoveryResult warm;
  double warm_s = SecondsOf([&] {
    ShardOrchestrator orchestrator(&workload, day, warm_options);
    Result<DiscoveryResult> run = orchestrator.Run();
    if (!run.ok() || !run.value().completed) {
      std::fprintf(stderr, "warm sharded run failed\n");
      std::exit(1);
    }
    warm = run.value();
  });

  // ---- 4. pipeline warm hit-rate (the serving-tier warm start) ----
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());
  PipelineOptions warm_pipeline_options = base.pipeline;
  warm_pipeline_options.num_threads = 0;
  SteeringPipeline warm_pipeline(&optimizer, &simulator, warm_pipeline_options);
  int64_t pipeline_loaded = 0;
  Status warm_status = warm_pipeline.WarmCompileCache(cache_file, day, &pipeline_loaded);
  std::vector<Job> day_jobs = workload.JobsForDay(day);
  if (static_cast<int>(day_jobs.size()) > num_jobs) day_jobs.resize(num_jobs);
  double warm_analyze_s =
      SecondsOf([&] { (void)warm_pipeline.AnalyzeJobs(day_jobs); });
  CompileCacheStats warm_stats = warm_pipeline.compile_cache_stats();
  double hit_rate = warm_stats.HitRate();

  // ---- 5. kill/resume soak: die at a window on every execution ----
  ScratchDir soak_dir("soak");
  DiscoveryOptions soak_options = base;
  soak_options.dir = soak_dir.path();
  int executions = 0;
  int64_t soak_quarantined = 0;
  DiscoveryResult soak;
  double soak_s = SecondsOf([&] {
    while (true) {
      ++executions;
      DiscoveryOptions options = soak_options;
      // Post-manifest of the first freshly computed shard: exactly one new
      // shard commits per execution (worst-case crash cadence that still
      // makes progress).
      options.crash_hook_for_testing = [](const DiscoveryCrashPoint& point) {
        DiscoveryCrashDecision decision;
        decision.crash = point.index == 3;
        return decision;
      };
      if (executions > num_shards) options.crash_hook_for_testing = nullptr;
      ShardOrchestrator orchestrator(&workload, day, options);
      Result<DiscoveryResult> run = orchestrator.Run();
      if (!run.ok()) {
        std::fprintf(stderr, "soak run failed: %s\n", run.status().ToString().c_str());
        std::exit(1);
      }
      soak = run.value();
      soak_quarantined += soak.counters.shards_quarantined;
      if (soak.completed) break;
      soak_options.resume = true;
      if (executions > num_shards + 8) {
        std::fprintf(stderr, "soak did not converge\n");
        std::exit(1);
      }
    }
  });

  // ---- report ----
  std::printf("%-34s %9s %9s %9s\n", "scenario", "wall_s", "speedup", "identical");
  auto row = [&](const char* name, double seconds, const std::string& store,
                 const std::string& table) {
    bool identical = store == reference.store && table == reference.diff_table;
    std::printf("%-34s %9.3f %8.2fx %9s\n", name, seconds,
                seconds > 0 ? unsharded_s / seconds : 0.0, identical ? "yes" : "NO");
    return identical;
  };
  std::printf("%-34s %9.3f %9s %9s\n", "unsharded reference", unsharded_s, "1.00x", "-");
  bool cold_identical = row("sharded cold", cold_s, cold.merged_store, cold.merged_diff_table);
  bool warm_identical = row("sharded warm", warm_s, warm.merged_store, warm.merged_diff_table);
  bool soak_identical =
      row("kill/resume soak", soak_s, soak.merged_store, soak.merged_diff_table);

  std::printf("\nwarm start: loaded=%lld rejected=%lld (warm file %s)\n",
              (long long)warm.counters.cache_warm_loaded,
              (long long)warm.counters.cache_warm_rejected,
              warm_status.ok() ? "accepted" : "REJECTED");
  std::printf("pipeline warm re-analysis: %.3fs, hit rate %.0f%% "
              "(%lld hits / %lld misses, %lld entries pre-loaded)\n",
              warm_analyze_s, hit_rate * 100.0, (long long)warm_stats.hits,
              (long long)warm_stats.misses, (long long)pipeline_loaded);
  std::printf("soak: %d executions (%d kills), %d shards, quarantined=%lld, "
              "crash-recovery overhead %.2fx vs cold\n",
              executions, executions - 1, num_shards, (long long)soak_quarantined,
              cold_s > 0 ? soak_s / cold_s : 0.0);
  std::printf("lease schedule (cold run): granted=%lld expired=%lld speculative=%lld "
              "stragglers=%lld makespan=%lld ticks\n",
              (long long)cold.counters.leases_granted,
              (long long)cold.counters.leases_expired,
              (long long)cold.counters.speculative_dispatches,
              (long long)cold.counters.stragglers,
              (long long)cold.counters.makespan_ticks);

  bool warm_loaded_ok = warm_status.ok() && warm.counters.cache_warm_loaded > 0 &&
                        warm.counters.cache_warm_rejected == 0;
  bool soak_safe = soak_quarantined == 0;
  bool hit_rate_ok = min_hit_rate < 0.0 || hit_rate >= min_hit_rate;
  bool all_identical = cold_identical && warm_identical && soak_identical;
  std::printf("\nverdicts: identical=%s warm_loaded=%s soak_lost_nothing=%s",
              all_identical ? "PASS" : "FAIL", warm_loaded_ok ? "PASS" : "FAIL",
              soak_safe ? "PASS" : "FAIL");
  if (min_hit_rate >= 0.0) {
    std::printf(" hit_rate>=%.0f%%=%s", min_hit_rate * 100.0,
                hit_rate_ok ? "PASS" : "FAIL");
  }
  std::printf("\n");
  Footer();

  FILE* json = std::fopen("BENCH_sharded.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"bench\": \"bench_sharded_discovery\",\n");
    std::fprintf(json,
                 "  \"description\": \"Sharded discovery orchestrator vs the unsharded "
                 "reference: cold run, compile-cache warm start, and a kill-at-every-"
                 "execution resume soak; merged outputs must be bit-identical "
                 "throughout.\",\n");
    std::fprintf(json, "  \"command\": \"./build/bench/bench_sharded_discovery%s\",\n",
                 smoke ? " --smoke" : "");
    std::fprintf(json, "  \"jobs\": %d,\n  \"shards\": %d,\n  \"workers\": %d,\n",
                 num_jobs, num_shards, num_workers);
    std::fprintf(json,
                 "  \"wall_s\": { \"unsharded\": %.3f, \"sharded_cold\": %.3f, "
                 "\"sharded_warm\": %.3f, \"kill_resume_soak\": %.3f, "
                 "\"warm_pipeline_reanalysis\": %.3f },\n",
                 unsharded_s, cold_s, warm_s, soak_s, warm_analyze_s);
    std::fprintf(json,
                 "  \"warm_start\": { \"entries_loaded\": %lld, \"rejected\": %lld, "
                 "\"pipeline_hit_rate\": %.4f },\n",
                 (long long)warm.counters.cache_warm_loaded,
                 (long long)warm.counters.cache_warm_rejected, hit_rate);
    std::fprintf(json,
                 "  \"soak\": { \"executions\": %d, \"kills\": %d, \"quarantined\": "
                 "%lld, \"recovery_overhead_vs_cold\": %.3f },\n",
                 executions, executions - 1, (long long)soak_quarantined,
                 cold_s > 0 ? soak_s / cold_s : 0.0);
    std::fprintf(json,
                 "  \"leases\": { \"granted\": %lld, \"expired\": %lld, "
                 "\"speculative\": %lld, \"stragglers\": %lld, \"makespan_ticks\": "
                 "%lld },\n",
                 (long long)cold.counters.leases_granted,
                 (long long)cold.counters.leases_expired,
                 (long long)cold.counters.speculative_dispatches,
                 (long long)cold.counters.stragglers,
                 (long long)cold.counters.makespan_ticks);
    std::fprintf(json, "  \"verdicts\": {\n");
    std::fprintf(json, "    \"merged_bit_identical\": %s,\n",
                 all_identical ? "true" : "false");
    std::fprintf(json, "    \"warm_start_loaded\": %s,\n", warm_loaded_ok ? "true" : "false");
    std::fprintf(json, "    \"soak_lost_no_committed_shard\": %s,\n",
                 soak_safe ? "true" : "false");
    std::fprintf(json, "    \"warm_hit_rate_above_floor\": %s\n",
                 hit_rate_ok ? "true" : "false");
    std::fprintf(json, "  }\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_sharded.json\n");
  }

  return (all_identical && warm_loaded_ok && soak_safe && hit_rate_ok) ? 0 : 1;
}
