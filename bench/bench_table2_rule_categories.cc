// Table 2: rule categories with statistics — total rules and rules never
// used (absent from every job's signature) over one day of Workload A.
#include "bench/bench_util.h"
#include "optimizer/optimizer.h"
#include "optimizer/rule_registry.h"

using namespace qsteer;
using namespace qsteer::bench;

int main() {
  Header("Table 2: rule categories, counts and unused rules (one day, Workload A)",
         "Required 37/9 unused; Off-by-default 46/36; On-by-default 141/37; "
         "Implementation 32/4");

  Workload workload(BenchSpec('A'));
  Optimizer optimizer(&workload.catalog());

  BitVector256 used_any;
  int compiled = 0;
  for (const Job& job : workload.JobsForDay(3)) {
    Result<CompiledPlan> plan = optimizer.Compile(job, ProductionConfig(job));
    if (!plan.ok()) continue;
    used_any = used_any.Or(plan.value().signature);
    ++compiled;
  }

  const RuleRegistry& registry = RuleRegistry::Instance();
  struct CategoryRow {
    const char* label;
    RuleCategory category;
    int paper_total;
    int paper_unused;
  };
  const CategoryRow categories[] = {
      {"Required", RuleCategory::kRequired, 37, 9},
      {"Off-by-default", RuleCategory::kOffByDefault, 46, 36},
      {"On-by-default", RuleCategory::kOnByDefault, 141, 37},
      {"Implementation", RuleCategory::kImplementation, 32, 4},
  };

  std::printf("jobs compiled: %d\n\n", compiled);
  std::printf("%-16s %8s %8s   %18s   examples of used rules\n", "Category", "#Rules",
              "#Unused", "paper(#Rules/#Unused)");
  for (const CategoryRow& row : categories) {
    std::vector<RuleId> ids = registry.IdsInCategory(row.category);
    int unused = 0;
    std::string examples;
    int shown = 0;
    for (RuleId id : ids) {
      if (!used_any.Test(id)) {
        ++unused;
      } else if (shown < 3) {
        if (shown > 0) examples += ", ";
        examples += registry.name(id);
        ++shown;
      }
    }
    std::printf("%-16s %8zu %8d   %12d / %-5d   %s\n", row.label, ids.size(), unused,
                row.paper_total, row.paper_unused, examples.c_str());
  }
  std::printf(
      "\nNote: our on-by-default catalog implements ~45 genuinely firing rewrites; the\n"
      "remaining named rules target operator shapes this workload cannot produce, so\n"
      "the measured unused count exceeds the paper's (see EXPERIMENTS.md).\n");
  Footer();
  return 0;
}
