// Shared utilities for the experiment-regeneration benches. Each bench
// binary reproduces one table or figure of the paper and prints the paper's
// reported values next to the measured ones.
//
// Environment knobs:
//   QSTEER_BENCH_SCALE    multiplier on workload sizes (default 1.0; >1 makes
//                         the run bigger and slower, <1 smaller).
//   QSTEER_BENCH_THREADS  worker threads for the parallel pipeline stages
//                         (default 0 = serial; -1 = one per hardware thread).
//                         Results are bit-identical across values.
#ifndef QSTEER_BENCH_BENCH_UTIL_H_
#define QSTEER_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "workload/generator.h"

namespace qsteer::bench {

inline double BenchScale() {
  const char* env = std::getenv("QSTEER_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

inline int BenchThreads() {
  const char* env = std::getenv("QSTEER_BENCH_THREADS");
  return env == nullptr ? 0 : std::atoi(env);
}

/// Workload specs used by all benches: paper-proportioned, at roughly 1/200
/// of production volume by default so every bench finishes in seconds-to-
/// minutes on one core.
inline WorkloadSpec BenchSpec(char which) {
  double scale = 0.005 * BenchScale();
  switch (which) {
    case 'A':
      return WorkloadSpec::WorkloadA(scale);
    case 'B':
      return WorkloadSpec::WorkloadB(scale);
    default:
      return WorkloadSpec::WorkloadC(scale);
  }
}

inline void Header(const std::string& title, const std::string& paper_claim) {
  std::printf("==============================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Paper: %s\n", paper_claim.c_str());
  std::printf("==============================================================================\n");
}

inline void Footer() { std::printf("\n"); }

/// Simple fixed-width histogram printer (log-ish buckets supplied by the
/// caller).
inline void PrintBar(double value, double max_value, int width = 40) {
  int bars = max_value > 0.0 ? static_cast<int>(value / max_value * width) : 0;
  for (int i = 0; i < bars; ++i) std::printf("#");
  std::printf("\n");
}

}  // namespace qsteer::bench

#include "core/pipeline.h"

namespace qsteer::bench {

/// The §6.1 selection + A/B execution used by several benches: compile and
/// execute a day under the default configuration, keep jobs in the runtime
/// window (scaled down with the bench workloads), then run the full
/// pipeline on up to `max_jobs` selected jobs.
inline std::vector<JobAnalysis> RunAbAnalysis(const Workload& workload,
                                              const Optimizer& optimizer,
                                              const ExecutionSimulator& simulator,
                                              int max_jobs, int day = 3,
                                              PipelineOptions options = {}) {
  // Bench workloads run ~1/200 of production scale, so the 5min..1h window
  // shifts down proportionally in spirit: keep it at 60s..2h to retain a
  // meaningful population.
  options.min_runtime_s = 60.0;
  options.max_runtime_s = 7200.0;
  if (options.max_candidate_configs == 200) {
    options.max_candidate_configs = static_cast<int>(150 * BenchScale());
  }
  if (options.num_threads == 0) options.num_threads = BenchThreads();
  SteeringPipeline pipeline(&optimizer, &simulator, options);

  std::vector<Job> jobs = workload.JobsForDay(day);
  std::vector<double> runtimes;
  std::vector<size_t> compiled_idx;
  for (size_t i = 0; i < jobs.size(); ++i) {
    Result<CompiledPlan> plan = optimizer.Compile(jobs[i], RuleConfig::Default());
    if (!plan.ok()) continue;
    runtimes.push_back(simulator.Execute(jobs[i], plan.value().root).runtime);
    compiled_idx.push_back(i);
  }
  std::vector<int> window = pipeline.SelectJobsInWindow(runtimes);

  Pcg32 rng(0x6a0b + static_cast<uint64_t>(day));
  std::vector<int> picks = window;
  rng.Shuffle(&picks);
  std::vector<Job> selected;
  for (int idx : picks) {
    if (static_cast<int>(selected.size()) >= max_jobs) break;
    selected.push_back(jobs[compiled_idx[static_cast<size_t>(idx)]]);
  }
  // Batch analysis: jobs fan out over the pipeline's pool (and each job's
  // candidate recompilations run inline on the claiming worker).
  return pipeline.AnalyzeJobs(selected);
}

}  // namespace qsteer::bench

#endif  // QSTEER_BENCH_BENCH_UTIL_H_
