// Table 5: runtimes (mean / 90P / 99P) of the best-known, default and
// learned configurations for three Workload B job groups (§7.4).
#include "bench/bench_util.h"
#include "core/learned_steering.h"
#include "core/span.h"

using namespace qsteer;
using namespace qsteer::bench;

int main() {
  Header("Table 5: best / default / learned runtimes for 3 job groups (Workload B)",
         "group1: 5458/6461/5724 mean — learned close to best; group2 and group3 "
         "improve too but group3 leaves headroom");

  Workload workload(BenchSpec('B'));
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());
  // QSTEER_BENCH_THREADS > 0 parallelizes dataset collection across jobs;
  // the dataset is bit-identical to the serial run.
  std::unique_ptr<ThreadPool> pool;
  if (BenchThreads() != 0) pool = std::make_unique<ThreadPool>(BenchThreads());
  LearnedSteering learner(&optimizer, &simulator, &workload.catalog(), {}, pool.get());

  // Three recurring templates with multiple daily instances stand in for the
  // paper's three job groups (201/75/157 jobs, K = 10/7/10).
  const int kTemplates[3] = {36, 4, 30};
  const int kArms[3] = {10, 7, 10};
  int days = static_cast<int>(14 * BenchScale());

  std::printf("%-10s", "");
  for (int g = 0; g < 3; ++g) std::printf("   group%d: mean    90P    99P   ", g + 1);
  std::printf("\n");

  double mean_default[3] = {}, mean_best[3] = {}, mean_learned[3] = {};
  LearnedEvaluation evals[3];
  int sizes[3] = {};

  // Per-group job lists, spans, and candidate sets; candidate generation
  // runs as one parallel batch over the three groups.
  std::vector<Job> group_jobs[3];
  std::vector<BitVector256> spans;
  std::vector<ConfigSearchOptions> searches;
  for (int g = 0; g < 3; ++g) {
    for (int day = 1; day <= days; ++day) {
      int instances = workload.InstancesOnDay(kTemplates[g], day);
      for (int i = 0; i < std::max(1, instances); ++i) {
        group_jobs[g].push_back(workload.MakeJob(kTemplates[g], day, i));
      }
    }
    spans.push_back(ComputeJobSpan(optimizer, group_jobs[g].front()).span);
    ConfigSearchOptions search;
    search.max_configs = kArms[g] * 4;
    search.seed = 500 + static_cast<uint64_t>(g);
    searches.push_back(search);
  }
  std::vector<std::vector<RuleConfig>> batch_configs =
      GenerateCandidateConfigsBatch(spans, searches, pool.get());

  for (int g = 0; g < 3; ++g) {
    const std::vector<Job>& jobs = group_jobs[g];
    std::vector<RuleConfig> configs = {RuleConfig::Default()};
    for (const RuleConfig& c : batch_configs[static_cast<size_t>(g)]) {
      if (static_cast<int>(configs.size()) >= kArms[g]) break;
      configs.push_back(c);
    }
    GroupDataset dataset = learner.CollectDataset(jobs, configs, 7 + static_cast<uint64_t>(g));
    sizes[g] = dataset.size();

    MlpOptions options;
    options.hidden = 64;
    options.epochs = 150;
    options.seed = 21 + static_cast<uint64_t>(g);
    evals[g] = learner.TrainAndEvaluate(dataset, options);
    mean_default[g] = evals[g].mean_default;
    mean_best[g] = evals[g].mean_best;
    mean_learned[g] = evals[g].mean_learned;
  }

  auto print_policy = [&](const char* name, auto mean, auto p90, auto p99) {
    std::printf("%-10s", name);
    for (int g = 0; g < 3; ++g) {
      std::printf("   %13.0f %6.0f %6.0f   ", mean(evals[g]), p90(evals[g]), p99(evals[g]));
    }
    std::printf("\n");
  };
  print_policy("Best", [](const LearnedEvaluation& e) { return e.mean_best; },
               [](const LearnedEvaluation& e) { return e.p90_best; },
               [](const LearnedEvaluation& e) { return e.p99_best; });
  print_policy("Default", [](const LearnedEvaluation& e) { return e.mean_default; },
               [](const LearnedEvaluation& e) { return e.p90_default; },
               [](const LearnedEvaluation& e) { return e.p99_default; });
  print_policy("Learned", [](const LearnedEvaluation& e) { return e.mean_learned; },
               [](const LearnedEvaluation& e) { return e.p90_learned; },
               [](const LearnedEvaluation& e) { return e.p99_learned; });

  std::printf("\ngroup sizes: %d / %d / %d samples; shape check: best <= learned <= ~default "
              "per group:\n",
              sizes[0], sizes[1], sizes[2]);
  for (int g = 0; g < 3; ++g) {
    double recovered = mean_default[g] - mean_best[g] > 1e-9
                           ? 100.0 * (mean_default[g] - mean_learned[g]) /
                                 (mean_default[g] - mean_best[g])
                           : 0.0;
    std::printf("  group%d: learned recovers %.0f%% of oracle improvement (paper group1 "
                "~73%%, group2 ~56%%, group3 ~15%%)\n",
                g + 1, recovered);
  }
  Footer();
  return 0;
}
