// Table 3: average runtime change when always choosing the best known rule
// configuration (including the default when nothing beats it), per workload.
#include "bench/bench_util.h"
#include "common/stats.h"
#include "exec/simulator.h"

using namespace qsteer;
using namespace qsteer::bench;

int main() {
  Header("Table 3: average runtime change with best known configuration",
         "A: -1689s / -30%;  B: -663s / -15%;  C: -400s / -7% (36/155/45 queries)");

  struct PaperRow {
    int queries;
    double delta_s, delta_pct;
  };
  const PaperRow paper[3] = {{36, -1689, -30}, {155, -663, -15}, {45, -400, -7}};

  std::printf("%-12s %10s %12s %12s %22s\n", "Workload", "#Queries", "dRuntime(s)",
              "dPercent", "paper(ds/d%)");
  int wi = 0;
  for (char which : {'A', 'B', 'C'}) {
    Workload workload(BenchSpec(which));
    Optimizer optimizer(&workload.catalog());
    ExecutionSimulator simulator(&workload.catalog());
    int max_jobs = static_cast<int>((which == 'B' ? 30 : 16) * BenchScale());
    std::vector<JobAnalysis> analyses =
        RunAbAnalysis(workload, optimizer, simulator, max_jobs);

    std::vector<double> deltas, pcts;
    for (const JobAnalysis& analysis : analyses) {
      const ConfigOutcome* best = analysis.BestBy(Metric::kRuntime);
      double best_runtime = analysis.default_metrics.runtime;
      if (best != nullptr) best_runtime = std::min(best_runtime, best->metrics.runtime);
      deltas.push_back(best_runtime - analysis.default_metrics.runtime);
      pcts.push_back((best_runtime - analysis.default_metrics.runtime) /
                     analysis.default_metrics.runtime * 100.0);
    }
    std::printf("%-12c %10zu %12.0f %11.0f%% %14.0fs / %3.0f%%\n", which, deltas.size(),
                Mean(deltas), Mean(pcts), paper[wi].delta_s, paper[wi].delta_pct);
    ++wi;
  }
  std::printf("\n(Absolute seconds are simulator-scale — our bench workloads run ~1/200 of\n"
              "production data volume; the percentage columns are the comparable shape.)\n");
  Footer();
  return 0;
}
