// Figure 3: average number of rules (+/- 1 std) in the job span, grouped by
// rule category, for jobs of one day of Workload A.
#include "bench/bench_util.h"
#include "common/stats.h"
#include "core/span.h"

using namespace qsteer;
using namespace qsteer::bench;

int main() {
  Header("Figure 3: job span size per rule category (one day, Workload A)",
         "on average only up to ~20 of the 219 non-required rules per job; "
         "implementation + on-by-default dominate, off-by-default small");

  Workload workload(BenchSpec('A'));
  Optimizer optimizer(&workload.catalog());

  std::vector<double> off, on, impl, total;
  int sample_budget = static_cast<int>(80 * BenchScale());
  std::vector<Job> jobs = workload.JobsForDay(3);
  int step = std::max<size_t>(1, jobs.size() / sample_budget);
  for (size_t i = 0; i < jobs.size(); i += static_cast<size_t>(step)) {
    SpanResult span = ComputeJobSpan(optimizer, jobs[i]);
    off.push_back(span.off_by_default);
    on.push_back(span.on_by_default);
    impl.push_back(span.implementation);
    total.push_back(span.span.Count());
  }

  std::printf("sampled jobs: %zu\n\n", total.size());
  std::printf("%-18s %10s %10s %10s\n", "category", "mean", "std", "max");
  auto row = [](const char* name, const std::vector<double>& values) {
    Summary s = Summarize(values);
    std::printf("%-18s %10.2f %10.2f %10.0f\n", name, s.mean, s.stddev, s.max);
  };
  row("Off-by-default", off);
  row("On-by-default", on);
  row("Implementation", impl);
  row("Total span", total);
  std::printf("\n(216 non-required rules exist; the span prunes the per-job search space to "
              "the ~%.0f that can affect the plan, as in the paper's ~20.)\n",
              Summarize(total).mean);
  Footer();
  return 0;
}
