// Compile-cache bench: wall-clock of recurring candidate recompilation
// (the Fig. 4 / Table 3 workload shape — the same job templates analyzed
// round after round) with the span-keyed compile cache on vs off, verifying
// bit-identical analyses throughout and reporting the cache counters.
// Machine-readable baseline in BENCH_compile_cache.json (regenerate with
// this binary when the cache or the candidate pipeline changes).
//
//   $ ./bench/bench_compile_cache [--min-hit-rate=0.5] [--rounds=4] [--jobs=10]
//
// Exits 1 when cached results diverge from uncached ones or when the warm
// hit rate lands below --min-hit-rate (the CI perf-smoke floor).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/hash.h"
#include "core/pipeline.h"

using namespace qsteer;
using namespace qsteer::bench;

namespace {

double SecondsOf(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// Order-sensitive digest of everything a Recompile produces: the default
// plan, the span, every candidate's estimated cost bits, and the failure
// tallies. Any cache-induced divergence flips it.
uint64_t DigestOf(const JobAnalysis& analysis) {
  uint64_t h = 0x5eedc0de;
  h = HashCombine(h, analysis.default_plan.root ? PlanHash(analysis.default_plan.root, false) : 0);
  h = HashCombine(h, DoubleBits(analysis.default_plan.est_cost));
  h = HashCombine(h, analysis.span.span.Hash());
  h = HashCombine(h, static_cast<uint64_t>(analysis.candidates_generated));
  h = HashCombine(h, static_cast<uint64_t>(analysis.recompiled_ok));
  h = HashCombine(h, static_cast<uint64_t>(analysis.compile_failures));
  for (double cost : analysis.candidate_costs) h = HashCombine(h, DoubleBits(cost));
  return h;
}

uint64_t DigestOf(const std::vector<JobAnalysis>& analyses) {
  uint64_t h = 0xba5eba11;
  for (const JobAnalysis& a : analyses) h = HashCombine(h, DigestOf(a));
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  Header("Span-keyed compile cache: recurring candidate recompilation rounds",
         "recurring jobs dominate the workload (§2: >= 60% recur daily) and "
         "configurations agreeing on a job's span compile to identical plans (§4), "
         "so recompilation cost is overwhelmingly redundant");

  double min_hit_rate = -1.0;
  int rounds = 4;
  int num_jobs = 10;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--min-hit-rate=", 15) == 0) {
      min_hit_rate = std::atof(argv[i] + 15);
    } else if (std::strncmp(argv[i], "--rounds=", 9) == 0) {
      rounds = std::atoi(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      num_jobs = std::atoi(argv[i] + 7);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  if (rounds < 2) rounds = 2;
  if (num_jobs < 1) num_jobs = 1;

  Workload workload(BenchSpec('B'));
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());

  // The recurring batch: num_jobs templates, all instances of day 3. Each
  // round resubmits the full batch, like the nightly pipeline re-analyzing
  // the same recurring jobs.
  std::vector<Job> jobs;
  for (int t = 0; t < num_jobs; ++t) {
    jobs.push_back(workload.MakeJob(t % workload.num_templates(), /*day=*/3, /*instance=*/t));
  }

  PipelineOptions base;
  base.max_candidate_configs = static_cast<int>(40 * BenchScale());
  base.configs_to_execute = 0;  // recompilation only: the Fig. 4 cost shape
  base.num_threads = BenchThreads();

  PipelineOptions uncached_options = base;
  uncached_options.compile_cache_mb = 0;
  PipelineOptions cached_options = base;
  cached_options.compile_cache_mb = 64;

  // Both pipelines persist across rounds — that is the point: the cached one
  // accumulates compile results, the uncached one redoes everything.
  SteeringPipeline uncached(&optimizer, &simulator, uncached_options);
  SteeringPipeline cached(&optimizer, &simulator, cached_options);

  std::printf("workload B, %d jobs x %d rounds, %d candidates/job, threads=%d\n\n",
              num_jobs, rounds, base.max_candidate_configs, base.num_threads);
  std::printf("%6s %14s %14s %9s %10s %12s\n", "round", "uncached_s", "cached_s", "speedup",
              "hit_rate", "identical");

  double uncached_total = 0.0, cached_total = 0.0;
  double cached_warm = 0.0, uncached_warm = 0.0;
  bool all_identical = true;
  uint64_t hits_before = 0, misses_before = 0;
  for (int round = 0; round < rounds; ++round) {
    std::vector<JobAnalysis> plain, via_cache;
    double uncached_s = SecondsOf([&] { plain = uncached.RecompileJobs(jobs); });
    double cached_s = SecondsOf([&] { via_cache = cached.RecompileJobs(jobs); });
    bool identical = DigestOf(plain) == DigestOf(via_cache);
    all_identical = all_identical && identical;
    uncached_total += uncached_s;
    cached_total += cached_s;
    if (round > 0) {
      uncached_warm += uncached_s;
      cached_warm += cached_s;
    }

    CompileCacheStats stats = cached.compile_cache_stats();
    uint64_t round_hits = stats.hits - hits_before;
    uint64_t round_misses = stats.misses - misses_before;
    hits_before = stats.hits;
    misses_before = stats.misses;
    double round_rate = (round_hits + round_misses) > 0
                            ? static_cast<double>(round_hits) / (round_hits + round_misses)
                            : 0.0;
    std::printf("%6d %14.3f %14.3f %8.2fx %9.0f%% %12s\n", round, uncached_s, cached_s,
                cached_s > 0 ? uncached_s / cached_s : 0.0, round_rate * 100.0,
                identical ? "yes" : "NO");
  }

  CompileCacheStats stats = cached.compile_cache_stats();
  double warm_speedup = cached_warm > 0 ? uncached_warm / cached_warm : 0.0;
  std::printf("\ntotals: uncached %.3fs, cached %.3fs (%.2fx); warm rounds %.2fx\n",
              uncached_total, cached_total,
              cached_total > 0 ? uncached_total / cached_total : 0.0, warm_speedup);
  std::printf("cache: %s\n", stats.ToString().c_str());
  std::printf("span-equivalent candidates pruned: %lld\n",
              static_cast<long long>(cached.span_duplicates_pruned()));
  std::printf("results bit-identical cached vs uncached, every round: %s\n",
              all_identical ? "yes" : "NO — cache soundness violated");

  bool hit_rate_ok = min_hit_rate < 0.0 || stats.HitRate() >= min_hit_rate;
  if (!hit_rate_ok) {
    std::printf("FAIL: overall hit rate %.0f%% below floor %.0f%%\n", stats.HitRate() * 100.0,
                min_hit_rate * 100.0);
  }
  Footer();
  return (all_identical && hit_rate_ok) ? 0 : 1;
}
