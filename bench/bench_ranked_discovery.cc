// Ranked vs unranked budgeted discovery: does the CandidateRanker spend a
// fixed compile budget where it pays?
//
// Protocol (workload B):
//   1. train   — a rank-enabled pipeline with an unlimited budget analyzes
//                the train days; every compiled candidate becomes a training
//                example (label = observed improvement). The trained ranker
//                is persisted with SaveRanker.
//   2. eval    — two budgeted pipelines analyze the held-out eval day at the
//                same compile budget (default 25% of the candidate stream):
//                  unranked: the budget goes to the stream prefix (status quo)
//                  ranked:   the budget goes to the top-scored slice, scored
//                            by the warmed (frozen) ranker
//                Jobs run serially in day order so wall-clock-to-first-
//                improvement is well-defined for both.
//   3. checks  — a second warmed ranked pipeline replays the eval day
//                (byte-equal ranker, equal outcomes: determinism), and an
//                unlimited-budget ranked pipeline must match the unranked
//                unlimited pipeline on a probe job (selection is a filter).
//
// Verdict: ranked improvements-per-compile must be strictly greater than
// unranked, and at least --min-improvement-ratio times it (CI floors this;
// exit 1 below the floor). Machine-readable summary in BENCH_ranker.json.
//
//   $ ./bench/bench_ranked_discovery [--smoke] [--min-improvement-ratio=R]
//         [--jobs=N] [--budget-fraction=F] [--train-days=N]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <string>
#include <unistd.h>
#include <vector>

#include "bench/bench_util.h"
#include "core/pipeline.h"

using namespace qsteer;
using namespace qsteer::bench;

namespace {

double SecondsOf(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Self-cleaning scratch directory under the system temp dir.
class ScratchDir {
 public:
  ScratchDir() {
    dir_ = std::filesystem::temp_directory_path() /
           ("qsteer_bench_ranked_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~ScratchDir() { std::filesystem::remove_all(dir_); }
  std::string File(const std::string& name) const { return (dir_ / name).string(); }

 private:
  std::filesystem::path dir_;
};

int ImprovementsIn(const JobAnalysis& analysis) {
  int improvements = 0;
  for (const ConfigOutcome& outcome : analysis.executed) {
    if (outcome.executed && !outcome.metrics.failed &&
        outcome.metrics.runtime < analysis.default_metrics.runtime) {
      ++improvements;
    }
  }
  return improvements;
}

/// One serial eval pass over the day's jobs: total improvements, compiles
/// spent, and the wall clock at which the first improvement surfaced.
struct EvalRun {
  int64_t improvements = 0;
  int64_t compiles = 0;
  int64_t skipped = 0;
  double wall_s = 0.0;
  double first_improvement_s = -1.0;  // -1 = never
  double ImprovementsPerCompile() const {
    return compiles > 0 ? static_cast<double>(improvements) / static_cast<double>(compiles)
                        : 0.0;
  }
};

EvalRun Evaluate(const SteeringPipeline& pipeline, const std::vector<Job>& jobs) {
  EvalRun run;
  auto start = std::chrono::steady_clock::now();
  for (const Job& job : jobs) {
    JobAnalysis analysis = pipeline.AnalyzeJob(job);
    run.improvements += ImprovementsIn(analysis);
    run.compiles += analysis.candidates_compiled;
    run.skipped += analysis.budget_skipped;
    if (run.first_improvement_s < 0.0 && run.improvements > 0) {
      run.first_improvement_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    }
  }
  run.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  Header("Ranked candidate generation: improvements found per compile at a fixed budget",
         "discovery pays a full recompile per candidate; a learned ranker should "
         "spend a 25% compile budget on the candidates that actually improve "
         "runtimes, beating the stream-prefix baseline on both improvements-per-"
         "compile and time-to-first-improvement");

  bool smoke = false;
  double min_ratio = -1.0;
  int num_jobs = 36;
  int train_days = 2;
  double budget_fraction = 0.25;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--min-improvement-ratio=", 24) == 0) {
      min_ratio = std::atof(argv[i] + 24);
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      num_jobs = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--budget-fraction=", 18) == 0) {
      budget_fraction = std::atof(argv[i] + 18);
    } else if (std::strncmp(argv[i], "--train-days=", 13) == 0) {
      train_days = std::atoi(argv[i] + 13);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  if (smoke) {
    num_jobs = 20;
    if (min_ratio < 0.0) min_ratio = 1.0;
  }
  if (num_jobs < 1) num_jobs = 1;
  if (train_days < 1) train_days = 1;
  if (budget_fraction <= 0.0 || budget_fraction > 1.0) budget_fraction = 0.25;
  const int eval_day = 3;

  Workload workload(BenchSpec('B'));
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());

  PipelineOptions base;
  base.max_candidate_configs = static_cast<int>(40 * BenchScale());
  if (base.max_candidate_configs < 8) base.max_candidate_configs = 8;
  base.configs_to_execute = 4;
  const int budget =
      std::max(1, static_cast<int>(base.max_candidate_configs * budget_fraction));

  auto jobs_for = [&](int day) {
    std::vector<Job> jobs = workload.JobsForDay(day);
    if (static_cast<int>(jobs.size()) > num_jobs) jobs.resize(num_jobs);
    return jobs;
  };

  std::printf("workload B, eval day %d, %d jobs, %d candidates/job, budget %d (%.0f%%), "
              "train days 1..%d\n\n",
              eval_day, num_jobs, base.max_candidate_configs, budget,
              budget_fraction * 100.0, train_days);

  // ---- 1. train: unlimited-budget ranked pipeline over the train days ----
  ScratchDir scratch;
  std::string ranker_file = scratch.File("ranker.qrk");
  PipelineOptions train_options = base;
  train_options.rank_candidates = true;
  train_options.compile_budget = 0;  // unlimited: label every candidate
  SteeringPipeline trainer(&optimizer, &simulator, train_options);
  double train_s = SecondsOf([&] {
    for (int day = 1; day <= train_days; ++day) {
      if (day == eval_day) continue;  // never train on the eval day
      (void)trainer.AnalyzeJobs(jobs_for(day));
    }
  });
  SteeringPipeline::BudgetStats train_stats = trainer.budget_stats();
  Status save_status = trainer.SaveRanker(ranker_file);
  if (!save_status.ok()) {
    std::fprintf(stderr, "SaveRanker failed: %s\n", save_status.ToString().c_str());
    return 1;
  }
  std::printf("trained on %lld examples (%lld compiles) in %.3fs; ranker saved (%lld "
              "bytes on disk)\n\n",
              (long long)train_stats.ranker_examples_trained,
              (long long)train_stats.candidates_compiled, train_s,
              (long long)std::filesystem::file_size(ranker_file));

  // ---- 2. eval: same budget, stream prefix vs ranked slice ----
  std::vector<Job> eval_jobs = jobs_for(eval_day);

  PipelineOptions unranked_options = base;
  unranked_options.compile_budget = budget;
  SteeringPipeline unranked(&optimizer, &simulator, unranked_options);
  EvalRun unranked_run = Evaluate(unranked, eval_jobs);

  PipelineOptions ranked_options = base;
  ranked_options.compile_budget = budget;
  ranked_options.rank_candidates = true;
  SteeringPipeline ranked(&optimizer, &simulator, ranked_options);
  Status warm_status = ranked.WarmRanker(ranker_file);
  if (!warm_status.ok()) {
    std::fprintf(stderr, "WarmRanker failed: %s\n", warm_status.ToString().c_str());
    return 1;
  }
  EvalRun ranked_run = Evaluate(ranked, eval_jobs);

  // ---- 3a. determinism: a second warmed pipeline replays the eval day ----
  SteeringPipeline replay(&optimizer, &simulator, ranked_options);
  // qsteer-lint: allow(unchecked-status) the file was written by this process two lines up
  (void)replay.WarmRanker(ranker_file);
  bool ranker_bytes_equal = replay.SerializeRanker() == ranked.SerializeRanker();
  EvalRun replay_run = Evaluate(replay, eval_jobs);
  bool replay_equal = replay_run.improvements == ranked_run.improvements &&
                      replay_run.compiles == ranked_run.compiles &&
                      replay_run.skipped == ranked_run.skipped;

  // ---- 3b. unlimited budget: ranked selection is a pure filter ----
  PipelineOptions full_ranked_options = base;
  full_ranked_options.rank_candidates = true;
  SteeringPipeline full_ranked(&optimizer, &simulator, full_ranked_options);
  // qsteer-lint: allow(unchecked-status) the file was written by this process earlier in the run
  (void)full_ranked.WarmRanker(ranker_file);
  SteeringPipeline full_unranked(&optimizer, &simulator, base);
  bool filter_ok = true;
  for (size_t i = 0; i < eval_jobs.size() && i < 3; ++i) {
    JobAnalysis a = full_unranked.AnalyzeJob(eval_jobs[i]);
    JobAnalysis b = full_ranked.AnalyzeJob(eval_jobs[i]);
    filter_ok = filter_ok && a.executed.size() == b.executed.size() &&
                a.recompiled_ok == b.recompiled_ok &&
                a.BestRuntimeChangePct() == b.BestRuntimeChangePct();
    for (size_t j = 0; filter_ok && j < a.executed.size(); ++j) {
      filter_ok = a.executed[j].config == b.executed[j].config &&
                  a.executed[j].metrics.runtime == b.executed[j].metrics.runtime;
    }
  }

  // ---- report ----
  auto row = [](const char* name, const EvalRun& run) {
    std::printf("%-10s %10lld %9lld %9lld %14.4f %11s\n", name, (long long)run.compiles,
                (long long)run.skipped, (long long)run.improvements,
                run.ImprovementsPerCompile(),
                run.first_improvement_s < 0.0
                    ? "never"
                    : (std::to_string(run.first_improvement_s).substr(0, 6) + "s").c_str());
  };
  std::printf("%-10s %10s %9s %9s %14s %11s\n", "policy", "compiles", "skipped",
              "improved", "improved/comp", "first_hit");
  row("unranked", unranked_run);
  row("ranked", ranked_run);

  double ratio = unranked_run.ImprovementsPerCompile() > 0.0
                     ? ranked_run.ImprovementsPerCompile() /
                           unranked_run.ImprovementsPerCompile()
                     : (ranked_run.improvements > 0 ? 1e9 : 0.0);
  bool strictly_better =
      ranked_run.ImprovementsPerCompile() > unranked_run.ImprovementsPerCompile();
  bool ratio_ok = min_ratio < 0.0 || ratio >= min_ratio;
  bool faster_first_hit =
      ranked_run.first_improvement_s >= 0.0 &&
      (unranked_run.first_improvement_s < 0.0 ||
       ranked_run.first_improvement_s <= unranked_run.first_improvement_s * 1.25);

  std::printf("\nranked/unranked improvements-per-compile ratio: %.3f\n", ratio);
  std::printf("wall clock: unranked %.3fs, ranked %.3fs (same compile budget)\n",
              unranked_run.wall_s, ranked_run.wall_s);
  std::printf("\nverdicts: ranked_strictly_better=%s replay_deterministic=%s "
              "ranker_bytes_stable=%s unlimited_budget_is_filter=%s",
              strictly_better ? "PASS" : "FAIL", replay_equal ? "PASS" : "FAIL",
              ranker_bytes_equal ? "PASS" : "FAIL", filter_ok ? "PASS" : "FAIL");
  if (min_ratio >= 0.0) {
    std::printf(" ratio>=%.2f=%s", min_ratio, ratio_ok ? "PASS" : "FAIL");
  }
  std::printf("\n");
  Footer();

  FILE* json = std::fopen("BENCH_ranker.json", "w");
  if (json != nullptr) {
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"bench\": \"bench_ranked_discovery\",\n");
    std::fprintf(json,
                 "  \"description\": \"Ranked vs unranked budgeted candidate generation "
                 "on workload B: a CandidateRanker trained on earlier days spends a "
                 "fixed compile budget on the eval day; improvements-per-compile must "
                 "strictly beat the stream-prefix baseline.\",\n");
    std::fprintf(json, "  \"command\": \"./build/bench/bench_ranked_discovery%s\",\n",
                 smoke ? " --smoke" : "");
    std::fprintf(json,
                 "  \"jobs\": %d,\n  \"candidates_per_job\": %d,\n  \"budget\": %d,\n"
                 "  \"budget_fraction\": %.2f,\n  \"train_days\": %d,\n",
                 num_jobs, base.max_candidate_configs, budget, budget_fraction,
                 train_days);
    std::fprintf(json,
                 "  \"train\": { \"examples\": %lld, \"compiles\": %lld, \"wall_s\": "
                 "%.3f },\n",
                 (long long)train_stats.ranker_examples_trained,
                 (long long)train_stats.candidates_compiled, train_s);
    auto json_run = [&](const char* name, const EvalRun& run, bool last) {
      std::fprintf(json,
                   "  \"%s\": { \"compiles\": %lld, \"skipped\": %lld, "
                   "\"improvements\": %lld, \"improvements_per_compile\": %.4f, "
                   "\"first_improvement_s\": %.3f, \"wall_s\": %.3f }%s\n",
                   name, (long long)run.compiles, (long long)run.skipped,
                   (long long)run.improvements, run.ImprovementsPerCompile(),
                   run.first_improvement_s, run.wall_s, last ? "" : ",");
    };
    json_run("unranked", unranked_run, false);
    json_run("ranked", ranked_run, false);
    std::fprintf(json, "  \"ratio\": %.4f,\n", ratio);
    std::fprintf(json, "  \"verdicts\": {\n");
    std::fprintf(json, "    \"ranked_strictly_better\": %s,\n",
                 strictly_better ? "true" : "false");
    std::fprintf(json, "    \"replay_deterministic\": %s,\n",
                 replay_equal ? "true" : "false");
    std::fprintf(json, "    \"ranker_bytes_stable\": %s,\n",
                 ranker_bytes_equal ? "true" : "false");
    std::fprintf(json, "    \"unlimited_budget_is_filter\": %s,\n",
                 filter_ok ? "true" : "false");
    std::fprintf(json, "    \"ratio_above_floor\": %s,\n", ratio_ok ? "true" : "false");
    std::fprintf(json, "    \"faster_first_improvement\": %s\n",
                 faster_first_hit ? "true" : "false");
    std::fprintf(json, "  }\n}\n");
    std::fclose(json);
    std::printf("wrote BENCH_ranker.json\n");
  }

  return (strictly_better && replay_equal && ranker_bytes_equal && filter_ok && ratio_ok)
             ? 0
             : 1;
}
