// Figure 8: per-query runtime change (absolute and percentage) of the
// learned model's choice vs the default configuration, for held-out jobs of
// three job groups.
#include <algorithm>

#include "bench/bench_util.h"
#include "core/learned_steering.h"
#include "core/span.h"

using namespace qsteer;
using namespace qsteer::bench;

int main() {
  Header("Figure 8: learned-model per-query runtime change vs default (3 job groups)",
         "improvements dominate in every group, with some regressions; group 3 often "
         "picks the default (no bar) and has the smallest-magnitude regressions");

  Workload workload(BenchSpec('B'));
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());
  LearnedSteering learner(&optimizer, &simulator, &workload.catalog());

  const int kTemplates[3] = {36, 4, 30};
  const int kArms[3] = {10, 7, 10};
  int days = static_cast<int>(14 * BenchScale());

  for (int g = 0; g < 3; ++g) {
    std::vector<Job> jobs;
    for (int day = 1; day <= days; ++day) {
      int instances = workload.InstancesOnDay(kTemplates[g], day);
      for (int i = 0; i < std::max(1, instances); ++i) {
        jobs.push_back(workload.MakeJob(kTemplates[g], day, i));
      }
    }
    SpanResult span = ComputeJobSpan(optimizer, jobs.front());
    ConfigSearchOptions search;
    search.max_configs = kArms[g] * 4;
    search.seed = 500 + static_cast<uint64_t>(g);
    std::vector<RuleConfig> configs = {RuleConfig::Default()};
    for (const RuleConfig& c : GenerateCandidateConfigs(span.span, search)) {
      if (static_cast<int>(configs.size()) >= kArms[g]) break;
      configs.push_back(c);
    }
    GroupDataset dataset = learner.CollectDataset(jobs, configs, 7 + static_cast<uint64_t>(g));
    MlpOptions options;
    options.hidden = 64;
    options.epochs = 150;
    options.seed = 21 + static_cast<uint64_t>(g);
    LearnedEvaluation eval = learner.TrainAndEvaluate(dataset, options);

    std::printf("\nJob group %d (%zu held-out queries):\n", g + 1, eval.test_choices.size());
    std::printf("  %-32s %6s %10s %10s %8s\n", "query", "arm", "delta_s", "default_s",
                "change");
    int improved = 0, regressed = 0, chose_default = 0;
    for (const LearnedChoice& choice : eval.test_choices) {
      double delta = choice.chosen_runtime - choice.default_runtime;
      double pct = choice.default_runtime > 0 ? delta / choice.default_runtime * 100 : 0;
      std::printf("  %-32s %6d %+10.1f %10.1f %+7.1f%%\n", choice.job_name.c_str(),
                  choice.chosen_arm, delta, choice.default_runtime, pct);
      if (choice.chosen_arm == 0) ++chose_default;
      if (pct < -2.0) ++improved;
      if (pct > 2.0) ++regressed;
    }
    std::printf("  => improved %d, regressed %d, recommended default %d\n", improved,
                regressed, chose_default);
  }
  Footer();
  return 0;
}
