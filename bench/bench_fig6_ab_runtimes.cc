// Figure 6: percentage change in runtime from the default to the best of the
// 10 cheapest alternative rule configurations, for selected jobs of each
// workload — the headline A/B-testing result (§6.2).
#include <algorithm>

#include "bench/bench_util.h"
#include "exec/simulator.h"

using namespace qsteer;
using namespace qsteer::bench;

int main() {
  Header("Figure 6: % runtime change of best alternative configuration (A/B testing)",
         "at least one alternative improves a majority of jobs; improvements up to "
         "-90%; Workload C changes smaller in magnitude");

  for (char which : {'A', 'B', 'C'}) {
    Workload workload(BenchSpec(which));
    Optimizer optimizer(&workload.catalog());
    ExecutionSimulator simulator(&workload.catalog());
    int max_jobs = static_cast<int>((which == 'B' ? 30 : 20) * BenchScale());
    std::vector<JobAnalysis> analyses =
        RunAbAnalysis(workload, optimizer, simulator, max_jobs);

    std::vector<double> changes;
    for (const JobAnalysis& analysis : analyses) {
      changes.push_back(analysis.BestRuntimeChangePct());
    }
    std::sort(changes.begin(), changes.end());

    int improved = 0, big = 0, regressed = 0;
    for (double c : changes) {
      if (c < -3.0) ++improved;
      if (c < -50.0) ++big;
      if (c > 3.0) ++regressed;
    }
    std::printf("\nWorkload %c (%zu analyzed jobs):\n", which, changes.size());
    std::printf("  sorted best-config %%-changes: ");
    for (double c : changes) std::printf("%+.0f ", c);
    std::printf("\n  improved >3%%: %d   improved >50%%: %d   regressed-only: %d\n",
                improved, big, regressed);
    if (!changes.empty()) {
      std::printf("  best: %+.0f%%   median: %+.0f%%\n", changes.front(),
                  changes[changes.size() / 2]);
    }
  }
  std::printf("\nPaper shape: majority improve in A and B with similar magnitudes, C "
              "smaller; max improvements near -90%%.\n");
  Footer();
  return 0;
}
