// §8 extension ablation: feedback-guided configuration search vs the
// one-shot cheapest-10 pipeline at an equal execution budget.
#include "bench/bench_util.h"
#include "core/feedback_search.h"

using namespace qsteer;
using namespace qsteer::bench;

int main() {
  Header("Ablation: feedback-guided search vs one-shot cheapest-10 (equal budget)",
         "§8 future work: 'use feedback from the execution results to guide future "
         "iterations of the configuration search'");

  Workload workload(BenchSpec('B'));
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());

  PipelineOptions pipeline_options;
  pipeline_options.max_candidate_configs = 120;
  pipeline_options.configs_to_execute = 12;  // one-shot budget
  SteeringPipeline pipeline(&optimizer, &simulator, pipeline_options);

  FeedbackSearchOptions feedback_options;
  feedback_options.rounds = 4;
  feedback_options.configs_per_round = 3;  // 12 executions total
  FeedbackSearch feedback(&optimizer, &simulator, feedback_options);

  int jobs = static_cast<int>(20 * BenchScale());
  double oneshot_mean = 0, feedback_mean = 0;
  int oneshot_wins = 0, feedback_wins = 0, analyzed = 0;

  std::printf("%-26s %12s %14s %14s\n", "job", "default_s", "one-shot%", "feedback%");
  for (int t = 0; t < jobs * 2 && analyzed < jobs; ++t) {
    Job job = workload.MakeJob(t, 6);
    JobAnalysis oneshot = pipeline.AnalyzeJob(job);
    if (oneshot.default_plan.root == nullptr || oneshot.executed.empty()) continue;
    FeedbackSearchResult fb = feedback.Run(job);
    if (fb.default_runtime <= 0.0) continue;
    ++analyzed;
    double oneshot_change = std::min(0.0, oneshot.BestRuntimeChangePct());
    double feedback_change = fb.BestImprovementPct();
    oneshot_mean += oneshot_change;
    feedback_mean += feedback_change;
    if (feedback_change < oneshot_change - 1.0) ++feedback_wins;
    if (oneshot_change < feedback_change - 1.0) ++oneshot_wins;
    std::printf("%-26s %12.1f %+13.1f%% %+13.1f%%\n", job.name.substr(0, 26).c_str(),
                oneshot.default_metrics.runtime, oneshot_change, feedback_change);
  }

  std::printf("\nmean best change: one-shot %+.1f%%  feedback %+.1f%%  "
              "(wins: one-shot %d, feedback %d, ties %d)\n",
              oneshot_mean / std::max(1, analyzed), feedback_mean / std::max(1, analyzed),
              oneshot_wins, feedback_wins, analyzed - oneshot_wins - feedback_wins);
  std::printf("Feedback reallocates later executions toward rule toggles that already\n"
              "helped, trading breadth for depth at a fixed execution budget.\n");
  Footer();
  return 0;
}
