// §6.2 ablation ("when the cost model is completely wrong"): executing
// randomly selected candidate configurations vs the 10 cheapest-by-cost.
// The paper found only 1 of 20 random-config jobs with a significantly
// better plan, so cost-guided selection is the practical choice.
#include <algorithm>

#include "bench/bench_util.h"
#include "core/config_search.h"
#include "core/span.h"
#include "exec/simulator.h"

using namespace qsteer;
using namespace qsteer::bench;

int main() {
  Header("Ablation: random configuration selection vs cost-guided (cheapest 10)",
         "random candidates rarely beat the default (1 of 20 jobs in the paper); "
         "cost-guided selection finds improvements for a majority");

  Workload workload(BenchSpec('B'));
  Optimizer optimizer(&workload.catalog());
  ExecutionSimulator simulator(&workload.catalog());

  int num_jobs = static_cast<int>(20 * BenchScale());
  int random_improved = 0, guided_improved = 0, analyzed = 0;
  int random_attempts = 0, random_failed = 0, random_noop = 0, random_distinct = 0;
  double random_mean = 0, guided_mean = 0;

  PipelineOptions options;
  options.max_candidate_configs = 120;
  SteeringPipeline pipeline(&optimizer, &simulator, options);

  std::printf("%-26s %12s %14s %14s\n", "job", "default_s", "random-best%", "guided-best%");
  for (int t = 0; t < num_jobs * 2 && analyzed < num_jobs; ++t) {
    Job job = workload.MakeJob(t, 5);
    JobAnalysis guided = pipeline.AnalyzeJob(job);
    if (guided.default_plan.root == nullptr || guided.executed.empty()) continue;
    ++analyzed;

    // Random arm: configurations drawn uniformly over ALL 219 non-required
    // rules — no span pruning, no cost guidance. This is what "randomly
    // selected candidate configurations" means without the pipeline: most
    // draws either do not alter the plan or do not compile.
    Pcg32 rng(0x777 + static_cast<uint64_t>(t));
    double random_best = guided.default_metrics.runtime;
    int executed = 0;
    uint64_t nonce = 5000;
    uint64_t default_plan_hash = PlanHash(guided.default_plan.root, false);
    for (int attempt = 0; attempt < 40 && executed < 10; ++attempt) {
      ++random_attempts;
      RuleConfig config = RuleConfig::AllEnabled();
      int disables = static_cast<int>(rng.UniformInt(5, 40));
      for (int idx : rng.SampleWithoutReplacement(kNumNonRequired, disables)) {
        config.Disable(kNumRequired + idx);
      }
      Result<CompiledPlan> plan = optimizer.Compile(job, config);
      if (!plan.ok()) {
        ++random_failed;
        continue;  // non-compiling draws burn budget
      }
      ++executed;
      if (PlanHash(plan.value().root, false) == default_plan_hash) {
        ++random_noop;
        continue;  // draw did not change the plan at all
      }
      ++random_distinct;
      random_best =
          std::min(random_best, simulator.Execute(job, plan.value().root, ++nonce).runtime);
    }
    double random_change = (random_best - guided.default_metrics.runtime) /
                           guided.default_metrics.runtime * 100.0;
    double guided_change = std::min(0.0, guided.BestRuntimeChangePct());

    if (random_change < -10.0) ++random_improved;
    if (guided_change < -10.0) ++guided_improved;
    random_mean += random_change;
    guided_mean += guided_change;
    std::printf("%-26s %12.1f %+13.1f%% %+13.1f%%\n", job.name.substr(0, 26).c_str(),
                guided.default_metrics.runtime, random_change, guided_change);
  }
  std::printf("\njobs with >10%% improvement:  random %d/%d   cost-guided %d/%d\n",
              random_improved, analyzed, guided_improved, analyzed);
  std::printf("mean best change:             random %+.1f%%   cost-guided %+.1f%%\n",
              random_mean / std::max(1, analyzed), guided_mean / std::max(1, analyzed));
  std::printf("random budget efficiency:     %d attempts -> %d failed compiles, %d no-op "
              "plans, %d distinct plans\n(span + cost guidance spends its whole execution "
              "budget on distinct plausible plans;\nour simulator's estimation errors are "
              "denser than production SCOPE's, so random\ndraws that do touch the span "
              "find wins more often than the paper's 1-in-20 — see EXPERIMENTS.md.)\n",
              random_attempts, random_failed, random_noop, random_distinct);
  Footer();
  return 0;
}
